//! Property-based tests of the distributed transaction flow.
//!
//! Random interleavings of begin / broadcast / commit / rollback
//! across a random cluster size must uphold the protocol's promises:
//! unique epochs, SI-consistent snapshots (never seeing a pending or
//! future transaction), LCE convergence, and no transaction ever
//! being forced to abort.

use std::collections::{BTreeMap, BTreeSet};

use cluster::{ProtocolCluster, SimulatedNetwork};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Begin a RW transaction on node `origin % n + 1` and broadcast.
    Begin { origin: u64 },
    /// Commit the oldest open transaction.
    CommitOldest,
    /// Commit the newest open transaction (out-of-order commit).
    CommitNewest,
    /// Roll back the oldest open transaction.
    RollbackOldest,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        5 => (0u64..8).prop_map(|origin| Event::Begin { origin }),
        3 => Just(Event::CommitOldest),
        2 => Just(Event::CommitNewest),
        1 => Just(Event::RollbackOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_preserve_protocol_invariants(
        num_nodes in 1u64..5,
        events in prop::collection::vec(event_strategy(), 1..60),
    ) {
        let cluster = ProtocolCluster::new(num_nodes, SimulatedNetwork::instant());
        let mut open = Vec::new();
        let mut seen_epochs = BTreeSet::new();
        // epoch -> true if committed, false if rolled back.
        let mut finished: BTreeMap<u64, bool> = BTreeMap::new();

        for event in events {
            match event {
                Event::Begin { origin } => {
                    let node = origin % num_nodes + 1;
                    let mut txn = cluster.begin_rw(node);
                    cluster.broadcast_begin(&mut txn, 16).unwrap();
                    // Unique epochs, stride residue intact.
                    prop_assert!(seen_epochs.insert(txn.epoch));
                    prop_assert_eq!(txn.epoch % num_nodes, node % num_nodes);
                    // The new snapshot must exclude every open txn and
                    // include every committed one below it.
                    let snap = txn.snapshot();
                    for other in &open {
                        let o: &cluster::DistributedTxn = other;
                        prop_assert!(!snap.sees(o.epoch),
                            "T{} sees pending T{}", txn.epoch, o.epoch);
                    }
                    for (&epoch, &committed) in &finished {
                        if committed && epoch < txn.epoch {
                            prop_assert!(snap.sees(epoch),
                                "T{} misses committed T{}", txn.epoch, epoch);
                        }
                        // Rolled-back epochs may satisfy `sees` at the
                        // protocol level: their *rows* are reclaimed
                        // physically by the engine's rollback, so
                        // there is nothing left to see (covered by the
                        // engine-level property tests).
                    }
                    open.push(txn);
                }
                Event::CommitOldest if !open.is_empty() => {
                    let txn = open.remove(0);
                    cluster.commit(&txn).unwrap();
                    finished.insert(txn.epoch, true);
                }
                Event::CommitNewest if !open.is_empty() => {
                    let txn = open.pop().unwrap();
                    cluster.commit(&txn).unwrap();
                    finished.insert(txn.epoch, true);
                }
                Event::RollbackOldest if !open.is_empty() => {
                    let txn = open.remove(0);
                    cluster.rollback(&txn).unwrap();
                    finished.insert(txn.epoch, false);
                }
                _ => {}
            }
            // LCE on every node never covers an open transaction.
            if let Some(min_open) = open.iter().map(|t| t.epoch).min() {
                for node in 1..=num_nodes {
                    prop_assert!(cluster.manager(node).lce() < min_open);
                }
            }
        }

        // Drain: commit everything still open; LCE must converge to
        // the maximum finished epoch on every node.
        for txn in open.drain(..) {
            cluster.commit(&txn).unwrap();
            finished.insert(txn.epoch, true);
        }
        // LCE converges to the largest *committed* epoch (rolled-back
        // epochs simply vanish; with everything finished they cannot
        // hold LCE back).
        let max_committed = finished
            .iter()
            .filter(|(_, &committed)| committed)
            .map(|(&epoch, _)| epoch)
            .max()
            .unwrap_or(0);
        for node in 1..=num_nodes {
            prop_assert_eq!(
                cluster.manager(node).lce(),
                max_committed,
                "node {} LCE did not converge", node
            );
            prop_assert!(cluster.manager(node).pending_txs().is_empty());
        }

        // Final RO snapshots see every committed transaction on
        // every node.
        for node in 1..=num_nodes {
            let snap = cluster.begin_ro(node);
            for (&epoch, &committed) in &finished {
                if committed {
                    prop_assert!(snap.sees(epoch));
                }
            }
        }
    }

    /// RO transactions never see torn states: their epoch is always a
    /// committed prefix point, whatever the interleaving.
    #[test]
    fn ro_snapshots_are_always_committed_prefixes(
        num_nodes in 1u64..4,
        interleave in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let cluster = ProtocolCluster::new(num_nodes, SimulatedNetwork::instant());
        let mut open = std::collections::VecDeque::new();
        let mut node_cycle = 0u64;
        for begin in interleave {
            if begin || open.is_empty() {
                node_cycle += 1;
                let node = node_cycle % num_nodes + 1;
                let mut txn = cluster.begin_rw(node);
                cluster.broadcast_begin(&mut txn, 0).unwrap();
                open.push_back(txn);
            } else {
                let txn = open.pop_front().unwrap();
                cluster.commit(&txn).unwrap();
            }
            for node in 1..=num_nodes {
                let snap = cluster.begin_ro(node);
                for t in &open {
                    prop_assert!(!snap.sees(t.epoch),
                        "RO snapshot at {} sees open T{}", snap.epoch(), t.epoch);
                }
            }
        }
    }
}
