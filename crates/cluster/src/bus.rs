//! The simulated network: latency injection, traffic accounting, and
//! deterministic fault injection.
//!
//! Replaces the production cluster's RPC fabric. A "send" is a
//! synchronous delivery that optionally sleeps a sampled latency
//! first, then returns; callers that want concurrent fan-out use
//! scoped threads, exactly like an async RPC layer with a join at the
//! end. The Figure 5 harness reads [`NetworkStats`] to report how
//! much of a load request's life is spent "on the wire".
//!
//! ## Fault model
//!
//! A [`FaultPlan`] makes delivery fallible: per-link probabilities of
//! dropping, duplicating, or delaying (reordering) a message, plus
//! node crash windows expressed in message sequence numbers. All
//! randomness comes from one seeded generator, so a run is exactly
//! replayable from `(plan, schedule)` — the same seed produces the
//! same drops in the same places. The protocol layer asks
//! [`SimulatedNetwork::transmit_checked`] for each message's
//! [`Fate`] and is responsible for retries, idempotent re-delivery,
//! and late (delayed) application; the network only decides and
//! counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use obs::{Counter, ReportBuilder};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Latency model for one simulated hop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fixed one-way latency per message.
    pub base: Duration,
    /// Extra uniform jitter in `[0, jitter]`.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Zero-latency model (pure protocol tests).
    pub fn instant() -> Self {
        LatencyModel {
            base: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// A datacenter-ish model: `base` one-way latency, 50% jitter.
    pub fn datacenter(base: Duration) -> Self {
        LatencyModel {
            base,
            jitter: base / 2,
        }
    }

    fn sample(&self, entropy: u64) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let jitter_nanos = self.jitter.as_nanos() as u64;
        // Cheap deterministic hash of the message counter: good
        // enough spread for latency jitter without threading an RNG
        // through every call site.
        let h = entropy
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.base + Duration::from_nanos(h % (jitter_nanos + 1))
    }
}

/// Per-link fault probabilities (each sampled independently, in the
/// order drop → delay → duplicate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability the message is silently lost.
    pub drop_p: f64,
    /// Probability the message is held back and delivered out of
    /// order (after up to [`FaultPlan::delay_horizon`] later sends).
    pub delay_p: f64,
    /// Probability the message is delivered twice.
    pub dup_p: f64,
}

impl LinkFaults {
    fn is_noop(&self) -> bool {
        self.drop_p == 0.0 && self.delay_p == 0.0 && self.dup_p == 0.0
    }
}

/// A node-unreachability window in message-sequence time: every
/// message to or from `node` while the global message counter is in
/// `[from_seq, until_seq)` is dropped. Sequence-based windows keep
/// crash/restart deterministic and replayable — no wall clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node (1-based).
    pub node: u64,
    /// First message sequence number of the outage (inclusive).
    pub from_seq: u64,
    /// First message sequence number after the outage (exclusive).
    pub until_seq: u64,
}

/// A seeded, deterministic fault-injection plan.
///
/// Built with the fluent methods and handed to
/// [`SimulatedNetwork::with_faults`]. Identical plans produce
/// identical fault sequences for identical message schedules, so any
/// chaos-test failure replays from its seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    overrides: Vec<(u64, u64, LinkFaults)>,
    crashes: Vec<CrashWindow>,
    delay_horizon: u64,
}

impl FaultPlan {
    /// A plan with the given RNG seed and no faults (add them with
    /// the builder methods).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            overrides: Vec::new(),
            crashes: Vec::new(),
            delay_horizon: 8,
        }
    }

    /// The plan's seed (for replay instructions in failure output).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the default per-message drop probability.
    pub fn drop_p(mut self, p: f64) -> Self {
        self.default_link.drop_p = p;
        self
    }

    /// Sets the default per-message duplicate probability.
    pub fn dup_p(mut self, p: f64) -> Self {
        self.default_link.dup_p = p;
        self
    }

    /// Sets the default per-message delay/reorder probability.
    pub fn delay_p(mut self, p: f64) -> Self {
        self.default_link.delay_p = p;
        self
    }

    /// Sets how many later sends a delayed message may be reordered
    /// behind (default 8).
    pub fn delay_horizon(mut self, horizon: u64) -> Self {
        self.delay_horizon = horizon.max(1);
        self
    }

    /// Overrides the fault probabilities of the directed link
    /// `from -> to`.
    pub fn link(mut self, from: u64, to: u64, faults: LinkFaults) -> Self {
        self.overrides.push((from, to, faults));
        self
    }

    /// Adds a crash window: `node` is unreachable while the global
    /// message counter is in `[from_seq, until_seq)`.
    pub fn crash(mut self, node: u64, from_seq: u64, until_seq: u64) -> Self {
        self.crashes.push(CrashWindow {
            node,
            from_seq,
            until_seq,
        });
        self
    }

    fn link_faults(&self, from: u64, to: u64) -> LinkFaults {
        self.overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, l)| *l)
            .unwrap_or(self.default_link)
    }

    fn crashed(&self, node: u64, seq: u64) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && (w.from_seq..w.until_seq).contains(&seq))
    }
}

/// What the network decided to do with one transmitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered now, `copies` times (2+ under duplication faults).
    Deliver {
        /// Number of deliveries (1 normally).
        copies: u32,
    },
    /// Silently lost — the sender sees only a timeout.
    Drop,
    /// Held in flight: the caller must apply it once the global
    /// message counter reaches `due_seq` (delivering it *after*
    /// messages sent later — a reordering).
    Delay {
        /// Global message sequence number at which the message lands.
        due_seq: u64,
    },
}

/// Fault-injection event counters.
#[derive(Debug, Default)]
struct FaultCounters {
    drops: Counter,
    duplicates: Counter,
    delays: Counter,
    crash_drops: Counter,
}

/// Seeded fault decision state shared by all network clones.
#[derive(Debug)]
struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    counters: FaultCounters,
    /// Nodes manually downed at runtime (crash/restart chaos tests).
    manual_down: Mutex<std::collections::BTreeSet<u64>>,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng: Mutex::new(rng),
            counters: FaultCounters::default(),
            manual_down: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    fn decide(&self, from: u64, to: u64, seq: u64) -> Fate {
        let down = {
            let manual = self.manual_down.lock();
            manual.contains(&from) || manual.contains(&to)
        };
        if down || self.plan.crashed(from, seq) || self.plan.crashed(to, seq) {
            self.counters.crash_drops.inc();
            return Fate::Drop;
        }
        let link = self.plan.link_faults(from, to);
        if link.is_noop() {
            return Fate::Deliver { copies: 1 };
        }
        let mut rng = self.rng.lock();
        if link.drop_p > 0.0 && rng.gen_bool(link.drop_p) {
            self.counters.drops.inc();
            return Fate::Drop;
        }
        if link.delay_p > 0.0 && rng.gen_bool(link.delay_p) {
            self.counters.delays.inc();
            let slack = rng.gen_range(1..=self.plan.delay_horizon);
            return Fate::Delay {
                due_seq: seq + slack,
            };
        }
        if link.dup_p > 0.0 && rng.gen_bool(link.dup_p) {
            self.counters.duplicates.inc();
            return Fate::Deliver { copies: 2 };
        }
        Fate::Deliver { copies: 1 }
    }
}

/// Cumulative traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Nanoseconds of injected latency (sum over messages).
    pub injected_latency_nanos: u64,
}

/// Protocol message classes, for per-type traffic accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Begin broadcast request (rides on the first fan-out).
    BeginRequest,
    /// Begin response carrying the remote node's `pendingTxs`.
    BeginResponse,
    /// Operation fan-out: forwarded records, deletes, shipped queries.
    Forward,
    /// Commit broadcast request.
    CommitRequest,
    /// Commit response (merges the remote clock back).
    CommitResponse,
    /// Rollback broadcast request.
    RollbackRequest,
    /// Rollback response.
    RollbackResponse,
    /// One chunk of brick state streamed during a rebalance handoff.
    HandoffChunk,
    /// Receiver's acknowledgement that a handoff installed completely.
    HandoffAck,
    /// Sent through the untyped [`SimulatedNetwork::transmit`] path.
    Other,
}

/// All kinds, in reporting order.
const MSG_KINDS: [(MsgKind, &str); 10] = [
    (MsgKind::BeginRequest, "begin_request"),
    (MsgKind::BeginResponse, "begin_response"),
    (MsgKind::Forward, "forward"),
    (MsgKind::CommitRequest, "commit_request"),
    (MsgKind::CommitResponse, "commit_response"),
    (MsgKind::RollbackRequest, "rollback_request"),
    (MsgKind::RollbackResponse, "rollback_response"),
    (MsgKind::HandoffChunk, "handoff_chunk"),
    (MsgKind::HandoffAck, "handoff_ack"),
    (MsgKind::Other, "other"),
];

/// Per-message-type counters plus the piggyback accounting the paper
/// cares about: how many bytes of `pendingTxs` sets and epoch clocks
/// hitch a ride on data messages (Section IV-C's "piggybacked on the
/// first operation").
#[derive(Debug, Default)]
struct TypedCounters {
    by_kind: [Counter; MSG_KINDS.len()],
    piggyback_pending_bytes: Counter,
    piggyback_clock_bytes: Counter,
}

/// The shared in-process "wire".
#[derive(Clone, Debug)]
pub struct SimulatedNetwork {
    latency: LatencyModel,
    messages: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
    typed: Arc<TypedCounters>,
    faults: Option<Arc<FaultInjector>>,
}

impl SimulatedNetwork {
    /// A network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimulatedNetwork {
            latency,
            messages: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
            typed: Arc::new(TypedCounters::default()),
            faults: None,
        }
    }

    /// Zero-latency network.
    pub fn instant() -> Self {
        SimulatedNetwork::new(LatencyModel::instant())
    }

    /// A network whose [`SimulatedNetwork::transmit_checked`] path
    /// injects faults per `plan`.
    pub fn with_faults(latency: LatencyModel, plan: FaultPlan) -> Self {
        let mut net = SimulatedNetwork::new(latency);
        net.faults = Some(Arc::new(FaultInjector::new(plan)));
        net
    }

    /// The fault plan in effect, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// Marks `node` unreachable: every message to or from it is
    /// dropped until [`SimulatedNetwork::restart_node`]. State is
    /// preserved (fail-stutter / partition model, not state loss).
    pub fn crash_node(&self, node: u64) {
        if let Some(f) = &self.faults {
            f.manual_down.lock().insert(node);
        }
    }

    /// Brings a crashed node back.
    pub fn restart_node(&self, node: u64) {
        if let Some(f) = &self.faults {
            f.manual_down.lock().remove(&node);
        }
    }

    /// The global message sequence counter (the clock that crash
    /// windows and delay due-times are expressed in).
    pub fn current_seq(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Whether `node` is currently unreachable — manually crashed or
    /// inside a planned crash window at the present sequence number.
    /// Routing uses this to skip dark replicas without spending a
    /// timeout on them.
    pub fn is_down(&self, node: u64) -> bool {
        match &self.faults {
            None => false,
            Some(f) => {
                f.manual_down.lock().contains(&node) || f.plan.crashed(node, self.current_seq())
            }
        }
    }

    /// Accounts for and "transmits" a message of `payload_bytes`,
    /// sleeping the sampled latency. Returns the injected latency so
    /// callers can subtract it from measurements if needed.
    pub fn transmit(&self, payload_bytes: usize) -> Duration {
        self.transmit_typed(MsgKind::Other, payload_bytes, 0, 0)
    }

    /// [`SimulatedNetwork::transmit`] with per-type accounting:
    /// `pending_bytes` and `clock_bytes` are the portions of the
    /// payload that are piggybacked `pendingTxs` sets and epoch
    /// clocks rather than user data.
    pub fn transmit_typed(
        &self,
        kind: MsgKind,
        payload_bytes: usize,
        pending_bytes: usize,
        clock_bytes: usize,
    ) -> Duration {
        let idx = MSG_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("kind listed");
        self.typed.by_kind[idx].inc();
        self.typed.piggyback_pending_bytes.add(pending_bytes as u64);
        self.typed.piggyback_clock_bytes.add(clock_bytes as u64);
        let seq = self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
        let delay = self.latency.sample(seq);
        if !delay.is_zero() {
            self.injected
                .fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        delay
    }

    /// The fallible transmission path: accounts like
    /// [`SimulatedNetwork::transmit_typed`], then asks the fault
    /// injector (if any) what happened on the wire. With no fault
    /// plan this always returns `Deliver { copies: 1 }`, so
    /// fault-free callers behave byte-for-byte like the legacy path.
    ///
    /// `from`/`to` are 1-based node ids (0 = client/driver). The
    /// caller owns retries, duplicate suppression, and applying
    /// delayed messages once [`SimulatedNetwork::current_seq`]
    /// reaches the returned due sequence.
    pub fn transmit_checked(
        &self,
        kind: MsgKind,
        from: u64,
        to: u64,
        payload_bytes: usize,
        pending_bytes: usize,
        clock_bytes: usize,
    ) -> Fate {
        let idx = MSG_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("kind listed");
        self.typed.by_kind[idx].inc();
        self.typed.piggyback_pending_bytes.add(pending_bytes as u64);
        self.typed.piggyback_clock_bytes.add(clock_bytes as u64);
        let seq = self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
        let delay = self.latency.sample(seq);
        if !delay.is_zero() {
            self.injected
                .fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        match &self.faults {
            None => Fate::Deliver { copies: 1 },
            Some(f) => f.decide(from, to, seq),
        }
    }

    /// Messages delivered of one kind.
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        let idx = MSG_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("kind listed");
        self.typed.by_kind[idx].get()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            injected_latency_nanos: self.injected.load(Ordering::Relaxed),
        }
    }

    /// Writes the `[cluster]` section of a metrics report: totals,
    /// the per-type message counts, and the piggyback byte counters.
    pub fn report(&self, report: &mut ReportBuilder) {
        let stats = self.stats();
        report
            .section("cluster")
            .metric("messages", stats.messages)
            .metric("bytes", stats.bytes)
            .metric("injected_latency_nanos", stats.injected_latency_nanos);
        for (idx, (_, name)) in MSG_KINDS.iter().enumerate() {
            report.counter(&format!("messages.{name}"), &self.typed.by_kind[idx]);
        }
        report
            .counter(
                "piggyback_pending_bytes",
                &self.typed.piggyback_pending_bytes,
            )
            .counter("piggyback_clock_bytes", &self.typed.piggyback_clock_bytes);
        if let Some(f) = &self.faults {
            report
                .section("cluster.faults")
                .metric("seed", f.plan.seed)
                .counter("dropped", &f.counters.drops)
                .counter("duplicated", &f.counters.duplicates)
                .counter("delayed", &f.counters.delays)
                .counter("crash_dropped", &f.counters.crash_drops);
        }
    }

    /// Fault events so far as `(drops, duplicates, delays,
    /// crash_drops)`; all zero without a fault plan.
    pub fn fault_stats(&self) -> (u64, u64, u64, u64) {
        match &self.faults {
            None => (0, 0, 0, 0),
            Some(f) => (
                f.counters.drops.get(),
                f.counters.duplicates.get(),
                f.counters.delays.get(),
                f.counters.crash_drops.get(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_network_does_not_sleep() {
        let net = SimulatedNetwork::instant();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            net.transmit(64);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        let s = net.stats();
        assert_eq!(s.messages, 100);
        assert_eq!(s.bytes, 6400);
        assert_eq!(s.injected_latency_nanos, 0);
    }

    #[test]
    fn latency_is_injected_and_accounted() {
        let net = SimulatedNetwork::new(LatencyModel {
            base: Duration::from_millis(2),
            jitter: Duration::ZERO,
        });
        let start = std::time::Instant::now();
        let d = net.transmit(10);
        assert_eq!(d, Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(net.stats().injected_latency_nanos, 2_000_000);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let model = LatencyModel::datacenter(Duration::from_micros(100));
        for seq in 0..1000 {
            let d = model.sample(seq);
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn clones_share_counters() {
        let net = SimulatedNetwork::instant();
        let net2 = net.clone();
        net.transmit(5);
        net2.transmit(7);
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 12);
    }

    #[test]
    fn faultless_checked_path_always_delivers_once() {
        let net = SimulatedNetwork::instant();
        for _ in 0..50 {
            let fate = net.transmit_checked(MsgKind::Forward, 1, 2, 16, 0, 8);
            assert_eq!(fate, Fate::Deliver { copies: 1 });
        }
        assert_eq!(net.stats().messages, 50);
        assert_eq!(net.messages_of(MsgKind::Forward), 50);
        assert_eq!(net.fault_stats(), (0, 0, 0, 0));
    }

    #[test]
    fn fault_sequence_is_deterministic_from_seed() {
        let run = |seed: u64| -> Vec<Fate> {
            let plan = FaultPlan::seeded(seed).drop_p(0.2).dup_p(0.2).delay_p(0.2);
            let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
            (0..200)
                .map(|_| net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0))
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fates");
        assert_ne!(run(42), run(43), "different seed, different fates");
        let fates = run(42);
        assert!(fates.contains(&Fate::Drop));
        assert!(fates.iter().any(|f| matches!(f, Fate::Delay { .. })));
        assert!(fates
            .iter()
            .any(|f| matches!(f, Fate::Deliver { copies: 2 })));
    }

    #[test]
    fn delay_due_seq_respects_horizon() {
        let plan = FaultPlan::seeded(7).delay_p(1.0).delay_horizon(4);
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        for _ in 0..100 {
            let seq = net.current_seq();
            match net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0) {
                Fate::Delay { due_seq } => {
                    assert!(due_seq > seq && due_seq <= seq + 4);
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
        assert_eq!(net.fault_stats().2, 100);
    }

    #[test]
    fn crash_windows_drop_both_directions() {
        let plan = FaultPlan::seeded(1).crash(2, 5, 10);
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        let mut dropped = 0;
        for _ in 0..20 {
            let seq = net.current_seq();
            let to_crashed = net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0);
            let in_window = (5..10).contains(&seq);
            assert_eq!(to_crashed == Fate::Drop, in_window, "seq {seq}");
            if in_window {
                dropped += 1;
            }
        }
        // Messages *from* the crashed node are dropped too.
        let plan = FaultPlan::seeded(1).crash(2, 0, 1);
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 2, 1, 8, 0, 0),
            Fate::Drop
        );
        assert_eq!(dropped, 5);
    }

    #[test]
    fn manual_crash_and_restart() {
        let plan = FaultPlan::seeded(3);
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0),
            Fate::Deliver { copies: 1 }
        );
        net.crash_node(2);
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0),
            Fate::Drop
        );
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 2, 3, 8, 0, 0),
            Fate::Drop
        );
        net.restart_node(2);
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0),
            Fate::Deliver { copies: 1 }
        );
        assert_eq!(net.fault_stats().3, 2);
    }

    #[test]
    fn per_link_overrides_take_precedence() {
        let plan = FaultPlan::seeded(9).link(
            1,
            2,
            LinkFaults {
                drop_p: 1.0,
                ..LinkFaults::default()
            },
        );
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0),
            Fate::Drop
        );
        // Reverse direction and other links are untouched.
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 2, 1, 8, 0, 0),
            Fate::Deliver { copies: 1 }
        );
        assert_eq!(
            net.transmit_checked(MsgKind::Forward, 1, 3, 8, 0, 0),
            Fate::Deliver { copies: 1 }
        );
    }

    #[test]
    fn fault_report_section_present_only_with_plan() {
        let net = SimulatedNetwork::instant();
        let mut r = ReportBuilder::new();
        net.report(&mut r);
        assert!(!r.finish().contains("cluster.faults"));

        let net = SimulatedNetwork::with_faults(
            LatencyModel::instant(),
            FaultPlan::seeded(5).drop_p(1.0),
        );
        net.transmit_checked(MsgKind::Forward, 1, 2, 8, 0, 0);
        let mut r = ReportBuilder::new();
        net.report(&mut r);
        let text = r.finish();
        assert!(text.contains("cluster.faults"));
        assert!(text.contains("dropped"));
        assert!(text.contains("seed"));
    }
}
