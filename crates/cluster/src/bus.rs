//! The simulated network: latency injection and traffic accounting.
//!
//! Replaces the production cluster's RPC fabric. A "send" is a
//! synchronous delivery that optionally sleeps a sampled latency
//! first, then returns; callers that want concurrent fan-out use
//! scoped threads, exactly like an async RPC layer with a join at the
//! end. The Figure 5 harness reads [`NetworkStats`] to report how
//! much of a load request's life is spent "on the wire".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use obs::{Counter, ReportBuilder};

/// Latency model for one simulated hop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fixed one-way latency per message.
    pub base: Duration,
    /// Extra uniform jitter in `[0, jitter]`.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Zero-latency model (pure protocol tests).
    pub fn instant() -> Self {
        LatencyModel {
            base: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// A datacenter-ish model: `base` one-way latency, 50% jitter.
    pub fn datacenter(base: Duration) -> Self {
        LatencyModel {
            base,
            jitter: base / 2,
        }
    }

    fn sample(&self, entropy: u64) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let jitter_nanos = self.jitter.as_nanos() as u64;
        // Cheap deterministic hash of the message counter: good
        // enough spread for latency jitter without threading an RNG
        // through every call site.
        let h = entropy
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.base + Duration::from_nanos(h % (jitter_nanos + 1))
    }
}

/// Cumulative traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Nanoseconds of injected latency (sum over messages).
    pub injected_latency_nanos: u64,
}

/// Protocol message classes, for per-type traffic accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Begin broadcast request (rides on the first fan-out).
    BeginRequest,
    /// Begin response carrying the remote node's `pendingTxs`.
    BeginResponse,
    /// Operation fan-out: forwarded records, deletes, shipped queries.
    Forward,
    /// Commit broadcast request.
    CommitRequest,
    /// Commit response (merges the remote clock back).
    CommitResponse,
    /// Rollback broadcast request.
    RollbackRequest,
    /// Rollback response.
    RollbackResponse,
    /// Sent through the untyped [`SimulatedNetwork::transmit`] path.
    Other,
}

/// All kinds, in reporting order.
const MSG_KINDS: [(MsgKind, &str); 8] = [
    (MsgKind::BeginRequest, "begin_request"),
    (MsgKind::BeginResponse, "begin_response"),
    (MsgKind::Forward, "forward"),
    (MsgKind::CommitRequest, "commit_request"),
    (MsgKind::CommitResponse, "commit_response"),
    (MsgKind::RollbackRequest, "rollback_request"),
    (MsgKind::RollbackResponse, "rollback_response"),
    (MsgKind::Other, "other"),
];

/// Per-message-type counters plus the piggyback accounting the paper
/// cares about: how many bytes of `pendingTxs` sets and epoch clocks
/// hitch a ride on data messages (Section IV-C's "piggybacked on the
/// first operation").
#[derive(Debug, Default)]
struct TypedCounters {
    by_kind: [Counter; MSG_KINDS.len()],
    piggyback_pending_bytes: Counter,
    piggyback_clock_bytes: Counter,
}

/// The shared in-process "wire".
#[derive(Clone, Debug)]
pub struct SimulatedNetwork {
    latency: LatencyModel,
    messages: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
    typed: Arc<TypedCounters>,
}

impl SimulatedNetwork {
    /// A network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimulatedNetwork {
            latency,
            messages: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
            typed: Arc::new(TypedCounters::default()),
        }
    }

    /// Zero-latency network.
    pub fn instant() -> Self {
        SimulatedNetwork::new(LatencyModel::instant())
    }

    /// Accounts for and "transmits" a message of `payload_bytes`,
    /// sleeping the sampled latency. Returns the injected latency so
    /// callers can subtract it from measurements if needed.
    pub fn transmit(&self, payload_bytes: usize) -> Duration {
        self.transmit_typed(MsgKind::Other, payload_bytes, 0, 0)
    }

    /// [`SimulatedNetwork::transmit`] with per-type accounting:
    /// `pending_bytes` and `clock_bytes` are the portions of the
    /// payload that are piggybacked `pendingTxs` sets and epoch
    /// clocks rather than user data.
    pub fn transmit_typed(
        &self,
        kind: MsgKind,
        payload_bytes: usize,
        pending_bytes: usize,
        clock_bytes: usize,
    ) -> Duration {
        let idx = MSG_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("kind listed");
        self.typed.by_kind[idx].inc();
        self.typed.piggyback_pending_bytes.add(pending_bytes as u64);
        self.typed.piggyback_clock_bytes.add(clock_bytes as u64);
        let seq = self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
        let delay = self.latency.sample(seq);
        if !delay.is_zero() {
            self.injected
                .fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        delay
    }

    /// Messages delivered of one kind.
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        let idx = MSG_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("kind listed");
        self.typed.by_kind[idx].get()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            injected_latency_nanos: self.injected.load(Ordering::Relaxed),
        }
    }

    /// Writes the `[cluster]` section of a metrics report: totals,
    /// the per-type message counts, and the piggyback byte counters.
    pub fn report(&self, report: &mut ReportBuilder) {
        let stats = self.stats();
        report
            .section("cluster")
            .metric("messages", stats.messages)
            .metric("bytes", stats.bytes)
            .metric("injected_latency_nanos", stats.injected_latency_nanos);
        for (idx, (_, name)) in MSG_KINDS.iter().enumerate() {
            report.counter(&format!("messages.{name}"), &self.typed.by_kind[idx]);
        }
        report
            .counter(
                "piggyback_pending_bytes",
                &self.typed.piggyback_pending_bytes,
            )
            .counter("piggyback_clock_bytes", &self.typed.piggyback_clock_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_network_does_not_sleep() {
        let net = SimulatedNetwork::instant();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            net.transmit(64);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        let s = net.stats();
        assert_eq!(s.messages, 100);
        assert_eq!(s.bytes, 6400);
        assert_eq!(s.injected_latency_nanos, 0);
    }

    #[test]
    fn latency_is_injected_and_accounted() {
        let net = SimulatedNetwork::new(LatencyModel {
            base: Duration::from_millis(2),
            jitter: Duration::ZERO,
        });
        let start = std::time::Instant::now();
        let d = net.transmit(10);
        assert_eq!(d, Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(net.stats().injected_latency_nanos, 2_000_000);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let model = LatencyModel::datacenter(Duration::from_micros(100));
        for seq in 0..1000 {
            let d = model.sample(seq);
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn clones_share_counters() {
        let net = SimulatedNetwork::instant();
        let net2 = net.clone();
        net.transmit(5);
        net2.transmit(7);
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 12);
    }
}
