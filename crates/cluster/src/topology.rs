//! Versioned elastic membership over the consistent-hash ring.
//!
//! The [`Topology`] is the cluster's single source of truth for *who
//! should host what*: a mutable node set, a [`Ring`] rebuilt on every
//! membership change, and the replication factor. Placement is
//! rack-unaware and fully deterministic from the ring (Section V-A's
//! consistent hashing, extended N-way): a brick's replica set is the
//! arc owner plus the next `replication - 1` distinct nodes clockwise,
//! so any node can compute any brick's home without coordination.
//!
//! Join/leave mutate only the membership; actually moving brick state
//! is the rebalancer's job (the cubrick layer diffs the directory
//! against `replicas()` and streams the difference).

use std::collections::BTreeSet;

use parking_lot::RwLock;

use crate::protocol::NodeId;
use crate::ring::Ring;

/// Mutable, versioned cluster membership plus deterministic N-way
/// replica placement.
#[derive(Debug)]
pub struct Topology {
    vnodes: u32,
    replication: usize,
    state: RwLock<TopoState>,
}

#[derive(Debug)]
struct TopoState {
    nodes: BTreeSet<NodeId>,
    ring: Ring,
    /// Bumped on every membership change; lets cached routing detect
    /// staleness cheaply.
    version: u64,
}

impl Topology {
    /// A topology over `nodes` with `replication` total copies per
    /// brick (1 = no redundancy; capped by the live node count).
    ///
    /// # Panics
    /// Panics on an empty node set, zero vnodes, or zero replication.
    pub fn new(nodes: &[NodeId], vnodes: u32, replication: usize) -> Self {
        assert!(replication >= 1, "need at least one copy of every brick");
        let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let ring = Ring::of_nodes(nodes, vnodes);
        Topology {
            vnodes,
            replication,
            state: RwLock::new(TopoState {
                nodes: set,
                ring,
                version: 1,
            }),
        }
    }

    /// Configured copies per brick (the effective set may be smaller
    /// while fewer nodes are members).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Current membership, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.state.read().nodes.iter().copied().collect()
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.state.read().nodes.contains(&node)
    }

    /// Membership version (bumped by every join/leave).
    pub fn version(&self) -> u64 {
        self.state.read().version
    }

    /// Adds `node` to the membership, rebuilding the ring. Returns
    /// the new version; idempotent (re-adding is a no-op returning the
    /// current version).
    pub fn add_node(&self, node: NodeId) -> u64 {
        let mut st = self.state.write();
        if st.nodes.insert(node) {
            let nodes: Vec<NodeId> = st.nodes.iter().copied().collect();
            st.ring = Ring::of_nodes(&nodes, self.vnodes);
            st.version += 1;
        }
        st.version
    }

    /// Removes `node`, rebuilding the ring. Returns the new version;
    /// idempotent.
    ///
    /// # Panics
    /// Panics when removing the last member — an empty cluster has no
    /// placement function.
    pub fn remove_node(&self, node: NodeId) -> u64 {
        let mut st = self.state.write();
        if st.nodes.remove(&node) {
            assert!(!st.nodes.is_empty(), "cannot remove the last node");
            let nodes: Vec<NodeId> = st.nodes.iter().copied().collect();
            st.ring = Ring::of_nodes(&nodes, self.vnodes);
            st.version += 1;
        }
        st.version
    }

    /// The brick's replica set in preference order: arc owner first,
    /// then the next distinct nodes clockwise. Length is
    /// `min(replication, members)`.
    pub fn replicas(&self, key: u64) -> Vec<NodeId> {
        self.state.read().ring.nodes_for(key, self.replication - 1)
    }

    /// The brick's primary (arc owner).
    pub fn primary(&self, key: u64) -> NodeId {
        self.state.read().ring.node_for(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let t = Topology::new(&[1, 2, 3, 4], 64, 2);
        for key in 0..500 {
            let set = t.replicas(key);
            assert_eq!(set, t.replicas(key));
            assert_eq!(set.len(), 2);
            assert_ne!(set[0], set[1]);
            assert_eq!(set[0], t.primary(key));
        }
    }

    #[test]
    fn replication_caps_at_membership() {
        let t = Topology::new(&[1, 2], 32, 3);
        assert_eq!(t.replicas(7).len(), 2);
    }

    #[test]
    fn join_only_inserts_the_new_node_into_replica_sets() {
        // Before/after a join, a key's replica set may change only by
        // the joiner displacing someone — no unrelated churn.
        let t = Topology::new(&[1, 2, 3], 64, 2);
        let before: HashMap<u64, Vec<NodeId>> = (0..2000).map(|k| (k, t.replicas(k))).collect();
        let v1 = t.version();
        assert!(t.add_node(4) > v1);
        for key in 0..2000u64 {
            let after = t.replicas(key);
            if after != before[&key] {
                assert!(
                    after.contains(&4),
                    "key {key}: {:?} -> {after:?} churned without the joiner",
                    before[&key]
                );
            }
        }
    }

    #[test]
    fn leave_reroutes_only_the_leavers_copies() {
        let t = Topology::new(&[1, 2, 3, 4], 64, 2);
        let before: HashMap<u64, Vec<NodeId>> = (0..2000).map(|k| (k, t.replicas(k))).collect();
        t.remove_node(3);
        assert!(!t.contains(3));
        for key in 0..2000u64 {
            let after = t.replicas(key);
            assert!(!after.contains(&3));
            if !before[&key].contains(&3) {
                assert_eq!(
                    after, before[&key],
                    "key {key} not hosted by the leaver must not move"
                );
            }
        }
    }

    #[test]
    fn membership_ops_are_idempotent() {
        let t = Topology::new(&[1, 2], 16, 1);
        let v = t.add_node(2);
        assert_eq!(v, t.version(), "re-add is a no-op");
        t.remove_node(9);
        assert_eq!(t.nodes(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "last node")]
    fn removing_the_last_node_panics() {
        let t = Topology::new(&[1], 16, 1);
        t.remove_node(1);
    }
}
