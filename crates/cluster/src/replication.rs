//! Replica flush tracking: the durability gate for LSE.
//!
//! Section III-D: LSE may only advance once "all data is safely
//! flushed to disk on all replicas", and "LSE needs to be prevented
//! from advancing if data is not safely stored on all replicas or if
//! any replica is offline". The tracker keeps one durable-epoch
//! watermark per node; the cluster-safe epoch is their minimum, and
//! it is withheld entirely while any node is offline.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use aosi::Epoch;

use crate::protocol::NodeId;

/// Cluster-wide flush watermarks.
#[derive(Debug, Default)]
pub struct ReplicationTracker {
    state: RwLock<TrackerState>,
}

#[derive(Debug, Default)]
struct TrackerState {
    /// Highest epoch durably flushed per node.
    flushed: BTreeMap<NodeId, Epoch>,
    /// Nodes currently unreachable.
    offline: Vec<NodeId>,
}

impl ReplicationTracker {
    /// Tracker over nodes `1..=num_nodes`, all at epoch 0 and online.
    pub fn new(num_nodes: u64) -> Self {
        let tracker = ReplicationTracker::default();
        {
            let mut st = tracker.state.write();
            for node in 1..=num_nodes {
                st.flushed.insert(node, 0);
            }
        }
        tracker
    }

    /// Records that `node` has durably flushed everything up to
    /// `epoch`. Watermarks are monotonic; stale reports are ignored.
    pub fn mark_flushed(&self, node: NodeId, epoch: Epoch) {
        let mut st = self.state.write();
        let slot = st.flushed.entry(node).or_insert(0);
        if epoch > *slot {
            *slot = epoch;
        }
    }

    /// Marks `node` unreachable: the safe epoch is withheld until it
    /// returns.
    pub fn mark_offline(&self, node: NodeId) {
        let mut st = self.state.write();
        if !st.offline.contains(&node) {
            st.offline.push(node);
        }
    }

    /// Marks `node` reachable again.
    pub fn mark_online(&self, node: NodeId) {
        self.state.write().offline.retain(|&n| n != node);
    }

    /// The largest epoch durable on *every* node, or `None` while any
    /// node is offline. This is the ceiling the flush machinery may
    /// pass to [`TxnManager::advance_lse`](aosi::TxnManager::advance_lse).
    pub fn safe_epoch(&self) -> Option<Epoch> {
        let st = self.state.read();
        if !st.offline.is_empty() {
            return None;
        }
        st.flushed.values().copied().min()
    }

    /// Per-node watermarks (instrumentation).
    pub fn watermarks(&self) -> Vec<(NodeId, Epoch)> {
        self.state
            .read()
            .flushed
            .iter()
            .map(|(&n, &e)| (n, e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_epoch_is_the_minimum_watermark() {
        let t = ReplicationTracker::new(3);
        assert_eq!(t.safe_epoch(), Some(0));
        t.mark_flushed(1, 10);
        t.mark_flushed(2, 7);
        t.mark_flushed(3, 12);
        assert_eq!(t.safe_epoch(), Some(7));
        t.mark_flushed(2, 11);
        assert_eq!(t.safe_epoch(), Some(10));
    }

    #[test]
    fn offline_node_withholds_safe_epoch() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(1, 5);
        t.mark_flushed(2, 5);
        assert_eq!(t.safe_epoch(), Some(5));
        t.mark_offline(2);
        assert_eq!(t.safe_epoch(), None, "paper: LSE must not advance");
        t.mark_online(2);
        assert_eq!(t.safe_epoch(), Some(5));
    }

    #[test]
    fn watermarks_are_monotonic() {
        let t = ReplicationTracker::new(1);
        t.mark_flushed(1, 9);
        t.mark_flushed(1, 4); // stale report
        assert_eq!(t.safe_epoch(), Some(9));
    }

    #[test]
    fn double_offline_and_online_are_idempotent() {
        let t = ReplicationTracker::new(2);
        t.mark_offline(1);
        t.mark_offline(1);
        t.mark_online(1);
        assert_eq!(t.safe_epoch(), Some(0));
    }

    #[test]
    fn watermarks_snapshot() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(2, 3);
        assert_eq!(t.watermarks(), vec![(1, 0), (2, 3)]);
    }
}
