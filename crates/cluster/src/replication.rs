//! Replica flush tracking: the durability gate for LSE.
//!
//! Section III-D: LSE may only advance once "all data is safely
//! flushed to disk on all replicas", and "LSE needs to be prevented
//! from advancing if data is not safely stored on all replicas or if
//! any replica is offline". The tracker keeps one durable-epoch
//! watermark per node; the cluster-safe epoch is their minimum, and
//! it is withheld entirely while any node is offline.
//!
//! Elastic extension: a node that misses a write while down (a
//! *degraded* write committed without it) gets the missed epoch
//! recorded. Its effective watermark is then capped just below its
//! lowest hole — a replica cannot claim epoch `E` durable while a
//! write at `E' ≤ E` never reached it — until [`heal`](ReplicationTracker::heal)
//! clears the holes after catch-up. [`covers`](ReplicationTracker::covers)
//! turns the watermark into the per-replica read gate:
//! a replica may answer a snapshot locally only if its effective
//! watermark reaches the snapshot epoch.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::RwLock;

use aosi::Epoch;

use crate::protocol::NodeId;

/// Cluster-wide flush watermarks.
#[derive(Debug, Default)]
pub struct ReplicationTracker {
    state: RwLock<TrackerState>,
}

#[derive(Debug, Default)]
struct TrackerState {
    /// Highest epoch durably flushed per node.
    flushed: BTreeMap<NodeId, Epoch>,
    /// Epochs a node is known to have missed (degraded writes that
    /// committed while it was down). Holes cap the effective
    /// watermark until healed.
    missed: BTreeMap<NodeId, BTreeSet<Epoch>>,
    /// Nodes currently unreachable.
    offline: Vec<NodeId>,
}

impl TrackerState {
    /// Effective durable watermark: the flushed mark, capped just
    /// below the node's lowest unhealed hole.
    fn watermark(&self, node: NodeId) -> Option<Epoch> {
        let flushed = *self.flushed.get(&node)?;
        match self.missed.get(&node).and_then(|m| m.iter().next()) {
            Some(&hole) => Some(flushed.min(hole.saturating_sub(1))),
            None => Some(flushed),
        }
    }
}

impl ReplicationTracker {
    /// Tracker over nodes `1..=num_nodes`, all at epoch 0 and online.
    pub fn new(num_nodes: u64) -> Self {
        let tracker = ReplicationTracker::default();
        {
            let mut st = tracker.state.write();
            for node in 1..=num_nodes {
                st.flushed.insert(node, 0);
            }
        }
        tracker
    }

    /// Starts tracking `node` (a joiner) with its watermark already at
    /// `epoch` — the join protocol calls this once the node holds all
    /// state up to that epoch. Idempotent for an already-tracked node
    /// (acts as `mark_flushed`).
    pub fn add_node(&self, node: NodeId, epoch: Epoch) {
        let mut st = self.state.write();
        let slot = st.flushed.entry(node).or_insert(epoch);
        if epoch > *slot {
            *slot = epoch;
        }
    }

    /// Stops tracking `node` (a leaver): its watermark no longer caps
    /// the safe epoch and its holes are forgotten.
    pub fn remove_node(&self, node: NodeId) {
        let mut st = self.state.write();
        st.flushed.remove(&node);
        st.missed.remove(&node);
        st.offline.retain(|&n| n != node);
    }

    /// Records that `node` has durably flushed everything up to
    /// `epoch`. Watermarks are monotonic; stale reports are ignored.
    pub fn mark_flushed(&self, node: NodeId, epoch: Epoch) {
        let mut st = self.state.write();
        let slot = st.flushed.entry(node).or_insert(0);
        if epoch > *slot {
            *slot = epoch;
        }
    }

    /// Records that a write at `epoch` committed without reaching
    /// `node` (degraded write while the node was down). The node's
    /// effective watermark is capped below `epoch` until healed.
    pub fn mark_missed(&self, node: NodeId, epoch: Epoch) {
        let mut st = self.state.write();
        st.missed.entry(node).or_default().insert(epoch);
    }

    /// Clears `node`'s missed epochs at or below `up_to` — called by
    /// the heal path once the node has re-fetched that state — and
    /// raises its flushed mark to `up_to`.
    pub fn heal(&self, node: NodeId, up_to: Epoch) {
        let mut st = self.state.write();
        if let Some(holes) = st.missed.get_mut(&node) {
            holes.retain(|&e| e > up_to);
            if holes.is_empty() {
                st.missed.remove(&node);
            }
        }
        let slot = st.flushed.entry(node).or_insert(0);
        if up_to > *slot {
            *slot = up_to;
        }
    }

    /// Marks `node` unreachable: the safe epoch is withheld until it
    /// returns.
    pub fn mark_offline(&self, node: NodeId) {
        let mut st = self.state.write();
        if !st.offline.contains(&node) {
            st.offline.push(node);
        }
    }

    /// Marks `node` reachable again.
    pub fn mark_online(&self, node: NodeId) {
        self.state.write().offline.retain(|&n| n != node);
    }

    /// Whether `node` is currently marked unreachable.
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.state.read().offline.contains(&node)
    }

    /// The largest epoch durable on *every* tracked node, or `None`
    /// while any node is offline. This is the ceiling the flush
    /// machinery may pass to
    /// [`TxnManager::advance_lse`](aosi::TxnManager::advance_lse).
    pub fn safe_epoch(&self) -> Option<Epoch> {
        let st = self.state.read();
        if !st.offline.is_empty() {
            return None;
        }
        st.flushed
            .keys()
            .map(|&n| st.watermark(n).unwrap_or(0))
            .min()
    }

    /// Whether `node` may answer a read at snapshot `epoch` locally:
    /// it must be online, tracked, and its effective watermark must
    /// reach the snapshot — the §III-D gate applied per replica.
    pub fn covers(&self, node: NodeId, epoch: Epoch) -> bool {
        let st = self.state.read();
        if st.offline.contains(&node) {
            return false;
        }
        match st.watermark(node) {
            Some(w) => w >= epoch,
            None => false,
        }
    }

    /// Routes a read at snapshot `epoch` to the first candidate that
    /// [`covers`](ReplicationTracker::covers) it; preference order is
    /// the caller's (normally the ring's replica order).
    pub fn route_read(&self, candidates: &[NodeId], epoch: Epoch) -> Option<NodeId> {
        candidates.iter().copied().find(|&n| self.covers(n, epoch))
    }

    /// Per-node *effective* watermarks (instrumentation).
    pub fn watermarks(&self) -> Vec<(NodeId, Epoch)> {
        let st = self.state.read();
        st.flushed
            .keys()
            .map(|&n| (n, st.watermark(n).unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_epoch_is_the_minimum_watermark() {
        let t = ReplicationTracker::new(3);
        assert_eq!(t.safe_epoch(), Some(0));
        t.mark_flushed(1, 10);
        t.mark_flushed(2, 7);
        t.mark_flushed(3, 12);
        assert_eq!(t.safe_epoch(), Some(7));
        t.mark_flushed(2, 11);
        assert_eq!(t.safe_epoch(), Some(10));
    }

    #[test]
    fn offline_node_withholds_safe_epoch() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(1, 5);
        t.mark_flushed(2, 5);
        assert_eq!(t.safe_epoch(), Some(5));
        t.mark_offline(2);
        assert_eq!(t.safe_epoch(), None, "paper: LSE must not advance");
        t.mark_online(2);
        assert_eq!(t.safe_epoch(), Some(5));
    }

    #[test]
    fn watermarks_are_monotonic() {
        let t = ReplicationTracker::new(1);
        t.mark_flushed(1, 9);
        t.mark_flushed(1, 4); // stale report
        assert_eq!(t.safe_epoch(), Some(9));
    }

    #[test]
    fn double_offline_and_online_are_idempotent() {
        let t = ReplicationTracker::new(2);
        t.mark_offline(1);
        t.mark_offline(1);
        t.mark_online(1);
        assert_eq!(t.safe_epoch(), Some(0));
    }

    #[test]
    fn watermarks_snapshot() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(2, 3);
        assert_eq!(t.watermarks(), vec![(1, 0), (2, 3)]);
    }

    #[test]
    fn missed_epoch_caps_the_watermark_until_healed() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(1, 10);
        t.mark_flushed(2, 10);
        // Node 2 missed the write at epoch 6: it may not claim 10.
        t.mark_missed(2, 6);
        assert_eq!(t.watermarks(), vec![(1, 10), (2, 5)]);
        assert_eq!(t.safe_epoch(), Some(5));
        assert!(!t.covers(2, 6));
        assert!(t.covers(2, 5));
        t.heal(2, 10);
        assert_eq!(t.safe_epoch(), Some(10));
        assert!(t.covers(2, 10));
    }

    #[test]
    fn lagging_replica_must_not_answer() {
        // Satellite 3, fails-pre-fix shape: before `covers` existed a
        // read could be answered by any online replica regardless of
        // its watermark; this pins the §III-D per-replica gate.
        let t = ReplicationTracker::new(3);
        t.mark_flushed(1, 20);
        t.mark_flushed(2, 4); // trails the snapshot
        t.mark_flushed(3, 20);
        let snapshot = 15;
        assert!(
            !t.covers(2, snapshot),
            "a replica whose safe epoch trails the snapshot must not answer locally"
        );
        // Routing falls through the lagging replica to a covering one.
        assert_eq!(t.route_read(&[2, 3, 1], snapshot), Some(3));
        // Offline replicas are skipped even when their watermark covers.
        t.mark_offline(3);
        assert_eq!(t.route_read(&[2, 3, 1], snapshot), Some(1));
        // Nobody covers -> no local answer anywhere.
        assert_eq!(t.route_read(&[2], snapshot), None);
    }

    #[test]
    fn join_and_leave_adjust_the_floor() {
        let t = ReplicationTracker::new(2);
        t.mark_flushed(1, 8);
        t.mark_flushed(2, 8);
        // A joiner enters at the epoch it was caught up to.
        t.add_node(3, 8);
        assert_eq!(t.safe_epoch(), Some(8));
        t.mark_flushed(1, 12);
        t.mark_flushed(2, 12);
        assert_eq!(t.safe_epoch(), Some(8), "joiner now holds the floor");
        // A leaver stops capping the floor entirely.
        t.remove_node(3);
        assert_eq!(t.safe_epoch(), Some(12));
    }

    /// Satellite 3 property test: over seeded random ack schedules the
    /// cluster purge floor always equals the min over per-replica acks
    /// (capped by holes), and is withheld whenever anyone is offline.
    #[test]
    fn purge_floor_equals_min_ack_over_seeded_schedules() {
        fn splitmix(x: &mut u64) -> u64 {
            *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for seed in 0..50u64 {
            let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1;
            let nodes = 2 + (splitmix(&mut rng) % 4); // 2..=5
            let t = ReplicationTracker::new(nodes);
            // Model state mirrored outside the tracker.
            let mut acked: Vec<Epoch> = vec![0; nodes as usize];
            let mut holes: Vec<BTreeSet<Epoch>> = vec![BTreeSet::new(); nodes as usize];
            let mut offline: BTreeSet<NodeId> = BTreeSet::new();
            for _ in 0..200 {
                let node = 1 + (splitmix(&mut rng) % nodes);
                let i = (node - 1) as usize;
                match splitmix(&mut rng) % 5 {
                    0 | 1 => {
                        let e = splitmix(&mut rng) % 64;
                        t.mark_flushed(node, e);
                        acked[i] = acked[i].max(e);
                    }
                    2 => {
                        let e = 1 + splitmix(&mut rng) % 64;
                        t.mark_missed(node, e);
                        holes[i].insert(e);
                    }
                    3 => {
                        if offline.contains(&node) {
                            t.mark_online(node);
                            offline.remove(&node);
                        } else {
                            t.mark_offline(node);
                            offline.insert(node);
                        }
                    }
                    _ => {
                        let e = splitmix(&mut rng) % 64;
                        t.heal(node, e);
                        holes[i].retain(|&h| h > e);
                        acked[i] = acked[i].max(e);
                    }
                }
                let expected = if offline.is_empty() {
                    Some(
                        (0..nodes as usize)
                            .map(|i| match holes[i].iter().next() {
                                Some(&h) => acked[i].min(h.saturating_sub(1)),
                                None => acked[i],
                            })
                            .min()
                            .unwrap(),
                    )
                } else {
                    None
                };
                assert_eq!(t.safe_epoch(), expected, "seed {seed}");
            }
        }
    }
}
