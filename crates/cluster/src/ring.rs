//! Consistent hashing ring for brick placement.
//!
//! "Bids are also used to assigning bricks to cluster nodes through
//! the use of consistency hashing" (Section V-A). Virtual nodes give
//! an even spread; adding or removing one node only moves the keys in
//! the arcs it owned.

use crate::protocol::NodeId;

/// A consistent-hashing ring over `NodeId`s.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, node)` sorted by point.
    points: Vec<(u64, NodeId)>,
}

fn hash64(mut x: u64) -> u64 {
    // SplitMix64 finalizer: cheap, well-distributed, dependency-free.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Ring {
    /// Builds a ring for nodes `1..=num_nodes` with `vnodes` virtual
    /// points per node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_nodes: u64, vnodes: u32) -> Self {
        let nodes: Vec<NodeId> = (1..=num_nodes).collect();
        Ring::of_nodes(&nodes, vnodes)
    }

    /// Builds a ring over an **arbitrary** node set — the elastic
    /// topology's constructor, where join/leave produce non-contiguous
    /// memberships like `{1, 2, 4}`. Each node's virtual points depend
    /// only on its own id, so a node contributes the same arcs no
    /// matter who else is on the ring: `Ring::of_nodes(&[1..=n])` is
    /// identical to `Ring::new(n, vnodes)`, and removing a node moves
    /// only the keys it owned.
    ///
    /// # Panics
    /// Panics on an empty node set or zero vnodes.
    pub fn of_nodes(nodes: &[NodeId], vnodes: u32) -> Self {
        assert!(!nodes.is_empty(), "ring needs at least one node");
        assert!(vnodes >= 1, "ring needs at least one vnode per node");
        let mut points = Vec::with_capacity(nodes.len() * vnodes as usize);
        for &node in nodes {
            for v in 0..vnodes as u64 {
                points.push((
                    hash64(node.wrapping_mul(0x1_0000_0001).wrapping_add(v)),
                    node,
                ));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(p, _)| *p);
        Ring { points }
    }

    /// The node owning `key` (e.g. a brick id): the first ring point
    /// clockwise from the key's hash.
    pub fn node_for(&self, key: u64) -> NodeId {
        let h = hash64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[idx % self.points.len()];
        node
    }

    /// The owner plus the next `replicas` *distinct* nodes clockwise —
    /// the replica set for a key.
    pub fn nodes_for(&self, key: u64, replicas: usize) -> Vec<NodeId> {
        let h = hash64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(replicas + 1);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == replicas + 1 {
                    break;
                }
            }
        }
        out
    }

    /// Number of distinct nodes on the ring.
    pub fn node_count(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.points.iter().map(|&(_, n)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn placement_is_deterministic() {
        let ring = Ring::new(8, 64);
        for key in 0..1000 {
            assert_eq!(ring.node_for(key), ring.node_for(key));
        }
    }

    #[test]
    fn all_nodes_receive_keys() {
        let ring = Ring::new(8, 64);
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for key in 0..10_000 {
            *counts.entry(ring.node_for(key)).or_default() += 1;
        }
        assert_eq!(counts.len(), 8, "every node owns some keys");
        // With 64 vnodes the spread should be within ~3x of fair.
        let fair = 10_000 / 8;
        for (&node, &count) in &counts {
            assert!(
                count > fair / 3 && count < fair * 3,
                "node {node} owns {count} of 10000"
            );
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::new(1, 4);
        for key in 0..100 {
            assert_eq!(ring.node_for(key), 1);
        }
    }

    #[test]
    fn replica_sets_are_distinct_and_led_by_owner() {
        let ring = Ring::new(5, 32);
        for key in 0..200 {
            let set = ring.nodes_for(key, 2);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], ring.node_for(key));
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn replicas_capped_by_cluster_size() {
        let ring = Ring::new(2, 16);
        let set = ring.nodes_for(7, 5);
        assert_eq!(set.len(), 2, "cannot have more replicas than nodes");
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        let before = Ring::new(5, 64);
        let after = Ring::new(4, 64); // node 5 removed
        let mut moved = 0;
        let total = 10_000;
        for key in 0..total {
            let b = before.node_for(key);
            let a = after.node_for(key);
            if b != a {
                moved += 1;
                assert_eq!(b, 5, "only keys owned by the removed node may move");
            }
        }
        assert!(moved > 0, "node 5 owned something");
    }

    #[test]
    fn node_count_reports_distinct_nodes() {
        assert_eq!(Ring::new(7, 16).node_count(), 7);
    }

    #[test]
    fn of_nodes_matches_new_for_contiguous_ids() {
        let a = Ring::new(5, 64);
        let b = Ring::of_nodes(&[1, 2, 3, 4, 5], 64);
        for key in 0..2000 {
            assert_eq!(a.node_for(key), b.node_for(key));
            assert_eq!(a.nodes_for(key, 2), b.nodes_for(key, 2));
        }
    }

    #[test]
    fn sparse_membership_moves_only_the_removed_nodes_keys() {
        // {1,2,3,4} -> {1,2,4}: only keys node 3 owned may move.
        let before = Ring::of_nodes(&[1, 2, 3, 4], 64);
        let after = Ring::of_nodes(&[1, 2, 4], 64);
        let mut moved = 0;
        for key in 0..10_000u64 {
            let b = before.node_for(key);
            let a = after.node_for(key);
            if b != a {
                moved += 1;
                assert_eq!(b, 3, "only the removed node's keys may move");
            }
        }
        assert!(moved > 0, "node 3 owned something");
    }

    #[test]
    fn joining_node_only_gains_keys() {
        // {1,2,3} -> {1,2,3,9}: a key changes owner only by landing
        // on the new node.
        let before = Ring::of_nodes(&[1, 2, 3], 64);
        let after = Ring::of_nodes(&[1, 2, 3, 9], 64);
        for key in 0..10_000u64 {
            let b = before.node_for(key);
            let a = after.node_for(key);
            if b != a {
                assert_eq!(a, 9, "moves must land on the joiner");
            }
        }
    }
}
