//! Simulated distributed substrate for the AOSI reproduction.
//!
//! The paper evaluates AOSI on Facebook production clusters (up to
//! 200 nodes). This crate substitutes an **in-process simulated
//! cluster**: every node is an ordinary struct owning its own
//! [`TxnManager`](aosi::TxnManager) (and, one level up, its own
//! Cubrick engine); the "network" is a [`SimulatedNetwork`] that
//! counts messages/bytes and injects configurable latency before
//! delivering. The protocol logic — Lamport clock piggybacking,
//! pending-set unioning at begin, single-roundtrip commit — is the
//! paper's verbatim (Section IV); only the transport is simulated,
//! which does not change protocol behaviour, only absolute latencies.
//!
//! Pieces:
//!
//! * [`SimulatedNetwork`] / [`LatencyModel`] — message accounting,
//!   latency injection, and seeded fault injection ([`FaultPlan`]:
//!   drops, duplicates, delay-reorders, crash windows).
//! * [`Ring`] — the consistent-hashing ring Cubrick uses to place
//!   bricks on nodes (Section V-A).
//! * [`ProtocolCluster`] — the distributed transaction flow of
//!   Section IV-C: begin broadcasts that union `pendingTxs` and merge
//!   clocks, commit broadcasts with no consensus round.
//! * [`ReplicationTracker`] — per-node flush watermarks; the
//!   cluster-wide safe epoch is their minimum, gating LSE
//!   (Section III-D: "LSE needs to be prevented from advancing if
//!   data is not safely stored on all replicas").

//! # Example
//!
//! ```
//! use cluster::{ProtocolCluster, SimulatedNetwork};
//!
//! let cluster = ProtocolCluster::new(3, SimulatedNetwork::instant());
//! let mut txn = cluster.begin_rw(1);                    // epoch 1 (node 1 of 3)
//! cluster.broadcast_begin(&mut txn, 1024).unwrap();     // piggybacked on the first op
//! cluster.commit(&txn).unwrap();                        // single roundtrip, no consensus
//! assert_eq!(cluster.manager(2).lce(), txn.epoch);
//! ```

mod bus;
mod protocol;
mod replication;
mod ring;
mod topology;

pub use bus::{
    CrashWindow, Fate, FaultPlan, LatencyModel, LinkFaults, MsgKind, NetworkStats, SimulatedNetwork,
};
pub use protocol::{DistributedTxn, NodeId, ProtocolCluster, ProtocolMetrics, RetryPolicy};
pub use replication::ReplicationTracker;
pub use ring::Ring;
pub use topology::Topology;
