//! The distributed transaction flow of Section IV, hardened against
//! an unreliable wire.
//!
//! Epochs are assigned purely locally (strided clocks, Section IV-A);
//! the begin broadcast — piggybacked on the transaction's first
//! fan-out operation — updates every remote Epoch Clock past the new
//! epoch and returns each node's `pendingTxs`, whose union becomes
//! the transaction's deps (Section IV-C). Commits are a single
//! roundtrip with no consensus: "since there is no deterministic
//! reason why a transaction could fail once it starts execution …
//! the commit message can be implemented using a single roundtrip to
//! each node."
//!
//! Clock piggybacking follows Table IV exactly: operation fan-outs
//! push the origin's clock outward (one-way merge at the receivers);
//! commit responses additionally merge the remotes' clocks back into
//! the origin.
//!
//! ## Fault tolerance
//!
//! Every message goes through
//! [`SimulatedNetwork::transmit_checked`], which may drop, duplicate,
//! or delay it per the network's [`FaultPlan`](crate::FaultPlan).
//! The protocol compensates with three mechanisms:
//!
//! * **Bounded retry with exponential backoff** ([`RetryPolicy`]):
//!   a dropped or delayed request/response surfaces as a timeout and
//!   the whole roundtrip is retried.
//! * **Idempotent handlers**: each node remembers which
//!   `(epoch, message class)` pairs it already applied, so duplicate
//!   and retried deliveries are suppressed, and a begin that arrives
//!   *after* its transaction's commit/rollback (a reordering) is
//!   discarded instead of resurrecting the epoch in `pendingTxs`.
//! * **Re-driving partial finishes**: a commit/rollback that exhausts
//!   its retry budget on some node is queued and re-driven
//!   ([`ProtocolCluster::redrive_unacked`] /
//!   [`ProtocolCluster::settle`]) until every node acks — commits
//!   never block on a dead node, they just keep that node's LCE (and
//!   transitively the cluster's read frontier) behind until delivery
//!   succeeds.
//!
//! With no fault plan installed, `transmit_checked` always delivers
//! exactly once and this module behaves message-for-message like the
//! original lossless protocol.

use std::collections::BTreeSet;
use std::time::Duration;

use aosi::{AosiError, Epoch, Snapshot, TxnManager};
use obs::{Counter, ReportBuilder};
use parking_lot::{Mutex, RwLock};

use crate::bus::{Fate, MsgKind, SimulatedNetwork};

/// 1-based node identifier (matches the epoch stride residues).
pub type NodeId = u64;

/// Approximate wire size of a protocol message header.
const HEADER_BYTES: usize = 24;

/// Wire size of one piggybacked epoch clock value.
const CLOCK_BYTES: usize = std::mem::size_of::<Epoch>();

/// Retry budget for one logical message exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per roundtrip (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each subsequent
    /// retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    fn backoff_for(&self, attempt: u32) -> Duration {
        let mut d = self.base_backoff;
        for _ in 0..attempt {
            d = (d * 2).min(self.max_backoff);
        }
        d.min(self.max_backoff)
    }
}

/// Message classes that must be applied at most once per epoch.
const CLASS_BEGIN: u8 = 0;
const CLASS_COMMIT: u8 = 1;
const CLASS_ROLLBACK: u8 = 2;

/// A protocol payload as it travels (and lingers) on the wire.
///
/// Delayed messages are held as `WireMsg`s and applied once their
/// due sequence number passes — after messages sent later, which is
/// exactly a reordering.
#[derive(Clone, Debug)]
enum WireMsg {
    /// Begin registration: merge the origin's clock, register the
    /// epoch in the remote `pendingTxs`.
    Begin { epoch: Epoch, origin_ec: Epoch },
    /// Operation fan-out: one-way clock merge.
    Forward { origin_ec: Epoch },
    /// Commit or rollback of `epoch` at the receiver.
    Finish {
        epoch: Epoch,
        origin_ec: Epoch,
        rollback: bool,
    },
    /// A response travelling back to the coordinator; commit and
    /// rollback responses merge the remote's clock into the origin.
    Response { merge_ec: Option<Epoch> },
}

/// A message held in flight by a delay fault.
#[derive(Debug)]
struct DelayedMsg {
    due_seq: u64,
    to: NodeId,
    msg: WireMsg,
}

/// A commit/rollback that exhausted its retry budget on one node and
/// awaits re-driving.
#[derive(Clone, Debug)]
struct UnackedOp {
    epoch: Epoch,
    origin: NodeId,
    node: NodeId,
    rollback: bool,
    deps_bytes: usize,
    /// The origin's EC captured when the finish was decided — every
    /// fan-out leg carries the same clock value (Table IV).
    origin_ec: Epoch,
}

/// Per-node receive-side state: which `(epoch, class)` messages this
/// node has already applied. This is what makes every handler
/// idempotent under duplication, retry, and reordering.
#[derive(Debug, Default)]
struct Endpoint {
    applied: Mutex<BTreeSet<(Epoch, u8)>>,
}

/// Fault-handling counters, reported under `[cluster.protocol]`.
#[derive(Debug, Default)]
pub struct ProtocolMetrics {
    /// Roundtrip attempts beyond the first (per target).
    pub retries: Counter,
    /// Attempts that timed out (request or response lost/held).
    pub timeouts: Counter,
    /// Duplicate deliveries suppressed by the idempotency filter.
    pub dedup_hits: Counter,
    /// Messages for already-finished transactions (late reordered
    /// deliveries the managers rejected).
    pub stale_ops: Counter,
    /// Unacked commit/rollback deliveries re-driven.
    pub redrives: Counter,
    /// Delayed messages eventually applied out of order.
    pub delayed_applied: Counter,
}

/// A RW transaction coordinated from one node of the cluster.
#[derive(Debug)]
pub struct DistributedTxn {
    /// Coordinator node.
    pub origin: NodeId,
    /// The transaction's epoch.
    pub epoch: Epoch,
    deps: BTreeSet<Epoch>,
    broadcasted: bool,
    /// Remotes whose begin roundtrip succeeded.
    begun_on: BTreeSet<NodeId>,
    /// Remotes whose begin roundtrip exhausted its retry budget. A
    /// delayed begin may still land there, so finishes must reach
    /// these nodes too.
    failed_on: BTreeSet<NodeId>,
}

impl DistributedTxn {
    /// The snapshot this transaction reads from.
    ///
    /// # Panics
    /// Panics if called before the begin broadcast: without the
    /// remote pending sets the snapshot would not be SI-consistent.
    pub fn snapshot(&self) -> Snapshot {
        assert!(
            self.broadcasted,
            "snapshot requested before the begin broadcast completed"
        );
        Snapshot::new(self.epoch, self.deps.clone())
    }

    /// Deps gathered so far (local until broadcast, then global).
    pub fn deps(&self) -> &BTreeSet<Epoch> {
        &self.deps
    }

    /// `true` once the begin broadcast reached every remote.
    pub fn is_broadcasted(&self) -> bool {
        self.broadcasted
    }

    /// Remotes that acked this transaction's begin.
    pub fn begun_on(&self) -> &BTreeSet<NodeId> {
        &self.begun_on
    }

    /// Remotes whose begin could not be delivered (so far).
    pub fn failed_on(&self) -> &BTreeSet<NodeId> {
        &self.failed_on
    }

    /// Every node a finish message must reach: acked remotes plus
    /// remotes where a delayed begin may still land.
    fn finish_targets(&self) -> Vec<NodeId> {
        self.begun_on.union(&self.failed_on).copied().collect()
    }
}

/// All the per-node transaction managers plus the simulated wire.
///
/// Higher layers (the multi-node Cubrick engine) hold one of these
/// and route data operations themselves; this type owns only the
/// concurrency-control traffic.
pub struct ProtocolCluster {
    managers: Vec<TxnManager>,
    network: SimulatedNetwork,
    retry: RetryPolicy,
    endpoints: Vec<Endpoint>,
    delayed: Mutex<Vec<DelayedMsg>>,
    unacked: Mutex<Vec<UnackedOp>>,
    metrics: ProtocolMetrics,
    /// Nodes currently participating in begin broadcasts. Slots are
    /// provisioned up to capacity (`managers.len()`) so epoch stride
    /// residues stay stable across join/leave; membership changes
    /// only flip entries in this set.
    active: RwLock<BTreeSet<NodeId>>,
}

impl ProtocolCluster {
    /// A cluster of `num_nodes` nodes sharing `network`, with the
    /// default retry policy.
    pub fn new(num_nodes: u64, network: SimulatedNetwork) -> Self {
        Self::with_retry(num_nodes, network, RetryPolicy::default())
    }

    /// A cluster with an explicit retry budget.
    pub fn with_retry(num_nodes: u64, network: SimulatedNetwork, retry: RetryPolicy) -> Self {
        Self::with_capacity(
            num_nodes,
            &(1..=num_nodes).collect::<Vec<_>>(),
            network,
            retry,
        )
    }

    /// An elastic cluster: manager slots provisioned for nodes
    /// `1..=capacity` (fixing the epoch stride for good), with only
    /// `active` participating in broadcasts initially. Nodes outside
    /// the active set are dormant until
    /// [`ProtocolCluster::activate`]d by a join.
    ///
    /// # Panics
    /// Panics if `active` is empty or names a node beyond capacity.
    pub fn with_capacity(
        capacity: u64,
        active: &[NodeId],
        network: SimulatedNetwork,
        retry: RetryPolicy,
    ) -> Self {
        assert!(!active.is_empty(), "need at least one active node");
        assert!(
            active.iter().all(|&n| (1..=capacity).contains(&n)),
            "active nodes must be within 1..=capacity"
        );
        let managers = (1..=capacity)
            .map(|i| TxnManager::new(i, capacity))
            .collect();
        let endpoints = (0..capacity).map(|_| Endpoint::default()).collect();
        ProtocolCluster {
            managers,
            network,
            retry,
            endpoints,
            delayed: Mutex::new(Vec::new()),
            unacked: Mutex::new(Vec::new()),
            metrics: ProtocolMetrics::default(),
            active: RwLock::new(active.iter().copied().collect()),
        }
    }

    /// Provisioned cluster size (manager slots, active or not).
    pub fn num_nodes(&self) -> u64 {
        self.managers.len() as u64
    }

    /// Nodes currently participating in broadcasts, ascending.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.active.read().iter().copied().collect()
    }

    /// Whether `node` currently participates in broadcasts.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active.read().contains(&node)
    }

    /// Activates a dormant slot (a node join). The joiner's clock is
    /// caught up to the highest EC among already-active nodes so its
    /// first epoch sorts after everything already begun. Idempotent.
    ///
    /// # Panics
    /// Panics on a node beyond capacity.
    pub fn activate(&self, node: NodeId) {
        assert!(
            (1..=self.num_nodes()).contains(&node),
            "node {node} beyond provisioned capacity"
        );
        let mut active = self.active.write();
        if active.insert(node) {
            let max_ec = active
                .iter()
                .filter(|&&n| n != node)
                .map(|&n| self.manager(n).clock().current_ec())
                .max()
                .unwrap_or(0);
            self.manager(node).clock().observe(max_ec);
        }
    }

    /// Deactivates a slot (a node leave): it stops receiving begin
    /// broadcasts. Its manager keeps its state, so a later
    /// [`ProtocolCluster::activate`] resumes cleanly. Idempotent.
    ///
    /// # Panics
    /// Panics when deactivating the last active node.
    pub fn deactivate(&self, node: NodeId) {
        let mut active = self.active.write();
        if active.remove(&node) {
            assert!(!active.is_empty(), "cannot deactivate the last active node");
        }
    }

    /// The manager of `node` (1-based).
    pub fn manager(&self, node: NodeId) -> &TxnManager {
        &self.managers[(node - 1) as usize]
    }

    /// The shared network (for traffic stats).
    pub fn network(&self) -> &SimulatedNetwork {
        &self.network
    }

    /// Fault-handling counters.
    pub fn metrics(&self) -> &ProtocolMetrics {
        &self.metrics
    }

    /// Commit/rollback deliveries still awaiting a remote ack.
    pub fn unacked_len(&self) -> usize {
        self.unacked.lock().len()
    }

    /// Messages currently held in flight by delay faults.
    pub fn delayed_len(&self) -> usize {
        self.delayed.lock().len()
    }

    fn endpoint(&self, node: NodeId) -> &Endpoint {
        &self.endpoints[(node - 1) as usize]
    }

    /// Applies one wire message at its destination, idempotently.
    fn apply_wire(&self, to: NodeId, msg: &WireMsg) {
        match *msg {
            WireMsg::Begin { epoch, origin_ec } => {
                let ep = self.endpoint(to);
                let mut applied = ep.applied.lock();
                // A begin after *any* prior message for this epoch is
                // a duplicate or a reordered late delivery; applying
                // it after a finish would resurrect the epoch in
                // pendingTxs and stall LCE forever.
                let seen = applied.contains(&(epoch, CLASS_BEGIN))
                    || applied.contains(&(epoch, CLASS_COMMIT))
                    || applied.contains(&(epoch, CLASS_ROLLBACK));
                if seen {
                    self.metrics.dedup_hits.inc();
                    return;
                }
                let remote = self.manager(to);
                // A begin for an epoch at or below this node's LCE is a
                // stale reordered delivery (delayed copy or redrive of a
                // roundtrip that already failed at the coordinator): the
                // epoch is globally finished here, and resurrecting it
                // into pendingTxs would let its late finish regress LCE.
                if epoch <= remote.lce() {
                    self.metrics.stale_ops.inc();
                    return;
                }
                applied.insert((epoch, CLASS_BEGIN));
                remote.clock().observe(origin_ec);
                remote.register_remote(epoch);
            }
            WireMsg::Forward { origin_ec } => {
                self.manager(to).clock().observe(origin_ec);
            }
            WireMsg::Finish {
                epoch,
                origin_ec,
                rollback,
            } => {
                let ep = self.endpoint(to);
                let mut applied = ep.applied.lock();
                let class = if rollback {
                    CLASS_ROLLBACK
                } else {
                    CLASS_COMMIT
                };
                if applied.contains(&(epoch, CLASS_COMMIT))
                    || applied.contains(&(epoch, CLASS_ROLLBACK))
                {
                    self.metrics.dedup_hits.inc();
                    return;
                }
                applied.insert((epoch, class));
                let remote = self.manager(to);
                remote.clock().observe(origin_ec);
                let res = if rollback {
                    remote.rollback_remote(epoch)
                } else {
                    remote.commit_remote(epoch)
                };
                if res.is_err() {
                    // The epoch never registered here (its begin was
                    // lost for good); marking the class above still
                    // blocks any delayed begin from resurrecting it.
                    self.metrics.stale_ops.inc();
                }
            }
            WireMsg::Response { merge_ec } => {
                if let Some(ec) = merge_ec {
                    self.manager(to).clock().observe(ec);
                }
            }
        }
    }

    /// Applies every delayed message whose due sequence has passed.
    fn flush_due_delayed(&self) -> usize {
        let now = self.network.current_seq();
        self.flush_delayed_where(|m| m.due_seq <= now)
    }

    /// Applies every delayed message unconditionally ("eventual
    /// delivery" — used by [`ProtocolCluster::settle`]).
    fn flush_all_delayed(&self) -> usize {
        self.flush_delayed_where(|_| true)
    }

    fn flush_delayed_where(&self, pred: impl Fn(&DelayedMsg) -> bool) -> usize {
        let due: Vec<DelayedMsg> = {
            let mut q = self.delayed.lock();
            let mut due = Vec::new();
            let mut rest = Vec::new();
            for m in q.drain(..) {
                if pred(&m) {
                    due.push(m);
                } else {
                    rest.push(m);
                }
            }
            *q = rest;
            due
        };
        for m in &due {
            self.apply_wire(m.to, &m.msg);
            self.metrics.delayed_applied.inc();
        }
        due.len()
    }

    /// One request/response exchange with retry. `respond` runs at
    /// the target after the request applies and returns
    /// `(response_pending_bytes, response_merge_ec, value)`; the
    /// value reaches the caller only if the response leg delivers.
    /// Returns `None` once the retry budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    fn roundtrip<R>(
        &self,
        origin: NodeId,
        target: NodeId,
        req_kind: MsgKind,
        resp_kind: MsgKind,
        req_payload_bytes: usize,
        req_pending_bytes: usize,
        req_msg: WireMsg,
        respond: impl Fn() -> (usize, Option<Epoch>, R),
    ) -> Option<R> {
        for attempt in 0..self.retry.max_attempts {
            if attempt > 0 {
                self.metrics.retries.inc();
                let backoff = self.retry.backoff_for(attempt - 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            self.flush_due_delayed();
            let fate = self.network.transmit_checked(
                req_kind,
                origin,
                target,
                req_payload_bytes,
                req_pending_bytes,
                CLOCK_BYTES,
            );
            match fate {
                Fate::Drop => {
                    self.metrics.timeouts.inc();
                    continue;
                }
                Fate::Delay { due_seq } => {
                    // The request is in flight somewhere; it will
                    // apply late. The sender can't tell that from a
                    // loss, so it still times out and retries.
                    self.delayed.lock().push(DelayedMsg {
                        due_seq,
                        to: target,
                        msg: req_msg.clone(),
                    });
                    self.metrics.timeouts.inc();
                    continue;
                }
                Fate::Deliver { copies } => {
                    for _ in 0..copies {
                        self.apply_wire(target, &req_msg);
                    }
                }
            }
            let (resp_pending_bytes, merge_ec, value) = respond();
            let fate = self.network.transmit_checked(
                resp_kind,
                target,
                origin,
                HEADER_BYTES + resp_pending_bytes,
                resp_pending_bytes,
                CLOCK_BYTES,
            );
            match fate {
                Fate::Drop => {
                    self.metrics.timeouts.inc();
                }
                Fate::Delay { due_seq } => {
                    self.delayed.lock().push(DelayedMsg {
                        due_seq,
                        to: origin,
                        msg: WireMsg::Response { merge_ec },
                    });
                    self.metrics.timeouts.inc();
                }
                Fate::Deliver { .. } => {
                    // Extra response copies are harmless: clock
                    // merges and pending-set unions are idempotent.
                    return Some(value);
                }
            }
        }
        None
    }

    /// Begins a RW transaction on `node`. Purely local: the begin
    /// broadcast rides on the first operation (see
    /// [`ProtocolCluster::broadcast_begin`]).
    pub fn begin_rw(&self, node: NodeId) -> DistributedTxn {
        let (epoch, deps) = self.manager(node).begin_rw_parts();
        DistributedTxn {
            origin: node,
            epoch,
            deps,
            broadcasted: self.active.read().len() == 1,
            begun_on: BTreeSet::new(),
            failed_on: BTreeSet::new(),
        }
    }

    /// Runs the begin broadcast for `txn`, piggybacked on an
    /// operation carrying `payload_bytes` to every other node:
    /// registers the epoch remotely, merges the origin's clock into
    /// each remote (one-way, as in Table IV's append event), and
    /// unions the remote pending sets into the deps.
    ///
    /// Under faults this is **resumable**: remotes that already acked
    /// are skipped, so a failed broadcast can be retried by calling
    /// again once the network heals. Returns
    /// [`AosiError::NodeUnreachable`] naming the first remote whose
    /// retry budget was exhausted.
    pub fn broadcast_begin(
        &self,
        txn: &mut DistributedTxn,
        payload_bytes: usize,
    ) -> Result<(), AosiError> {
        self.broadcast_begin_excluding(txn, payload_bytes, &BTreeSet::new())
    }

    /// [`ProtocolCluster::broadcast_begin`], skipping the nodes in
    /// `skip` entirely — the degraded-write path for replicas known to
    /// be down. A skipped node lands in neither `begun_on` nor
    /// `failed_on`, so finishes never target it; the caller must
    /// record the miss (e.g.
    /// [`ReplicationTracker::mark_missed`](crate::ReplicationTracker::mark_missed))
    /// so the §III-D gate holds the purge floor below the epoch until
    /// the node heals.
    ///
    /// Skipping dark nodes is SI-safe: deps come from the union of
    /// *reachable* pending sets, and every broadcasted transaction is
    /// registered on all nodes that were alive at its begin — so any
    /// transaction concurrent with this one is pending on some node
    /// this broadcast does reach.
    pub fn broadcast_begin_excluding(
        &self,
        txn: &mut DistributedTxn,
        payload_bytes: usize,
        skip: &BTreeSet<NodeId>,
    ) -> Result<(), AosiError> {
        if txn.broadcasted {
            return Ok(());
        }
        self.flush_due_delayed();
        let origin_ec = self.manager(txn.origin).clock().current_ec();
        let mut first_err = None;
        for node in self.active_nodes() {
            if node == txn.origin || txn.begun_on.contains(&node) || skip.contains(&node) {
                continue;
            }
            let remote = self.manager(node);
            let result = self.roundtrip(
                txn.origin,
                node,
                MsgKind::BeginRequest,
                MsgKind::BeginResponse,
                HEADER_BYTES + payload_bytes,
                0,
                WireMsg::Begin {
                    epoch: txn.epoch,
                    origin_ec,
                },
                || {
                    // Response: the remote's pendingTxs (and its EC,
                    // which Table IV shows the origin does not merge
                    // here).
                    let pending = remote.pending_txs();
                    let pending_bytes = pending.len() * std::mem::size_of::<Epoch>();
                    (pending_bytes, None, pending)
                },
            );
            match result {
                Some(pending) => {
                    txn.begun_on.insert(node);
                    txn.failed_on.remove(&node);
                    txn.deps
                        .extend(pending.into_iter().filter(|&p| p < txn.epoch));
                }
                None => {
                    txn.failed_on.insert(node);
                    first_err.get_or_insert(AosiError::NodeUnreachable {
                        epoch: txn.epoch,
                        node,
                    });
                }
            }
        }
        // Whatever deps the broadcast gathered (even partially, under
        // faults) must reach the origin's LSE gate: a purge that
        // outruns a remote-learned dep would leak its rows into this
        // transaction's snapshot.
        self.manager(txn.origin)
            .note_txn_deps(txn.epoch, txn.deps.iter().copied());
        match first_err {
            None => {
                txn.broadcasted = true;
                Ok(())
            }
            Some(e) => Err(e),
        }
    }

    /// Simulates forwarding an operation of `payload_bytes` from the
    /// coordinator to `targets`, carrying the origin's clock
    /// (one-way merge, Table IV's `append(T1)` row). The begin
    /// broadcast must already have run
    /// ([`AosiError::NotBroadcasted`] otherwise). Dropped forwards
    /// are retried; a delayed forward counts as delivered (it lands
    /// later, and clock merges commute).
    pub fn forward_op(
        &self,
        txn: &DistributedTxn,
        targets: &[NodeId],
        payload_bytes: usize,
    ) -> Result<(), AosiError> {
        if !txn.broadcasted {
            return Err(AosiError::NotBroadcasted(txn.epoch));
        }
        self.flush_due_delayed();
        let origin_ec = self.manager(txn.origin).clock().current_ec();
        for &node in targets {
            if node == txn.origin {
                continue;
            }
            let mut delivered = false;
            for attempt in 0..self.retry.max_attempts {
                if attempt > 0 {
                    self.metrics.retries.inc();
                    let backoff = self.retry.backoff_for(attempt - 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                let fate = self.network.transmit_checked(
                    MsgKind::Forward,
                    txn.origin,
                    node,
                    HEADER_BYTES + payload_bytes,
                    0,
                    CLOCK_BYTES,
                );
                match fate {
                    Fate::Drop => {
                        self.metrics.timeouts.inc();
                    }
                    Fate::Delay { due_seq } => {
                        self.delayed.lock().push(DelayedMsg {
                            due_seq,
                            to: node,
                            msg: WireMsg::Forward { origin_ec },
                        });
                        delivered = true;
                        break;
                    }
                    Fate::Deliver { .. } => {
                        self.manager(node).clock().observe(origin_ec);
                        delivered = true;
                        break;
                    }
                }
            }
            if !delivered {
                return Err(AosiError::NodeUnreachable {
                    epoch: txn.epoch,
                    node,
                });
            }
        }
        Ok(())
    }

    /// Commits `txn`: single roundtrip to every node that saw its
    /// begin, no consensus. Responses merge the remote clocks back
    /// into the origin (Table IV's `commit(T1)` row).
    ///
    /// A transaction that never broadcast sends **zero** messages —
    /// no other node registered it, so there is nothing to finish
    /// remotely.
    ///
    /// The local commit decision is final: remotes whose delivery
    /// exhausts the retry budget are queued for re-driving
    /// ([`ProtocolCluster::redrive_unacked`]) rather than failing the
    /// commit, and the affected node's LCE simply lags until the ack
    /// lands.
    pub fn commit(&self, txn: &DistributedTxn) -> Result<(), AosiError> {
        self.finish(txn, false)
    }

    /// Rolls `txn` back everywhere its begin may have reached (same
    /// message pattern and fault handling as commit).
    pub fn rollback(&self, txn: &DistributedTxn) -> Result<(), AosiError> {
        self.finish(txn, true)
    }

    fn finish(&self, txn: &DistributedTxn, rollback: bool) -> Result<(), AosiError> {
        self.flush_due_delayed();
        let origin = self.manager(txn.origin);
        if rollback {
            origin.rollback_remote(txn.epoch)?;
        } else {
            origin.commit_remote(txn.epoch)?;
        }
        {
            // Block any delayed begin still in flight *to the origin
            // itself* — there are none today (begins go only to
            // remotes), but the invariant is cheap to keep total.
            let mut applied = self.endpoint(txn.origin).applied.lock();
            applied.insert((
                txn.epoch,
                if rollback {
                    CLASS_ROLLBACK
                } else {
                    CLASS_COMMIT
                },
            ));
        }
        let deps_bytes = if rollback {
            0
        } else {
            txn.deps.len() * std::mem::size_of::<Epoch>()
        };
        let origin_ec = origin.clock().current_ec();
        for node in txn.finish_targets() {
            self.drive_finish(&UnackedOp {
                epoch: txn.epoch,
                origin: txn.origin,
                node,
                rollback,
                deps_bytes,
                origin_ec,
            });
        }
        Ok(())
    }

    /// Runs one finish roundtrip; queues the op as unacked if the
    /// retry budget runs out. Returns `true` on ack.
    fn drive_finish(&self, op: &UnackedOp) -> bool {
        let origin = self.manager(op.origin);
        let remote = self.manager(op.node);
        let (req_kind, resp_kind) = if op.rollback {
            (MsgKind::RollbackRequest, MsgKind::RollbackResponse)
        } else {
            (MsgKind::CommitRequest, MsgKind::CommitResponse)
        };
        let result = self.roundtrip(
            op.origin,
            op.node,
            req_kind,
            resp_kind,
            HEADER_BYTES + op.deps_bytes,
            op.deps_bytes,
            WireMsg::Finish {
                epoch: op.epoch,
                origin_ec: op.origin_ec,
                rollback: op.rollback,
            },
            || {
                let remote_ec = remote.clock().current_ec();
                (0, Some(remote_ec), remote_ec)
            },
        );
        match result {
            Some(remote_ec) => {
                origin.clock().observe(remote_ec);
                true
            }
            None => {
                self.unacked.lock().push(op.clone());
                false
            }
        }
    }

    /// Re-attempts every unacked commit/rollback delivery once.
    /// Returns the number still unacked afterwards.
    pub fn redrive_unacked(&self) -> usize {
        let ops: Vec<UnackedOp> = std::mem::take(&mut *self.unacked.lock());
        for op in ops {
            self.metrics.redrives.inc();
            self.drive_finish(&op);
        }
        self.unacked.lock().len()
    }

    /// Drains delayed messages and re-drives unacked finishes until
    /// the cluster quiesces or no further progress is possible (a
    /// node still unreachable). Returns `true` when fully quiesced:
    /// no message in flight, every finish acked everywhere.
    pub fn settle(&self) -> bool {
        // A handful of rounds is plenty when the network is healthy;
        // under a permanent partition each round makes no progress
        // and the early-exit below fires.
        for _ in 0..32 {
            let flushed = self.flush_all_delayed();
            let before = self.unacked.lock().len();
            let after = if before > 0 {
                self.redrive_unacked()
            } else {
                before
            };
            if after == 0 && self.delayed.lock().is_empty() {
                return true;
            }
            if flushed == 0 && after >= before {
                return false;
            }
        }
        false
    }

    /// Begins a read-only transaction on `node`: runs on the node's
    /// LCE with no network traffic at all (Section IV-C: "RO
    /// transactions do not require this step").
    pub fn begin_ro(&self, node: NodeId) -> Snapshot {
        self.manager(node).begin_ro()
    }

    /// Writes the `[cluster.protocol]` section of a metrics report:
    /// retry/timeout/idempotency counters and the re-drive backlog.
    pub fn report(&self, report: &mut ReportBuilder) {
        report
            .section("cluster.protocol")
            .counter("retries", &self.metrics.retries)
            .counter("timeouts", &self.metrics.timeouts)
            .counter("dedup_hits", &self.metrics.dedup_hits)
            .counter("stale_ops", &self.metrics.stale_ops)
            .counter("redrives", &self.metrics.redrives)
            .counter("delayed_applied", &self.metrics.delayed_applied)
            .metric("unacked", self.unacked_len())
            .metric("delayed_in_flight", self.delayed_len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{FaultPlan, LatencyModel, LinkFaults};

    fn cluster(n: u64) -> ProtocolCluster {
        ProtocolCluster::new(n, SimulatedNetwork::instant())
    }

    fn faulted(n: u64, plan: FaultPlan) -> ProtocolCluster {
        ProtocolCluster::with_retry(
            n,
            SimulatedNetwork::with_faults(LatencyModel::instant(), plan),
            RetryPolicy {
                base_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
        )
    }

    /// Reproduces Table IV: epoch clocks advancing on a 3-node
    /// cluster.
    #[test]
    fn table_iv_walkthrough() {
        let c = cluster(3);
        let ec = |n: NodeId| c.manager(n).clock().current_ec();
        assert_eq!((ec(1), ec(2), ec(3)), (1, 2, 3));

        // create(n1) -> T1: only n1's clock moves (1 -> 4).
        let mut t1 = c.begin_rw(1);
        assert_eq!(t1.epoch, 1);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 2, 3));

        // append(T1): forwards to all nodes, pushing n1's clock out;
        // n2: 2 -> 5, n3: 3 -> 6; n1 unchanged.
        c.broadcast_begin(&mut t1, 1024).unwrap();
        assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 6));

        // create(n3) -> T6 (EC 6 -> 9), create(n2) -> T5 (EC 5 -> 8).
        let t6 = c.begin_rw(3);
        assert_eq!(t6.epoch, 6);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 9));
        let t5 = c.begin_rw(2);
        assert_eq!(t5.epoch, 5);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 8, 9));

        // commit(T1): n1 pushes EC=4 (no-op remotely) and merges the
        // responses 8 and 9, landing on 10.
        c.commit(&t1).unwrap();
        assert_eq!((ec(1), ec(2), ec(3)), (10, 8, 9));
    }

    #[test]
    fn begin_broadcast_unions_remote_pending() {
        let c = cluster(2);
        // A txn on node 2, begun and broadcast.
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 0).unwrap();
        // A later txn on node 1 must pick up T2 as a dep even though
        // node 1 never began it.
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0).unwrap();
        assert!(t.epoch > t2.epoch);
        assert!(t.deps().contains(&t2.epoch), "deps: {:?}", t.deps());
        let snap = t.snapshot();
        assert!(!snap.sees(t2.epoch));
        c.commit(&t2).unwrap();
        c.commit(&t).unwrap();
    }

    #[test]
    fn commit_advances_lce_on_every_node() {
        let c = cluster(3);
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0).unwrap();
        c.commit(&t).unwrap();
        for node in 1..=3 {
            assert_eq!(c.manager(node).lce(), t.epoch, "node {node}");
        }
    }

    #[test]
    fn remote_lce_stalls_until_dep_commits() {
        let c = cluster(2);
        let mut t1 = c.begin_rw(1); // epoch 1
        c.broadcast_begin(&mut t1, 0).unwrap();
        let mut t2 = c.begin_rw(2); // epoch > 1
        c.broadcast_begin(&mut t2, 0).unwrap();
        c.commit(&t2).unwrap();
        for node in 1..=2 {
            assert_eq!(
                c.manager(node).lce(),
                0,
                "T1 still pending; LCE must stall on node {node}"
            );
        }
        c.commit(&t1).unwrap();
        for node in 1..=2 {
            assert_eq!(c.manager(node).lce(), t2.epoch, "node {node}");
        }
    }

    #[test]
    fn ro_transactions_generate_no_traffic() {
        let c = cluster(3);
        let before = c.network().stats().messages;
        let snap = c.begin_ro(2);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(c.network().stats().messages, before);
    }

    #[test]
    fn rollback_disappears_everywhere() {
        let c = cluster(2);
        let mut t1 = c.begin_rw(1);
        c.broadcast_begin(&mut t1, 0).unwrap();
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 0).unwrap();
        c.commit(&t2).unwrap();
        c.rollback(&t1).unwrap();
        for node in 1..=2 {
            assert_eq!(c.manager(node).lce(), t2.epoch, "node {node}");
            assert!(c.manager(node).pending_txs().is_empty());
        }
    }

    #[test]
    fn single_node_cluster_needs_no_broadcast() {
        let c = cluster(1);
        let t = c.begin_rw(1);
        assert!(t.is_broadcasted());
        let _ = t.snapshot();
        c.commit(&t).unwrap();
        assert_eq!(c.manager(1).lce(), t.epoch);
        assert_eq!(c.network().stats().messages, 0);
    }

    #[test]
    #[should_panic(expected = "begin broadcast")]
    fn snapshot_before_broadcast_panics() {
        let c = cluster(2);
        let t = c.begin_rw(1);
        let _ = t.snapshot();
    }

    #[test]
    fn write_skew_window_is_si_not_serializable() {
        // Section IV-B: two concurrent transactions where neither
        // sees the other — allowed under SI (write-skew shape).
        let c = cluster(2);
        let mut tk = c.begin_rw(1);
        c.broadcast_begin(&mut tk, 0).unwrap();
        let mut tl = c.begin_rw(2);
        c.broadcast_begin(&mut tl, 0).unwrap();
        let (k, l) = (tk.epoch.min(tl.epoch), tk.epoch.max(tl.epoch));
        let snap_k = if tk.epoch == k {
            tk.snapshot()
        } else {
            tl.snapshot()
        };
        let snap_l = if tl.epoch == l {
            tl.snapshot()
        } else {
            tk.snapshot()
        };
        assert!(!snap_k.sees(l), "k < l: timestamp ordering hides l");
        assert!(!snap_l.sees(k), "k pending when l began: deps hide k");
        c.commit(&tk).unwrap();
        c.commit(&tl).unwrap();
    }

    #[test]
    fn traffic_is_accounted() {
        let c = ProtocolCluster::new(3, SimulatedNetwork::instant());
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 500).unwrap();
        let begin_msgs = c.network().stats().messages;
        assert_eq!(begin_msgs, 4, "2 remotes x (request + response)");
        c.forward_op(&t, &[2, 3], 500).unwrap();
        assert_eq!(c.network().stats().messages, begin_msgs + 2);
        c.commit(&t).unwrap();
        assert_eq!(c.network().stats().messages, begin_msgs + 6);
        assert!(c.network().stats().bytes > 1500);
    }

    #[test]
    fn traffic_is_classified_by_type() {
        let c = ProtocolCluster::new(3, SimulatedNetwork::instant());
        let mut t1 = c.begin_rw(1);
        c.broadcast_begin(&mut t1, 500).unwrap();
        // T1 is pending when T2 begins, so both begin responses
        // piggyback one-epoch pending sets.
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 500).unwrap();
        c.forward_op(&t2, &[1, 3], 500).unwrap();
        c.commit(&t2).unwrap();
        c.rollback(&t1).unwrap();

        let net = c.network();
        assert_eq!(net.messages_of(MsgKind::BeginRequest), 4);
        assert_eq!(net.messages_of(MsgKind::BeginResponse), 4);
        assert_eq!(net.messages_of(MsgKind::Forward), 2);
        assert_eq!(net.messages_of(MsgKind::CommitRequest), 2);
        assert_eq!(net.messages_of(MsgKind::CommitResponse), 2);
        assert_eq!(net.messages_of(MsgKind::RollbackRequest), 2);
        assert_eq!(net.messages_of(MsgKind::RollbackResponse), 2);
        assert_eq!(net.messages_of(MsgKind::Other), 0);
        // The typed counts partition the total message count.
        assert_eq!(net.stats().messages, 18);

        let mut report = obs::ReportBuilder::new();
        net.report(&mut report);
        let text = report.finish();
        assert!(text.contains("[cluster]"), "report:\n{text}");
        assert!(text.contains("messages = 18"), "report:\n{text}");
        assert!(
            text.contains("messages.begin_request = 4"),
            "report:\n{text}"
        );
        // Begin responses ship the remote pending sets ({T1} for
        // T1's broadcast, {T1, T2} for T2's: 2x8 + 2x16 = 48 bytes)
        // and T2's commit request ships its one-element deps set to
        // two remotes (16 bytes).
        assert!(
            text.contains("piggyback_pending_bytes = 64"),
            "report:\n{text}"
        );
        // Every message piggybacks one clock value.
        assert!(
            text.contains("piggyback_clock_bytes = 144"),
            "report:\n{text}"
        );
    }

    /// Regression for the fan-out bug: finishing a transaction whose
    /// begin never broadcast used to message every node anyway.
    /// Nothing remote ever registered the epoch, so the finish must
    /// be purely local: zero messages.
    #[test]
    fn never_broadcast_finish_sends_zero_messages() {
        let c = cluster(3);
        let t = c.begin_rw(1);
        assert!(!t.is_broadcasted());
        c.commit(&t).unwrap();
        assert_eq!(c.network().stats().messages, 0, "commit fan-out leaked");
        assert_eq!(c.manager(1).lce(), t.epoch);

        let t2 = c.begin_rw(1);
        c.rollback(&t2).unwrap();
        assert_eq!(c.network().stats().messages, 0, "rollback fan-out leaked");
        for node in 2..=3 {
            assert!(
                c.manager(node).pending_txs().is_empty(),
                "node {node} must never have seen the local-only txns"
            );
        }
    }

    /// The bare `assert!` became a typed error: forwarding before
    /// the begin broadcast must not abort the process.
    #[test]
    fn forward_before_broadcast_is_typed_error() {
        let c = cluster(2);
        let t = c.begin_rw(1);
        let err = c.forward_op(&t, &[2], 64).unwrap_err();
        assert_eq!(err, AosiError::NotBroadcasted(t.epoch));
        assert_eq!(c.network().stats().messages, 0);
    }

    #[test]
    fn retry_recovers_from_a_crash_window() {
        // Node 2 is dark for the first two message slots: the first
        // two begin-request attempts drop, the third lands.
        let c = faulted(3, FaultPlan::seeded(11).crash(2, 0, 2));
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 64).unwrap();
        assert!(t.is_broadcasted());
        assert_eq!(c.manager(2).pending_txs(), vec![t.epoch]);
        assert!(c.metrics().retries.get() >= 2);
        assert!(c.metrics().timeouts.get() >= 2);
        c.commit(&t).unwrap();
        assert!(c.settle());
        for node in 1..=3 {
            assert_eq!(c.manager(node).lce(), t.epoch, "node {node}");
        }
    }

    #[test]
    fn duplicate_deliveries_are_idempotent() {
        let c = faulted(
            3,
            FaultPlan::seeded(5).dup_p(1.0), // every delivery doubled
        );
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 64).unwrap();
        assert_eq!(
            c.manager(2).pending_txs(),
            vec![t.epoch],
            "double begin must register once"
        );
        c.commit(&t).unwrap();
        assert!(c.settle());
        for node in 1..=3 {
            assert_eq!(c.manager(node).lce(), t.epoch, "node {node}");
        }
        assert!(
            c.metrics().dedup_hits.get() >= 4,
            "each duplicated request should hit the filter once: {}",
            c.metrics().dedup_hits.get()
        );
    }

    #[test]
    fn broadcast_is_resumable_after_node_restart() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let net = SimulatedNetwork::with_faults(LatencyModel::instant(), FaultPlan::seeded(3));
        let c = ProtocolCluster::with_retry(3, net, policy);
        c.network().crash_node(2);
        let mut t = c.begin_rw(1);
        let err = c.broadcast_begin(&mut t, 0).unwrap_err();
        assert_eq!(
            err,
            AosiError::NodeUnreachable {
                epoch: t.epoch,
                node: 2
            }
        );
        assert!(!t.is_broadcasted());
        assert_eq!(t.begun_on().iter().copied().collect::<Vec<_>>(), [3]);
        assert_eq!(t.failed_on().iter().copied().collect::<Vec<_>>(), [2]);

        c.network().restart_node(2);
        c.broadcast_begin(&mut t, 0).unwrap();
        assert!(t.is_broadcasted());
        assert!(t.failed_on().is_empty());
        // Node 3 was not re-contacted: 2 failed attempts to node 2,
        // one success each to 3 (first call) and 2 (second call).
        assert_eq!(c.network().messages_of(MsgKind::BeginRequest), 4);
        assert_eq!(c.network().messages_of(MsgKind::BeginResponse), 2);
        // And the epoch registered exactly once per remote.
        assert_eq!(c.manager(2).pending_txs(), vec![t.epoch]);
        assert_eq!(c.manager(3).pending_txs(), vec![t.epoch]);
        c.commit(&t).unwrap();
        assert!(c.settle());
    }

    #[test]
    fn unacked_commit_is_redriven_until_acked() {
        let c = faulted(3, FaultPlan::seeded(17));
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0).unwrap();
        c.network().crash_node(2);
        c.commit(&t).unwrap();
        assert_eq!(c.unacked_len(), 1, "node 2's ack is outstanding");
        assert_eq!(c.manager(3).lce(), t.epoch, "healthy node already acked");
        assert_eq!(c.manager(2).lce(), 0, "dark node lags");
        assert!(!c.settle(), "cannot settle against a dark node");

        c.network().restart_node(2);
        assert!(c.settle());
        assert_eq!(c.unacked_len(), 0);
        assert_eq!(c.manager(2).lce(), t.epoch);
        assert!(c.metrics().redrives.get() >= 1);
    }

    /// Across many seeds with heavy delay/drop on one link, a begin
    /// that lands after its transaction's finish must never
    /// resurrect the epoch in the remote pending set (which would
    /// stall LCE forever).
    #[test]
    fn late_begin_never_resurrects_a_finished_txn() {
        for seed in 0..40u64 {
            let plan = FaultPlan::seeded(seed).link(
                1,
                2,
                LinkFaults {
                    drop_p: 0.3,
                    delay_p: 0.5,
                    dup_p: 0.2,
                },
            );
            let c = faulted(3, plan);
            let mut t = c.begin_rw(1);
            let broadcast = c.broadcast_begin(&mut t, 16);
            let finish = if seed % 2 == 0 {
                c.rollback(&t)
            } else if broadcast.is_ok() {
                c.commit(&t)
            } else {
                c.rollback(&t)
            };
            finish.unwrap();
            c.settle();
            // Whatever was reordered, dropped, or duplicated: the
            // epoch must not linger pending anywhere.
            for node in 1..=3 {
                assert!(
                    !c.manager(node).pending_txs().contains(&t.epoch),
                    "seed {seed}: T{} resurrected on node {node}",
                    t.epoch
                );
            }
        }
    }

    #[test]
    fn dormant_slots_receive_no_begins() {
        // Capacity 4, only nodes 1 and 2 active: a broadcast touches
        // one remote, and the dormant managers never hear of it.
        let c = ProtocolCluster::with_capacity(
            4,
            &[1, 2],
            SimulatedNetwork::instant(),
            RetryPolicy::default(),
        );
        assert_eq!(c.active_nodes(), vec![1, 2]);
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 64).unwrap();
        assert_eq!(c.network().stats().messages, 2, "one remote roundtrip");
        assert!(c.manager(3).pending_txs().is_empty());
        assert!(c.manager(4).pending_txs().is_empty());
        c.commit(&t).unwrap();
        assert_eq!(c.manager(2).lce(), t.epoch);
        assert_eq!(c.manager(3).lce(), 0, "dormant slot untouched");
    }

    #[test]
    fn lone_active_node_needs_no_broadcast() {
        let c = ProtocolCluster::with_capacity(
            3,
            &[2],
            SimulatedNetwork::instant(),
            RetryPolicy::default(),
        );
        let t = c.begin_rw(2);
        assert!(t.is_broadcasted());
        c.commit(&t).unwrap();
        assert_eq!(c.network().stats().messages, 0);
    }

    #[test]
    fn activation_catches_up_the_joiner_clock() {
        let c = ProtocolCluster::with_capacity(
            3,
            &[1, 2],
            SimulatedNetwork::instant(),
            RetryPolicy::default(),
        );
        // Push the active clocks forward.
        for _ in 0..5 {
            let mut t = c.begin_rw(1);
            c.broadcast_begin(&mut t, 0).unwrap();
            c.commit(&t).unwrap();
        }
        let frontier = c.manager(1).clock().current_ec();
        c.activate(3);
        assert!(c.is_active(3));
        let t = c.begin_rw(3);
        assert!(
            t.epoch > frontier,
            "joiner epoch {} must sort after the pre-join frontier {frontier}",
            t.epoch
        );
        c.deactivate(3);
        assert_eq!(c.active_nodes(), vec![1, 2]);
        // Idempotent both ways.
        c.deactivate(3);
        c.activate(2);
        assert_eq!(c.active_nodes(), vec![1, 2]);
    }

    #[test]
    fn broadcast_excluding_skips_dark_node_entirely() {
        let c = cluster(3);
        let mut t = c.begin_rw(1);
        let skip: BTreeSet<NodeId> = [2].into_iter().collect();
        c.broadcast_begin_excluding(&mut t, 64, &skip).unwrap();
        assert!(t.is_broadcasted());
        assert!(!t.begun_on().contains(&2));
        assert!(!t.failed_on().contains(&2));
        assert!(c.manager(2).pending_txs().is_empty());
        let before = c.network().stats().messages;
        c.commit(&t).unwrap();
        // Finish targets only node 3: one roundtrip.
        assert_eq!(c.network().stats().messages, before + 2);
        assert_eq!(c.manager(3).lce(), t.epoch);
        assert_eq!(c.manager(2).lce(), 0, "skipped node never saw the txn");
    }

    #[test]
    fn protocol_report_has_fault_counters() {
        let c = faulted(2, FaultPlan::seeded(11).crash(2, 0, 2));
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0).unwrap();
        c.commit(&t).unwrap();
        c.settle();
        let mut report = obs::ReportBuilder::new();
        c.report(&mut report);
        let text = report.finish();
        assert!(text.contains("[cluster.protocol]"), "report:\n{text}");
        assert!(text.contains("retries"), "report:\n{text}");
        assert!(text.contains("timeouts"), "report:\n{text}");
        assert!(text.contains("dedup_hits"), "report:\n{text}");
        assert!(text.contains("unacked = 0"), "report:\n{text}");
    }
}
