//! The distributed transaction flow of Section IV.
//!
//! Epochs are assigned purely locally (strided clocks, Section IV-A);
//! the begin broadcast — piggybacked on the transaction's first
//! fan-out operation — updates every remote Epoch Clock past the new
//! epoch and returns each node's `pendingTxs`, whose union becomes
//! the transaction's deps (Section IV-C). Commits are a single
//! roundtrip with no consensus: "since there is no deterministic
//! reason why a transaction could fail once it starts execution …
//! the commit message can be implemented using a single roundtrip to
//! each node."
//!
//! Clock piggybacking follows Table IV exactly: operation fan-outs
//! push the origin's clock outward (one-way merge at the receivers);
//! commit responses additionally merge the remotes' clocks back into
//! the origin.

use std::collections::BTreeSet;

use aosi::{Epoch, Snapshot, TxnManager};

use crate::bus::{MsgKind, SimulatedNetwork};

/// 1-based node identifier (matches the epoch stride residues).
pub type NodeId = u64;

/// Approximate wire size of a protocol message header.
const HEADER_BYTES: usize = 24;

/// Wire size of one piggybacked epoch clock value.
const CLOCK_BYTES: usize = std::mem::size_of::<Epoch>();

/// A RW transaction coordinated from one node of the cluster.
#[derive(Debug)]
pub struct DistributedTxn {
    /// Coordinator node.
    pub origin: NodeId,
    /// The transaction's epoch.
    pub epoch: Epoch,
    deps: BTreeSet<Epoch>,
    broadcasted: bool,
}

impl DistributedTxn {
    /// The snapshot this transaction reads from.
    ///
    /// # Panics
    /// Panics if called before the begin broadcast: without the
    /// remote pending sets the snapshot would not be SI-consistent.
    pub fn snapshot(&self) -> Snapshot {
        assert!(
            self.broadcasted,
            "snapshot requested before the begin broadcast completed"
        );
        Snapshot::new(self.epoch, self.deps.clone())
    }

    /// Deps gathered so far (local until broadcast, then global).
    pub fn deps(&self) -> &BTreeSet<Epoch> {
        &self.deps
    }

    /// `true` once the begin broadcast has run.
    pub fn is_broadcasted(&self) -> bool {
        self.broadcasted
    }
}

/// All the per-node transaction managers plus the simulated wire.
///
/// Higher layers (the multi-node Cubrick engine) hold one of these
/// and route data operations themselves; this type owns only the
/// concurrency-control traffic.
pub struct ProtocolCluster {
    managers: Vec<TxnManager>,
    network: SimulatedNetwork,
}

impl ProtocolCluster {
    /// A cluster of `num_nodes` nodes sharing `network`.
    pub fn new(num_nodes: u64, network: SimulatedNetwork) -> Self {
        let managers = (1..=num_nodes)
            .map(|i| TxnManager::new(i, num_nodes))
            .collect();
        ProtocolCluster { managers, network }
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> u64 {
        self.managers.len() as u64
    }

    /// The manager of `node` (1-based).
    pub fn manager(&self, node: NodeId) -> &TxnManager {
        &self.managers[(node - 1) as usize]
    }

    /// The shared network (for traffic stats).
    pub fn network(&self) -> &SimulatedNetwork {
        &self.network
    }

    /// Begins a RW transaction on `node`. Purely local: the begin
    /// broadcast rides on the first operation (see
    /// [`ProtocolCluster::broadcast_begin`]).
    pub fn begin_rw(&self, node: NodeId) -> DistributedTxn {
        let (epoch, deps) = self.manager(node).begin_rw_parts();
        DistributedTxn {
            origin: node,
            epoch,
            deps,
            broadcasted: self.num_nodes() == 1,
        }
    }

    /// Runs the begin broadcast for `txn`, piggybacked on an
    /// operation carrying `payload_bytes` to every other node:
    /// registers the epoch remotely, merges the origin's clock into
    /// each remote (one-way, as in Table IV's append event), and
    /// unions the remote pending sets into the deps.
    pub fn broadcast_begin(&self, txn: &mut DistributedTxn, payload_bytes: usize) {
        if txn.broadcasted {
            return;
        }
        let origin_ec = self.manager(txn.origin).clock().current_ec();
        for node in 1..=self.num_nodes() {
            if node == txn.origin {
                continue;
            }
            self.network.transmit_typed(
                MsgKind::BeginRequest,
                HEADER_BYTES + payload_bytes,
                0,
                CLOCK_BYTES,
            );
            let remote = self.manager(node);
            remote.clock().observe(origin_ec);
            remote.register_remote(txn.epoch);
            // Response: the remote's pendingTxs (and its EC, which
            // Table IV shows the origin does not merge here).
            let pending = remote.pending_txs();
            let pending_bytes = pending.len() * std::mem::size_of::<Epoch>();
            self.network.transmit_typed(
                MsgKind::BeginResponse,
                HEADER_BYTES + pending_bytes,
                pending_bytes,
                CLOCK_BYTES,
            );
            txn.deps
                .extend(pending.into_iter().filter(|&p| p < txn.epoch));
        }
        txn.broadcasted = true;
    }

    /// Simulates forwarding an operation of `payload_bytes` from the
    /// coordinator to `targets`, carrying the origin's clock
    /// (one-way merge, Table IV's `append(T1)` row). The begin
    /// broadcast must already have run.
    pub fn forward_op(&self, txn: &DistributedTxn, targets: &[NodeId], payload_bytes: usize) {
        assert!(txn.broadcasted, "operations require the begin broadcast");
        let origin_ec = self.manager(txn.origin).clock().current_ec();
        for &node in targets {
            if node == txn.origin {
                continue;
            }
            self.network.transmit_typed(
                MsgKind::Forward,
                HEADER_BYTES + payload_bytes,
                0,
                CLOCK_BYTES,
            );
            self.manager(node).clock().observe(origin_ec);
        }
    }

    /// Commits `txn`: single roundtrip to every node, no consensus.
    /// Responses merge the remote clocks back into the origin
    /// (Table IV's `commit(T1)` row).
    pub fn commit(&self, txn: &DistributedTxn) -> Result<(), aosi::AosiError> {
        let origin = self.manager(txn.origin);
        origin.commit_remote(txn.epoch)?;
        let origin_ec = origin.clock().current_ec();
        let deps_bytes = txn.deps.len() * std::mem::size_of::<Epoch>();
        for node in 1..=self.num_nodes() {
            if node == txn.origin {
                continue;
            }
            self.network.transmit_typed(
                MsgKind::CommitRequest,
                HEADER_BYTES + deps_bytes,
                deps_bytes,
                CLOCK_BYTES,
            );
            let remote = self.manager(node);
            remote.clock().observe(origin_ec);
            if txn.broadcasted {
                remote.commit_remote(txn.epoch)?;
            }
            let remote_ec = remote.clock().current_ec();
            self.network
                .transmit_typed(MsgKind::CommitResponse, HEADER_BYTES, 0, CLOCK_BYTES);
            origin.clock().observe(remote_ec);
        }
        Ok(())
    }

    /// Rolls `txn` back everywhere (same message pattern as commit).
    pub fn rollback(&self, txn: &DistributedTxn) -> Result<(), aosi::AosiError> {
        let origin = self.manager(txn.origin);
        origin.rollback_remote(txn.epoch)?;
        let origin_ec = origin.clock().current_ec();
        for node in 1..=self.num_nodes() {
            if node == txn.origin {
                continue;
            }
            self.network
                .transmit_typed(MsgKind::RollbackRequest, HEADER_BYTES, 0, CLOCK_BYTES);
            let remote = self.manager(node);
            remote.clock().observe(origin_ec);
            if txn.broadcasted {
                remote.rollback_remote(txn.epoch)?;
            }
            let remote_ec = remote.clock().current_ec();
            self.network
                .transmit_typed(MsgKind::RollbackResponse, HEADER_BYTES, 0, CLOCK_BYTES);
            origin.clock().observe(remote_ec);
        }
        Ok(())
    }

    /// Begins a read-only transaction on `node`: runs on the node's
    /// LCE with no network traffic at all (Section IV-C: "RO
    /// transactions do not require this step").
    pub fn begin_ro(&self, node: NodeId) -> Snapshot {
        self.manager(node).begin_ro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: u64) -> ProtocolCluster {
        ProtocolCluster::new(n, SimulatedNetwork::instant())
    }

    /// Reproduces Table IV: epoch clocks advancing on a 3-node
    /// cluster.
    #[test]
    fn table_iv_walkthrough() {
        let c = cluster(3);
        let ec = |n: NodeId| c.manager(n).clock().current_ec();
        assert_eq!((ec(1), ec(2), ec(3)), (1, 2, 3));

        // create(n1) -> T1: only n1's clock moves (1 -> 4).
        let mut t1 = c.begin_rw(1);
        assert_eq!(t1.epoch, 1);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 2, 3));

        // append(T1): forwards to all nodes, pushing n1's clock out;
        // n2: 2 -> 5, n3: 3 -> 6; n1 unchanged.
        c.broadcast_begin(&mut t1, 1024);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 6));

        // create(n3) -> T6 (EC 6 -> 9), create(n2) -> T5 (EC 5 -> 8).
        let t6 = c.begin_rw(3);
        assert_eq!(t6.epoch, 6);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 9));
        let t5 = c.begin_rw(2);
        assert_eq!(t5.epoch, 5);
        assert_eq!((ec(1), ec(2), ec(3)), (4, 8, 9));

        // commit(T1): n1 pushes EC=4 (no-op remotely) and merges the
        // responses 8 and 9, landing on 10.
        c.commit(&t1).unwrap();
        assert_eq!((ec(1), ec(2), ec(3)), (10, 8, 9));
    }

    #[test]
    fn begin_broadcast_unions_remote_pending() {
        let c = cluster(2);
        // A txn on node 2, begun and broadcast.
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 0);
        // A later txn on node 1 must pick up T2 as a dep even though
        // node 1 never began it.
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0);
        assert!(t.epoch > t2.epoch);
        assert!(t.deps().contains(&t2.epoch), "deps: {:?}", t.deps());
        let snap = t.snapshot();
        assert!(!snap.sees(t2.epoch));
        c.commit(&t2).unwrap();
        c.commit(&t).unwrap();
    }

    #[test]
    fn commit_advances_lce_on_every_node() {
        let c = cluster(3);
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 0);
        c.commit(&t).unwrap();
        for node in 1..=3 {
            assert_eq!(c.manager(node).lce(), t.epoch, "node {node}");
        }
    }

    #[test]
    fn remote_lce_stalls_until_dep_commits() {
        let c = cluster(2);
        let mut t1 = c.begin_rw(1); // epoch 1
        c.broadcast_begin(&mut t1, 0);
        let mut t2 = c.begin_rw(2); // epoch > 1
        c.broadcast_begin(&mut t2, 0);
        c.commit(&t2).unwrap();
        for node in 1..=2 {
            assert_eq!(
                c.manager(node).lce(),
                0,
                "T1 still pending; LCE must stall on node {node}"
            );
        }
        c.commit(&t1).unwrap();
        for node in 1..=2 {
            assert_eq!(c.manager(node).lce(), t2.epoch, "node {node}");
        }
    }

    #[test]
    fn ro_transactions_generate_no_traffic() {
        let c = cluster(3);
        let before = c.network().stats().messages;
        let snap = c.begin_ro(2);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(c.network().stats().messages, before);
    }

    #[test]
    fn rollback_disappears_everywhere() {
        let c = cluster(2);
        let mut t1 = c.begin_rw(1);
        c.broadcast_begin(&mut t1, 0);
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 0);
        c.commit(&t2).unwrap();
        c.rollback(&t1).unwrap();
        for node in 1..=2 {
            assert_eq!(c.manager(node).lce(), t2.epoch, "node {node}");
            assert!(c.manager(node).pending_txs().is_empty());
        }
    }

    #[test]
    fn single_node_cluster_needs_no_broadcast() {
        let c = cluster(1);
        let t = c.begin_rw(1);
        assert!(t.is_broadcasted());
        let _ = t.snapshot();
        c.commit(&t).unwrap();
        assert_eq!(c.manager(1).lce(), t.epoch);
        assert_eq!(c.network().stats().messages, 0);
    }

    #[test]
    #[should_panic(expected = "begin broadcast")]
    fn snapshot_before_broadcast_panics() {
        let c = cluster(2);
        let t = c.begin_rw(1);
        let _ = t.snapshot();
    }

    #[test]
    fn write_skew_window_is_si_not_serializable() {
        // Section IV-B: two concurrent transactions where neither
        // sees the other — allowed under SI (write-skew shape).
        let c = cluster(2);
        let mut tk = c.begin_rw(1);
        c.broadcast_begin(&mut tk, 0);
        let mut tl = c.begin_rw(2);
        c.broadcast_begin(&mut tl, 0);
        let (k, l) = (tk.epoch.min(tl.epoch), tk.epoch.max(tl.epoch));
        let snap_k = if tk.epoch == k {
            tk.snapshot()
        } else {
            tl.snapshot()
        };
        let snap_l = if tl.epoch == l {
            tl.snapshot()
        } else {
            tk.snapshot()
        };
        assert!(!snap_k.sees(l), "k < l: timestamp ordering hides l");
        assert!(!snap_l.sees(k), "k pending when l began: deps hide k");
        c.commit(&tk).unwrap();
        c.commit(&tl).unwrap();
    }

    #[test]
    fn traffic_is_accounted() {
        let c = ProtocolCluster::new(3, SimulatedNetwork::instant());
        let mut t = c.begin_rw(1);
        c.broadcast_begin(&mut t, 500);
        let begin_msgs = c.network().stats().messages;
        assert_eq!(begin_msgs, 4, "2 remotes x (request + response)");
        c.forward_op(&t, &[2, 3], 500);
        assert_eq!(c.network().stats().messages, begin_msgs + 2);
        c.commit(&t).unwrap();
        assert_eq!(c.network().stats().messages, begin_msgs + 6);
        assert!(c.network().stats().bytes > 1500);
    }

    #[test]
    fn traffic_is_classified_by_type() {
        let c = ProtocolCluster::new(3, SimulatedNetwork::instant());
        let mut t1 = c.begin_rw(1);
        c.broadcast_begin(&mut t1, 500);
        // T1 is pending when T2 begins, so both begin responses
        // piggyback one-epoch pending sets.
        let mut t2 = c.begin_rw(2);
        c.broadcast_begin(&mut t2, 500);
        c.forward_op(&t2, &[1, 3], 500);
        c.commit(&t2).unwrap();
        c.rollback(&t1).unwrap();

        let net = c.network();
        assert_eq!(net.messages_of(MsgKind::BeginRequest), 4);
        assert_eq!(net.messages_of(MsgKind::BeginResponse), 4);
        assert_eq!(net.messages_of(MsgKind::Forward), 2);
        assert_eq!(net.messages_of(MsgKind::CommitRequest), 2);
        assert_eq!(net.messages_of(MsgKind::CommitResponse), 2);
        assert_eq!(net.messages_of(MsgKind::RollbackRequest), 2);
        assert_eq!(net.messages_of(MsgKind::RollbackResponse), 2);
        assert_eq!(net.messages_of(MsgKind::Other), 0);
        // The typed counts partition the total message count.
        assert_eq!(net.stats().messages, 18);

        let mut report = obs::ReportBuilder::new();
        net.report(&mut report);
        let text = report.finish();
        assert!(text.contains("[cluster]"), "report:\n{text}");
        assert!(text.contains("messages = 18"), "report:\n{text}");
        assert!(
            text.contains("messages.begin_request = 4"),
            "report:\n{text}"
        );
        // Begin responses ship the remote pending sets ({T1} for
        // T1's broadcast, {T1, T2} for T2's: 2x8 + 2x16 = 48 bytes)
        // and T2's commit request ships its one-element deps set to
        // two remotes (16 bytes).
        assert!(
            text.contains("piggyback_pending_bytes = 64"),
            "report:\n{text}"
        );
        // Every message piggybacks one clock value.
        assert!(
            text.contains("piggyback_clock_bytes = 144"),
            "report:\n{text}"
        );
    }
}
