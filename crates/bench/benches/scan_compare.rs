//! Head-to-head scan cost: AOSI snapshot isolation vs.
//! read-uncommitted vs. the per-record-timestamp MVCC baseline, on
//! the same row count.
//!
//! This is the executable version of the paper's core trade: AOSI
//! derives visibility from a handful of (epoch, range) entries —
//! O(entries) setup plus word-wide bitmap writes — while MVCC tests
//! two timestamps per row.

use std::hint::black_box;

use columnar::{ColumnType, Field, Schema, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubrick::{AggFn, Aggregation, CubeSchema, Dimension, Engine, IsolationMode, Metric, Query};
use mvcc_baseline::{MvccStore, MvccTxnManager};

const ROWS: u64 = 500_000;
const BATCH: usize = 5000;

fn aosi_engine() -> Engine {
    let engine = Engine::new(2);
    engine
        .create_cube(
            CubeSchema::new(
                "t",
                vec![Dimension::int("k", 1 << 16, 1 << 12)],
                vec![Metric::int("m")],
            )
            .unwrap(),
        )
        .unwrap();
    let mut loaded = 0u64;
    let mut key = 0i64;
    while loaded < ROWS {
        let rows: Vec<_> = (0..BATCH)
            .map(|i| {
                key = (key + 7919) % (1 << 16);
                vec![Value::I64(key), Value::I64(i as i64)]
            })
            .collect();
        engine.load("t", &rows, 0).unwrap();
        loaded += BATCH as u64;
    }
    engine
}

fn mvcc_store() -> MvccStore {
    let schema = Schema::new(vec![
        Field::new("k", ColumnType::I64),
        Field::new("m", ColumnType::I64),
    ]);
    let mut store = MvccStore::new(schema, MvccTxnManager::new());
    let mut loaded = 0u64;
    let mut key = 0i64;
    while loaded < ROWS {
        let mut txn = store.manager().begin();
        for i in 0..BATCH {
            key = (key + 7919) % (1 << 16);
            store.insert(&mut txn, &vec![Value::I64(key), Value::I64(i as i64)]);
        }
        store.commit(&mut txn).unwrap();
        loaded += BATCH as u64;
    }
    store
}

fn bench_scan_modes(c: &mut Criterion) {
    let engine = aosi_engine();
    let store = mvcc_store();
    let query = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "m")]);

    let mut group = c.benchmark_group("scan_500k_rows");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS));
    group.bench_function("aosi_snapshot_isolation", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query("t", &query, IsolationMode::Snapshot)
                    .unwrap()
                    .scalar(),
            )
        })
    });
    group.bench_function("read_uncommitted", |b| {
        b.iter(|| {
            black_box(
                engine
                    .query("t", &query, IsolationMode::ReadUncommitted)
                    .unwrap()
                    .scalar(),
            )
        })
    });
    group.bench_function("mvcc_per_record_timestamps", |b| {
        b.iter(|| {
            let ts = store.manager().latest();
            let (bitmap, _) = store.scan_snapshot(ts);
            black_box(store.aggregate_sum(1, &bitmap))
        })
    });
    group.finish();
}

/// The visibility step alone (no aggregation), AOSI vs MVCC.
fn bench_visibility_only(c: &mut Criterion) {
    let store = mvcc_store();
    let mut epochs = aosi::EpochsVector::new();
    let entries = ROWS / BATCH as u64;
    for e in 1..=entries {
        epochs.append(e, BATCH as u64);
    }
    let snap = aosi::Snapshot::committed(entries);

    let mut group = c.benchmark_group("visibility_500k_rows");
    group.throughput(Throughput::Elements(ROWS));
    group.bench_with_input(
        BenchmarkId::new("aosi_range_bitmap", entries),
        &epochs,
        |b, epochs| b.iter(|| black_box(epochs.visible_bitmap(&snap).count_ones())),
    );
    group.bench_function("mvcc_per_row_check", |b| {
        let ts = store.manager().latest();
        b.iter(|| black_box(store.scan_snapshot(ts).0.count_ones()))
    });
    group.finish();
}

criterion_group!(benches, bench_scan_modes, bench_visibility_only);
criterion_main!(benches);
