//! Distributed-protocol microbenchmarks: begin/commit roundtrips,
//! ring routing, and bid packing.

use std::hint::black_box;

use cluster::{ProtocolCluster, Ring, SimulatedNetwork};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubrick::bid::BidLayout;
use cubrick::{CubeSchema, Dimension, Metric};

/// Full distributed RW lifecycle (begin + broadcast + commit) vs.
/// cluster size, zero-latency wire — isolates protocol CPU cost.
fn bench_distributed_txn(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_txn_lifecycle");
    for nodes in [1u64, 4, 16] {
        let cluster = ProtocolCluster::new(nodes, SimulatedNetwork::instant());
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    let mut txn = cluster.begin_rw(1);
                    cluster.broadcast_begin(&mut txn, 64).unwrap();
                    cluster.commit(&txn).unwrap();
                    black_box(txn.epoch)
                })
            },
        );
    }
    group.finish();
}

/// RO begin never touches the network regardless of cluster size.
fn bench_distributed_ro(c: &mut Criterion) {
    let cluster = ProtocolCluster::new(16, SimulatedNetwork::instant());
    c.bench_function("distributed_begin_ro_16_nodes", |b| {
        b.iter(|| black_box(cluster.begin_ro(1).epoch()))
    });
}

/// Consistent-hash routing of bids to nodes.
fn bench_ring_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_node_for");
    for nodes in [8u64, 64, 200] {
        let ring = Ring::new(nodes, 64);
        let mut key = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &ring, |b, ring| {
            b.iter(|| {
                key = key.wrapping_add(1);
                black_box(ring.node_for(key))
            })
        });
    }
    group.finish();
}

/// Bid packing for a 5-dimension schema (per ingested record).
fn bench_bid_packing(c: &mut Criterion) {
    let schema = CubeSchema::new(
        "t",
        vec![
            Dimension::int("a", 8, 2),
            Dimension::int("b", 4, 1),
            Dimension::int("c", 64, 8),
            Dimension::int("d", 24, 24),
            Dimension::int("e", 256, 64),
        ],
        vec![Metric::int("m")],
    )
    .unwrap();
    let layout = BidLayout::new(&schema);
    let mut coords = [0u32; 5];
    c.bench_function("bid_for_coords_5_dims", |b| {
        b.iter(|| {
            coords[0] = (coords[0] + 1) % 8;
            coords[2] = (coords[2] + 3) % 64;
            coords[4] = (coords[4] + 7) % 256;
            black_box(layout.bid_for_coords(&coords))
        })
    });
}

criterion_group!(
    benches,
    bench_distributed_txn,
    bench_distributed_ro,
    bench_ring_routing,
    bench_bid_packing
);
criterion_main!(benches);
