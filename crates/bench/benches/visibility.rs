//! Visibility-bitmap generation cost (the SI work a scan pays before
//! touching data) as a function of epochs-vector shape.

use std::collections::BTreeSet;
use std::hint::black_box;

use aosi::{visibility, EpochsVector, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn vector_with(entries: u64, rows_per_entry: u64, deletes: u64) -> EpochsVector {
    let mut v = EpochsVector::new();
    let mut epoch = 1;
    for i in 0..entries {
        v.append(epoch, rows_per_entry);
        epoch += 1;
        if deletes > 0 && i % (entries / deletes).max(1) == (entries / deletes).max(1) - 1 {
            v.mark_delete(epoch);
            epoch += 1;
        }
    }
    v
}

/// Bitmap generation over a clean (insert-only) history.
fn bench_bitmap_by_entries(c: &mut Criterion) {
    let mut group = c.benchmark_group("visibility_bitmap_by_entries");
    for entries in [16u64, 256, 4096] {
        let rows_per_entry = 1_000_000 / entries;
        let v = vector_with(entries, rows_per_entry, 0);
        let snap = Snapshot::committed(entries / 2);
        group.throughput(Throughput::Elements(v.row_count()));
        group.bench_with_input(BenchmarkId::from_parameter(entries), &v, |b, v| {
            b.iter(|| black_box(v.visible_bitmap(&snap).count_ones()));
        });
    }
    group.finish();
}

/// Bitmap generation with visible deletes: exercises the cleanup
/// pass.
fn bench_bitmap_with_deletes(c: &mut Criterion) {
    let mut group = c.benchmark_group("visibility_bitmap_with_deletes");
    for deletes in [0u64, 4, 64] {
        let v = vector_with(1024, 1000, deletes);
        let snap = Snapshot::committed(10_000);
        group.bench_with_input(BenchmarkId::from_parameter(deletes), &v, |b, v| {
            b.iter(|| black_box(v.visible_bitmap(&snap).count_ones()));
        });
    }
    group.finish();
}

/// Ablation: the dominant-delete optimization vs. the paper's literal
/// one-cleanup-pass-per-delete.
fn bench_optimized_vs_naive(c: &mut Criterion) {
    let v = vector_with(1024, 1000, 32);
    let snap = Snapshot::committed(10_000);
    let mut group = c.benchmark_group("visibility_cleanup_ablation");
    group.bench_function("dominant_delete", |b| {
        b.iter(|| black_box(visibility::visible_bitmap(&v, &snap).count_ones()))
    });
    group.bench_function("pass_per_delete", |b| {
        b.iter(|| black_box(visibility::visible_bitmap_naive(&v, &snap).count_ones()))
    });
    group.finish();
}

/// Deps-set probing cost: snapshots with growing pending sets.
fn bench_deps_probing(c: &mut Criterion) {
    let v = vector_with(4096, 100, 0);
    let mut group = c.benchmark_group("visibility_deps_size");
    for deps_size in [0u64, 16, 256] {
        let deps: BTreeSet<u64> = (1..=deps_size).map(|i| i * 2).collect();
        let snap = Snapshot::new(100_000, deps);
        group.bench_with_input(BenchmarkId::from_parameter(deps_size), &snap, |b, snap| {
            b.iter(|| black_box(v.visible_bitmap(snap).count_ones()));
        });
    }
    group.finish();
}

/// Bitmap materialization vs. the range fast path when the consumer
/// only needs a count.
fn bench_bitmap_vs_ranges(c: &mut Criterion) {
    let mut group = c.benchmark_group("visibility_count_path");
    for entries in [16u64, 4096] {
        let rows_per_entry = 1_000_000 / entries;
        let v = vector_with(entries, rows_per_entry, 4);
        let snap = Snapshot::committed(entries);
        group.bench_with_input(BenchmarkId::new("bitmap", entries), &v, |b, v| {
            b.iter(|| black_box(v.visible_bitmap(&snap).count_ones()))
        });
        group.bench_with_input(BenchmarkId::new("ranges", entries), &v, |b, v| {
            b.iter(|| black_box(v.visible_rows(&snap)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bitmap_by_entries,
    bench_bitmap_with_deletes,
    bench_optimized_vs_naive,
    bench_deps_probing,
    bench_bitmap_vs_ranges
);
criterion_main!(benches);
