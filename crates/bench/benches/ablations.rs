//! Ablations of the design choices DESIGN.md calls out.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::sync::Arc;

use aosi::{Snapshot, TxnManager};
use columnar::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubrick::{Brick, CubeSchema, Dimension, Metric, ParsedRecord, ShardPool};
use mvcc_baseline::{LockManager, LockMode};
use parking_lot::Mutex;

fn schema() -> CubeSchema {
    CubeSchema::new(
        "t",
        vec![Dimension::int("k", 64, 4)],
        vec![Metric::int("m")],
    )
    .unwrap()
}

fn record(i: u64) -> ParsedRecord {
    ParsedRecord {
        bid: i % 16,
        coords: vec![(i % 64) as u32],
        metrics: vec![Value::I64(i as i64)],
    }
}

/// Ablation: bid-sharded single-writer queues (the paper's design)
/// vs. a mutex per brick, under 4 concurrent appenders.
///
/// Two shapes per model: `per_record` enqueues/locks once per record
/// (isolating raw per-operation overhead — the queue loses this on
/// purpose), and `batched` groups 100 records per brick operation,
/// which is what the engine's flush step actually does with a parsed
/// request.
fn bench_shard_vs_mutex(c: &mut Criterion) {
    const APPENDS_PER_THREAD: u64 = 2_000;
    const THREADS: u64 = 4;
    let mut group = c.benchmark_group("append_concurrency_model");
    group.sample_size(10);
    group.throughput(Throughput::Elements(APPENDS_PER_THREAD * THREADS));

    group.bench_function("sharded_single_writer_batched", |b| {
        b.iter(|| {
            let pool = ShardPool::new(4);
            let schema = schema();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let pool = &pool;
                    let schema = schema.clone();
                    scope.spawn(move || {
                        // Group 100 records per brick op, like the
                        // engine's per-bid flush batches.
                        let mut by_bid: std::collections::HashMap<u64, Vec<ParsedRecord>> =
                            std::collections::HashMap::new();
                        for i in 0..APPENDS_PER_THREAD {
                            let rec = record(t * APPENDS_PER_THREAD + i);
                            by_bid.entry(rec.bid).or_default().push(rec);
                            if i % 100 == 99 {
                                for (bid, recs) in by_bid.drain() {
                                    let schema = schema.clone();
                                    pool.submit(pool.shard_of(bid), move |bricks| {
                                        bricks
                                            .entry("t".into())
                                            .or_default()
                                            .entry(bid)
                                            .or_insert_with(|| Brick::new(&schema))
                                            .append(1, &recs);
                                    });
                                }
                            }
                        }
                    });
                }
            });
            pool.drain();
            black_box(pool.num_shards())
        })
    });

    group.bench_function("mutex_per_brick_batched", |b| {
        b.iter(|| {
            let schema = schema();
            let bricks: Vec<Arc<Mutex<Brick>>> = (0..16)
                .map(|_| Arc::new(Mutex::new(Brick::new(&schema))))
                .collect();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let bricks = &bricks;
                    scope.spawn(move || {
                        let mut by_bid: std::collections::HashMap<u64, Vec<ParsedRecord>> =
                            std::collections::HashMap::new();
                        for i in 0..APPENDS_PER_THREAD {
                            let rec = record(t * APPENDS_PER_THREAD + i);
                            by_bid.entry(rec.bid).or_default().push(rec);
                            if i % 100 == 99 {
                                for (bid, recs) in by_bid.drain() {
                                    bricks[bid as usize].lock().append(1, &recs);
                                }
                            }
                        }
                    });
                }
            });
            black_box(bricks.len())
        })
    });

    group.bench_function("sharded_single_writer_per_record", |b| {
        b.iter(|| {
            let pool = ShardPool::new(4);
            let schema = schema();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let pool = &pool;
                    let schema = schema.clone();
                    scope.spawn(move || {
                        for i in 0..APPENDS_PER_THREAD {
                            let rec = record(t * APPENDS_PER_THREAD + i);
                            let bid = rec.bid;
                            let schema = schema.clone();
                            pool.submit(pool.shard_of(bid), move |bricks| {
                                bricks
                                    .entry("t".into())
                                    .or_default()
                                    .entry(bid)
                                    .or_insert_with(|| Brick::new(&schema))
                                    .append(1, &[rec]);
                            });
                        }
                    });
                }
            });
            pool.drain();
            black_box(pool.num_shards())
        })
    });

    group.bench_function("mutex_per_brick_per_record", |b| {
        b.iter(|| {
            let schema = schema();
            let bricks: Vec<Arc<Mutex<Brick>>> = (0..16)
                .map(|_| Arc::new(Mutex::new(Brick::new(&schema))))
                .collect();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let bricks = &bricks;
                    scope.spawn(move || {
                        for i in 0..APPENDS_PER_THREAD {
                            let rec = record(t * APPENDS_PER_THREAD + i);
                            bricks[rec.bid as usize].lock().append(1, &[rec]);
                        }
                    });
                }
            });
            black_box(bricks.len())
        })
    });
    group.finish();
}

/// Ablation: AOSI's lock-free reads vs. a 2PL read path that takes a
/// shared lock per partition per scan.
fn bench_lock_free_vs_2pl_scan(c: &mut Criterion) {
    const PARTITIONS: u64 = 64;
    let mut brick = Brick::new(&schema());
    let records: Vec<ParsedRecord> = (0..10_000).map(record).collect();
    brick.append(1, &records);
    let snapshot = Snapshot::committed(1);

    let mut group = c.benchmark_group("scan_locking_ablation");
    group.bench_function("aosi_lock_free", |b| {
        b.iter(|| {
            let mut visible = 0usize;
            for _ in 0..PARTITIONS {
                visible += brick.visibility(&snapshot).count_ones();
            }
            black_box(visible)
        })
    });
    group.bench_function("2pl_shared_locks", |b| {
        let lm = LockManager::new();
        let mut txn_id = 0u64;
        b.iter(|| {
            txn_id += 1;
            let mut visible = 0usize;
            for p in 0..PARTITIONS {
                assert!(lm.acquire(txn_id, p, LockMode::Shared));
                visible += brick.visibility(&snapshot).count_ones();
            }
            lm.release_all(txn_id);
            black_box(visible)
        })
    });
    group.finish();
}

/// Ablation: the delayed-LCE rule (RO begin = one atomic load) vs.
/// an eager-LCE design where every RO transaction must snapshot the
/// pending set into a deps structure.
fn bench_lce_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ro_begin_lce_policy");
    for pending in [4usize, 256] {
        let mgr = TxnManager::single_node();
        let held: Vec<_> = (0..pending).map(|_| mgr.begin_rw()).collect();
        group.bench_with_input(BenchmarkId::new("delayed_lce", pending), &mgr, |b, mgr| {
            b.iter(|| black_box(mgr.begin_ro().epoch()))
        });
        group.bench_with_input(
            BenchmarkId::new("eager_lce_with_deps", pending),
            &mgr,
            |b, mgr| {
                b.iter(|| {
                    // What RO begin would cost if LCE advanced eagerly:
                    // capture the pending set as deps, like RW begin.
                    let epoch = mgr.clock().current_ec();
                    let deps: BTreeSet<u64> = mgr
                        .pending_txs()
                        .into_iter()
                        .filter(|&d| d < epoch)
                        .collect();
                    black_box(Snapshot::new(epoch, deps).epoch())
                })
            },
        );
        drop(held);
    }
    group.finish();
}

/// Ablation: bess-packed vs. plain dimension storage — scan cost and
/// footprint for a low-cardinality 5-dimension schema.
fn bench_bess_vs_plain(c: &mut Criterion) {
    use cubrick::DimStorage;
    let schema = CubeSchema::new(
        "t",
        vec![
            Dimension::int("a", 8, 2),
            Dimension::int("b", 4, 1),
            Dimension::int("c", 64, 8),
            Dimension::int("d", 24, 24),
            Dimension::int("e", 256, 64),
        ],
        vec![Metric::int("m")],
    )
    .unwrap();
    let records: Vec<ParsedRecord> = (0..100_000u64)
        .map(|i| ParsedRecord {
            bid: 0,
            coords: vec![
                (i % 8) as u32,
                (i % 4) as u32,
                (i % 64) as u32,
                (i % 24) as u32,
                (i % 256) as u32,
            ],
            metrics: vec![Value::I64(i as i64)],
        })
        .collect();
    let mut group = c.benchmark_group("dim_storage_ablation");
    for (name, storage) in [("plain", DimStorage::Plain), ("bess", DimStorage::Bess)] {
        let mut brick = Brick::with_storage(&schema, storage);
        brick.append(1, &records);
        println!(
            "dim_storage_ablation/{name}: {} data bytes for 100k rows",
            brick.memory().data_bytes
        );
        group.bench_function(format!("scan_{name}"), |b| {
            b.iter(|| {
                // Touch every dimension of every row (a filter +
                // group-by over all five dimensions).
                let mut acc = 0u64;
                for row in 0..brick.row_count() as usize {
                    for dim in 0..5 {
                        acc = acc.wrapping_add(brick.dim_value(dim, row) as u64);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Ablation: rollback cost with and without the Section III-C5
/// transaction-to-partition index, on an engine holding many bricks
/// of which the aborted transaction touched only one.
fn bench_rollback_index(c: &mut Criterion) {
    use columnar::Row;
    use cubrick::Engine;

    fn build(indexed: bool) -> Engine {
        let engine = if indexed {
            Engine::new(2).with_rollback_index()
        } else {
            Engine::new(2)
        };
        engine
            .create_cube(
                CubeSchema::new(
                    "t",
                    vec![Dimension::int("k", 4096, 8)],
                    vec![Metric::int("m")],
                )
                .unwrap(),
            )
            .unwrap();
        // Materialize ~512 bricks of committed history.
        let rows: Vec<Row> = (0..4096)
            .map(|i| vec![Value::I64(i), Value::I64(1)])
            .collect();
        engine.load("t", &rows, 0).unwrap();
        engine
    }

    let mut group = c.benchmark_group("rollback_partition_index");
    group.sample_size(20);
    for (name, indexed) in [("full_scan", false), ("indexed", true)] {
        let engine = build(indexed);
        group.bench_function(name, |b| {
            b.iter(|| {
                let txn = engine.begin();
                engine
                    .append("t", &[vec![Value::I64(7), Value::I64(1)]], &txn)
                    .unwrap();
                black_box(engine.rollback(&txn).unwrap())
            })
        });
    }
    group.finish();
}

/// Skew sensitivity: uniform vs. Zipf-skewed keys through the full
/// single-node load path. Skew concentrates appends on few bricks —
/// the single-writer shards serialize them — while uniform spreads
/// across shards.
fn bench_load_skew(c: &mut Criterion) {
    use cubrick::Engine;
    use workload::{Dataset, SingleColumnDataset, SkewedDataset};

    let mut group = c.benchmark_group("load_skew_sensitivity");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_000));

    let uniform = SingleColumnDataset::default();
    let skewed = SkewedDataset::new(1.2);
    let run = |b: &mut criterion::Bencher,
               schema: cubrick::CubeSchema,
               batches: &Vec<Vec<columnar::Row>>| {
        b.iter_with_setup(
            || {
                let engine = Engine::new(4);
                engine.create_cube(schema.clone()).unwrap();
                engine
            },
            |engine| {
                let name = schema.name.clone();
                for batch in batches {
                    engine.load(&name, batch, 0).unwrap();
                }
                black_box(engine.memory().rows)
            },
        )
    };
    let uniform_batches: Vec<_> = (0..4).map(|b| uniform.batch(3, b, 5000)).collect();
    group.bench_function("uniform", |b| run(b, uniform.schema(), &uniform_batches));
    let skewed_batches: Vec<_> = (0..4).map(|b| skewed.batch(3, b, 5000)).collect();
    group.bench_function("zipf_1.2", |b| run(b, skewed.schema(), &skewed_batches));
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_vs_mutex,
    bench_lock_free_vs_2pl_scan,
    bench_lce_policy,
    bench_bess_vs_plain,
    bench_rollback_index,
    bench_load_skew
);
criterion_main!(benches);
