//! Transaction manager throughput: the shared-atomic-counter design
//! the paper argues is sufficient for OLAP transaction rates
//! (Section III-B), plus Lamport clock operations.

use std::hint::black_box;
use std::sync::Arc;

use aosi::{EpochClock, TxnManager};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Single-threaded begin/commit cycle.
fn bench_begin_commit(c: &mut Criterion) {
    let mgr = TxnManager::single_node();
    c.bench_function("txn_begin_commit", |b| {
        b.iter(|| {
            let txn = mgr.begin_rw();
            mgr.commit(&txn).unwrap();
            black_box(txn.epoch())
        })
    });
}

/// RO begin: a single atomic load (the LCE rule's payoff).
fn bench_begin_ro(c: &mut Criterion) {
    let mgr = TxnManager::single_node();
    let t = mgr.begin_rw();
    mgr.commit(&t).unwrap();
    c.bench_function("txn_begin_ro", |b| {
        b.iter(|| black_box(mgr.begin_ro().epoch()))
    });
}

/// Begin cost as the pending set grows (deps snapshotting).
fn bench_begin_with_pending(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_begin_with_pending");
    for pending in [0usize, 16, 256] {
        let mgr = TxnManager::single_node();
        let held: Vec<_> = (0..pending).map(|_| mgr.begin_rw()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(pending), &mgr, |b, mgr| {
            b.iter(|| {
                let txn = mgr.begin_rw();
                mgr.commit(&txn).unwrap();
                black_box(txn.epoch())
            })
        });
        drop(held);
    }
    group.finish();
}

/// Multi-threaded begin/commit contention on the shared counters.
fn bench_concurrent_begin_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_concurrent_begin_commit");
    for threads in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(1000 * threads as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mgr = Arc::new(TxnManager::single_node());
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let mgr = Arc::clone(&mgr);
                            std::thread::spawn(move || {
                                for _ in 0..1000 {
                                    let txn = mgr.begin_rw();
                                    mgr.commit(&txn).unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    black_box(mgr.lce())
                })
            },
        );
    }
    group.finish();
}

/// Lamport clock primitives.
fn bench_clock_ops(c: &mut Criterion) {
    let clock = EpochClock::new(2, 16);
    let mut group = c.benchmark_group("epoch_clock");
    group.bench_function("next_epoch", |b| b.iter(|| black_box(clock.next_epoch())));
    group.bench_function("observe_behind", |b| {
        b.iter(|| black_box(clock.observe(black_box(5))))
    });
    let mut remote = 0u64;
    group.bench_function("observe_ahead", |b| {
        b.iter(|| {
            remote += 17;
            black_box(clock.observe(black_box(remote)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_begin_commit,
    bench_begin_ro,
    bench_begin_with_pending,
    bench_concurrent_begin_commit,
    bench_clock_ops
);
criterion_main!(benches);
