//! Purge (garbage collection) cost vs. history length and delete
//! presence.

use std::hint::black_box;

use aosi::{purge, EpochsVector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn history(entries: u64, rows_per_entry: u64, with_delete: bool) -> EpochsVector {
    let mut v = EpochsVector::new();
    for epoch in 1..=entries {
        v.append(epoch, rows_per_entry);
    }
    if with_delete {
        v.mark_delete(entries / 2);
    }
    v
}

/// Compaction-only purge (no deletes): merging old entries.
fn bench_purge_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("purge_compaction");
    for entries in [64u64, 1024, 16384] {
        let v = history(entries, 100, false);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &v, |b, v| {
            b.iter(|| black_box(purge::purge(v, entries).vector.entries().len()));
        });
    }
    group.finish();
}

/// Purge applying a partition delete: builds the keep bitmap and
/// recomputes entry boundaries.
fn bench_purge_with_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("purge_apply_delete");
    for entries in [64u64, 1024, 16384] {
        let v = history(entries, 100, true);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &v, |b, v| {
            b.iter(|| black_box(purge::purge(v, entries).purged_rows));
        });
    }
    group.finish();
}

/// The `needs_purge` pre-check that lets the background procedure
/// skip untouched partitions.
fn bench_needs_purge(c: &mut Criterion) {
    let clean = history(1, 100_000, false);
    let dirty = history(4096, 25, false);
    let mut group = c.benchmark_group("needs_purge");
    group.bench_function("skippable", |b| {
        b.iter(|| black_box(clean.needs_purge(100)))
    });
    group.bench_function("compactable", |b| {
        b.iter(|| black_box(dirty.needs_purge(100_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_purge_compaction,
    bench_purge_with_delete,
    bench_needs_purge
);
criterion_main!(benches);
