//! Baseline-system microbenchmarks: the Hive-ACID delta-merge cost,
//! MVCC vacuum vs. AOSI purge, ingest parsing, and the WAL codec.

use std::hint::black_box;

use columnar::{ColumnType, Field, Schema, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubrick::{parse_rows, CubeSchema, Dimension, Metric};
use mvcc_baseline::{HiveAcidTable, MvccStore, MvccTxnManager};

const ROWS: u64 = 100_000;

/// Hive-style query-time merging: the same 100k rows, scanned with a
/// growing number of outstanding delta files, then compacted. AOSI's
/// single-version layout has no analogue of this curve.
fn bench_hive_delta_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("hive_delta_merge_scan");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS));
    for deltas in [1u64, 64, 1024] {
        let mut table = HiveAcidTable::new(Schema::new(vec![
            Field::new("k", ColumnType::I64),
            Field::new("v", ColumnType::I64),
        ]));
        let per_delta = ROWS / deltas;
        for d in 0..deltas {
            let rows: Vec<_> = (0..per_delta)
                .map(|i| vec![Value::I64((d * per_delta + i) as i64), Value::I64(1)])
                .collect();
            // Each delta also deletes one row of the previous delta —
            // updates/deletes are why the delta files exist at all,
            // and the growing delete set is what query-time merging
            // pays for.
            let deletes = if d > 0 { vec![(d as u32, 0)] } else { vec![] };
            table.write_txn(rows, deletes);
        }
        group.bench_with_input(BenchmarkId::new("uncompacted", deltas), &deltas, |b, _| {
            b.iter(|| black_box(table.aggregate_sum(1).0))
        });
        table.compact();
        group.bench_with_input(BenchmarkId::new("compacted", deltas), &deltas, |b, _| {
            b.iter(|| black_box(table.aggregate_sum(1).0))
        });
    }
    group.finish();
}

/// Garbage collection head-to-head: AOSI purge (entry compaction +
/// bitmap rebuild) vs. MVCC vacuum (per-row liveness checks + table
/// rewrite) over the same logical workload: N rows inserted, half
/// superseded.
fn bench_gc_purge_vs_vacuum(c: &mut Criterion) {
    let mut group = c.benchmark_group("garbage_collection");
    group.sample_size(10);

    group.bench_function("aosi_purge_100k_rows", |b| {
        b.iter_with_setup(
            || {
                let mut v = aosi::EpochsVector::new();
                for epoch in 1..=100u64 {
                    v.append(epoch, 1000);
                }
                v.mark_delete(50);
                v
            },
            |v| black_box(aosi::purge::purge(&v, 100).purged_rows),
        )
    });

    group.bench_function("mvcc_vacuum_100k_rows", |b| {
        b.iter_with_setup(
            || {
                let schema = Schema::new(vec![Field::new("v", ColumnType::I64)]);
                let mut store = MvccStore::new(schema, MvccTxnManager::new());
                let mut txn = store.manager().begin();
                let rows: Vec<usize> = (0..100_000)
                    .map(|i| store.insert(&mut txn, &vec![Value::I64(i)]))
                    .collect();
                store.commit(&mut txn).unwrap();
                let mut deleter = store.manager().begin();
                for &row in rows.iter().take(50_000) {
                    store.delete(&mut deleter, row).unwrap();
                }
                store.commit(&mut deleter).unwrap();
                store
            },
            |mut store| {
                let horizon = store.manager().latest();
                black_box(store.vacuum(horizon))
            },
        )
    });
    group.finish();
}

/// Ingest parse throughput (the CPU-only first pipeline stage).
fn bench_parse(c: &mut Criterion) {
    let schema = CubeSchema::new(
        "t",
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 64, 8),
        ],
        vec![Metric::int("m0"), Metric::float("f0")],
    )
    .unwrap();
    let cube = cubrick::Cube::new(schema);
    let regions = ["us", "br", "mx", "in", "de", "jp", "gb", "fr"];
    let rows: Vec<columnar::Row> = (0..5000)
        .map(|i| {
            vec![
                Value::Str(regions[i % 8].to_owned()),
                Value::I64((i % 64) as i64),
                Value::I64(i as i64),
                Value::F64(0.5),
            ]
        })
        .collect();
    let mut group = c.benchmark_group("ingest_parse");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("parse_5000_row_batch", |b| {
        b.iter(|| {
            let batch = parse_rows(cube.schema(), cube.layout(), cube.dictionaries(), &rows);
            black_box(batch.accepted)
        })
    });
    group.finish();
}

/// WAL codec throughput: encoding/decoding one flush round of 50k
/// rows.
fn bench_wal_codec(c: &mut Criterion) {
    let records: Vec<cubrick::ParsedRecord> = (0..50_000u64)
        .map(|i| cubrick::ParsedRecord {
            bid: i % 64,
            coords: vec![(i % 8) as u32, (i % 64) as u32],
            metrics: vec![Value::I64(i as i64), Value::F64(0.25)],
        })
        .collect();
    let round = wal::FlushRound {
        lse: 0,
        lse_prime: 10,
        dictionaries: vec![],
        deltas: vec![cubrick::BrickDelta {
            cube: "t".into(),
            bid: 3,
            runs: vec![cubrick::DeltaRun::Insert { epoch: 5, records }],
        }],
    };
    let encoded = wal::codec::encode(&round);
    let mut group = c.benchmark_group("wal_codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_50k_rows", |b| {
        b.iter(|| black_box(wal::codec::encode(&round).len()))
    });
    group.bench_function("decode_50k_rows", |b| {
        b.iter(|| black_box(wal::codec::decode(&encoded).unwrap().lse_prime))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hive_delta_merge,
    bench_gc_purge_vs_vacuum,
    bench_parse,
    bench_wal_codec
);
criterion_main!(benches);
