//! Microbenchmarks of the epochs vector: the per-partition metadata
//! structure whose cheapness is AOSI's core claim.

use aosi::EpochsVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Appends by a single transaction: every call extends the back
/// entry in place (Figure 1(b)) — the common bulk-load path.
fn bench_append_same_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epochs_append_same_epoch");
    for appends in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(appends));
        group.bench_with_input(
            BenchmarkId::from_parameter(appends),
            &appends,
            |b, &appends| {
                b.iter(|| {
                    let mut v = EpochsVector::new();
                    for _ in 0..appends {
                        v.append(black_box(1), 10);
                    }
                    black_box(v.entries().len())
                });
            },
        );
    }
    group.finish();
}

/// Appends alternating between two transactions: every call pushes a
/// new entry (Figure 1(c)/(d)) — the worst-case metadata growth.
fn bench_append_alternating(c: &mut Criterion) {
    let mut group = c.benchmark_group("epochs_append_alternating");
    for appends in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(appends));
        group.bench_with_input(
            BenchmarkId::from_parameter(appends),
            &appends,
            |b, &appends| {
                b.iter(|| {
                    let mut v = EpochsVector::new();
                    for i in 0..appends {
                        v.append(black_box(1 + (i % 2)), 10);
                    }
                    black_box(v.entries().len())
                });
            },
        );
    }
    group.finish();
}

/// Memory accounting cost (called per timeline sample in the
/// figures).
fn bench_memory_accounting(c: &mut Criterion) {
    let mut v = EpochsVector::new();
    for i in 0..10_000 {
        v.append(1 + (i % 7), 5);
    }
    c.bench_function("epochs_heap_bytes", |b| {
        b.iter(|| black_box(v.heap_bytes() + v.used_bytes()))
    });
}

criterion_group!(
    benches,
    bench_append_same_epoch,
    bench_append_alternating,
    bench_memory_accounting
);
criterion_main!(benches);
