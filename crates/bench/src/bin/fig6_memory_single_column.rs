//! Figure 6: memory overhead of AOSI vs. the MVCC baseline while
//! loading a **single-column** dataset.
//!
//! Paper setup: 4 clients, 5000-row batches, one implicit transaction
//! per request, ~100M rows; AOSI's epochs-vector overhead peaks
//! around 5% of the dataset, drops to ~1% after a mid-job purge and
//! to ~0.02% after the job finishes, while the 16-bytes-per-record
//! baseline sits at ~130% of this (4-byte-wide) dataset.
//!
//! We scale the row count down (override with `AOSI_ROWS`) and keep
//! the shape: ingest with periodic timeline samples, run one purge
//! cycle mid-job (LSE advance) and one after the job, and print the
//! same four series.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cubrick::Engine;
use workload::{run_load_clients, Dataset, SingleColumnDataset, Timeline};

fn main() {
    let rows = bench::env_u64("AOSI_ROWS", 2_000_000);
    let clients = bench::env_usize("AOSI_CLIENTS", 4);
    let batch = bench::env_usize("AOSI_BATCH", 5000);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    bench::banner(
        "Figure 6",
        "AOSI vs. MVCC-baseline memory overhead, single-column dataset",
        &[
            ("rows", rows.to_string()),
            ("clients", clients.to_string()),
            ("batch", batch.to_string()),
            ("shards", shards.to_string()),
        ],
    );

    let dataset = SingleColumnDataset::default();
    let engine = Engine::new(shards);
    engine.create_cube(dataset.schema()).expect("cube");

    let timeline = Mutex::new(Timeline::new());
    let sample_every = (rows / 40).max(1);
    let next_sample = AtomicU64::new(sample_every);
    let mid_purge_at = rows / 2;
    let mid_purged = AtomicU64::new(0);

    let batches_per_client = rows / (clients as u64 * batch as u64);
    let report = run_load_clients(
        &engine,
        &dataset,
        42,
        clients,
        batches_per_client,
        batch,
        &|total| {
            // Mid-job purge: the paper's "purge procedure is triggered by
            // LSE being advanced, recycling old epochs entries".
            if total >= mid_purge_at
                && mid_purged
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                let stats = engine.advance_lse_and_purge();
                println!(
                    "-- mid-job purge at {total} rows: reclaimed {} epochs entries",
                    stats.entries_reclaimed
                );
            }
            let due = next_sample.load(Ordering::Relaxed);
            if total >= due
                && next_sample
                    .compare_exchange(due, due + sample_every, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                timeline.lock().unwrap().sample(&engine.memory());
            }
        },
    );

    // Job finished: LSE advances again and the remaining entries are
    // recycled.
    let stats = engine.advance_lse_and_purge();
    println!(
        "-- final purge: reclaimed {} epochs entries",
        stats.entries_reclaimed
    );
    let mut timeline = timeline.into_inner().unwrap();
    let last = timeline.sample(&engine.memory());

    println!("\n{}", timeline.render_table());
    let peak = timeline
        .points()
        .iter()
        .map(|p| p.aosi_pct())
        .fold(0.0f64, f64::max);
    println!("requests issued:        {}", report.requests);
    println!("rows loaded:            {}", report.rows_loaded);
    println!("peak AOSI overhead:     {peak:.3}% of dataset");
    println!("final AOSI overhead:    {:.4}% of dataset", last.aosi_pct());
    println!(
        "final baseline overhead: {:.1}% of dataset ({}x AOSI)",
        last.baseline_pct(),
        if last.aosi_bytes == 0 {
            f64::INFINITY
        } else {
            last.baseline_bytes as f64 / last.aosi_bytes as f64
        }
    );
    println!(
        "\npaper shape check: peak ~5%, post-purge orders of magnitude below \
         the {}% baseline — see EXPERIMENTS.md",
        last.baseline_pct().round()
    );
}
