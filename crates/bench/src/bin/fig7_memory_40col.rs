//! Figure 7: memory overhead of AOSI vs. the MVCC baseline while
//! loading a **40-column** dataset.
//!
//! Paper setup: 176M rows / ~22 GB; at job end the baseline overhead
//! is ~2.8 GB (13% of the dataset) while AOSI holds 74 MB, dropping
//! to ~60 MB (0.2%) once LSE advances and entries are recycled.
//! Scaled via `AOSI_ROWS` (default 500k); the shape — baseline at a
//! low-double-digit percent, AOSI orders of magnitude below — is what
//! must reproduce.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cubrick::Engine;
use workload::{run_load_clients, Dataset, Timeline, WideDataset};

fn main() {
    let rows = bench::env_u64("AOSI_ROWS", 500_000);
    let clients = bench::env_usize("AOSI_CLIENTS", 4);
    let batch = bench::env_usize("AOSI_BATCH", 5000);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    bench::banner(
        "Figure 7",
        "AOSI vs. MVCC-baseline memory overhead, 40-column dataset",
        &[
            ("rows", rows.to_string()),
            ("clients", clients.to_string()),
            ("batch", batch.to_string()),
            ("shards", shards.to_string()),
        ],
    );

    let dataset = WideDataset::default();
    let engine = Engine::new(shards);
    engine.create_cube(dataset.schema()).expect("cube");

    let timeline = Mutex::new(Timeline::new());
    let sample_every = (rows / 25).max(1);
    let next_sample = AtomicU64::new(sample_every);

    let batches_per_client = rows / (clients as u64 * batch as u64);
    let report = run_load_clients(
        &engine,
        &dataset,
        43,
        clients,
        batches_per_client,
        batch,
        &|total| {
            let due = next_sample.load(Ordering::Relaxed);
            if total >= due
                && next_sample
                    .compare_exchange(due, due + sample_every, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                timeline.lock().unwrap().sample(&engine.memory());
            }
        },
    );

    let loaded = timeline.lock().unwrap().sample(&engine.memory());
    // "After LSE advances and some epochs pointers are recycled,
    // AOSI's overhead drops."
    let stats = engine.advance_lse_and_purge();
    println!(
        "-- post-load purge: reclaimed {} epochs entries",
        stats.entries_reclaimed
    );
    let mut timeline = timeline.into_inner().unwrap();
    let recycled = timeline.sample(&engine.memory());

    println!("\n{}", timeline.render_table());
    println!("requests issued:            {}", report.requests);
    println!("rows loaded:                {}", report.rows_loaded);
    println!(
        "at load end:  baseline {:.1}% of dataset, AOSI {:.3}%",
        loaded.baseline_pct(),
        loaded.aosi_pct()
    );
    println!(
        "after recycle: AOSI {:.4}% of dataset ({} vs baseline {})",
        recycled.aosi_pct(),
        workload::human_bytes(recycled.aosi_bytes),
        workload::human_bytes(recycled.baseline_bytes),
    );
    println!(
        "\npaper shape check: baseline ~13% at load end; AOSI a few hundredths \
         of a percent after recycling — see EXPERIMENTS.md"
    );
}
