//! Figure 8: query latency under Snapshot Isolation vs.
//! read-uncommitted, full scans over the whole dataset.
//!
//! Paper setup: "a single thread of execution running the same query
//! successively, alternating between SI and RU in order to evaluate
//! the overhead … observed when controlling which records each
//! transaction is supposed to see using the epochs vector, pendingTxs
//! set and bitmap generation." The claim to reproduce: the SI/RU gap
//! is minor.
//!
//! Ingestion keeps running in the background (as in the paper's
//! production cluster) so the epochs vectors keep churning.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use cubrick::{Engine, IsolationMode};
use workload::{Dataset, LatencyRecorder, QueryMix, WideDataset};

fn main() {
    let rows = bench::env_u64("AOSI_ROWS", 1_000_000);
    let queries = bench::env_usize("AOSI_QUERIES", 200);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    let batch = bench::env_usize("AOSI_BATCH", 5000);
    bench::banner(
        "Figure 8",
        "full-scan query latency: Snapshot Isolation vs. read-uncommitted",
        &[
            ("rows", rows.to_string()),
            ("queries per mode", queries.to_string()),
            ("shards", shards.to_string()),
        ],
    );

    let dataset = WideDataset::default();
    let engine = Engine::new(shards);
    engine.create_cube(dataset.schema()).expect("cube");

    // Preload.
    let mut batch_id = 0u64;
    let mut loaded = 0u64;
    while loaded < rows {
        let rows_batch = dataset.batch(77, batch_id, batch);
        loaded += engine.load("wide", &rows_batch, 0).expect("load").accepted as u64;
        batch_id += 1;
    }
    println!("preloaded {loaded} rows");

    // Background ingestion churns the epochs vectors while we query.
    let stop = AtomicBool::new(false);
    let query = QueryMix::wide_full_scan();
    let (si, ru) = std::thread::scope(|scope| {
        let ingest = scope.spawn(|| {
            let mut id = 1_000_000u64;
            while !stop.load(Ordering::Relaxed) {
                let rows_batch = dataset.batch(78, id, 1000);
                engine.load("wide", &rows_batch, 0).expect("load");
                id += 1;
            }
        });
        let mut si = LatencyRecorder::new();
        let mut ru = LatencyRecorder::new();
        for _ in 0..queries {
            // Alternate SI and RU, exactly as the paper does.
            let started = Instant::now();
            let si_result = engine
                .query("wide", &query, IsolationMode::Snapshot)
                .expect("query");
            si.record(started.elapsed());
            let started = Instant::now();
            let ru_result = engine
                .query("wide", &query, IsolationMode::ReadUncommitted)
                .expect("query");
            ru.record(started.elapsed());
            assert!(ru_result.stats.rows_visible >= si_result.stats.rows_visible);
        }
        stop.store(true, Ordering::Relaxed);
        ingest.join().unwrap();
        (si, ru)
    });

    let si_p = si.percentiles();
    let ru_p = ru.percentiles();
    println!("\nmode  p50(ms)   p90(ms)   p99(ms)   mean(ms)  n");
    for (name, p) in [("SI", si_p), ("RU", ru_p)] {
        println!(
            "{name:<6}{:<10.3}{:<10.3}{:<10.3}{:<10.3}{}",
            p.p50.as_secs_f64() * 1e3,
            p.p90.as_secs_f64() * 1e3,
            p.p99.as_secs_f64() * 1e3,
            p.mean.as_secs_f64() * 1e3,
            p.count
        );
    }
    let overhead = (si_p.mean.as_secs_f64() / ru_p.mean.as_secs_f64() - 1.0) * 100.0;
    println!("\nSI mean overhead vs RU: {overhead:+.1}%");
    println!(
        "paper shape check: the SI/RU gap should be minor (single-digit \
         percent) — see EXPERIMENTS.md"
    );

    if bench::env_u64("AOSI_METRICS", 1) != 0 {
        println!("\n--- metrics report (AOSI_METRICS=0 to silence) ---");
        println!("{}", engine.metrics_report());
    }
}
