//! Scan-path benchmark: serial vs. parallel brick scans, cold vs.
//! warm visibility cache, on identical data and queries — the
//! fig5-style workload shape (many small appended batches, so epochs
//! vectors grow long and visibility materialization dominates).
//!
//! Emits `BENCH_scan.json` (override with `AOSI_BENCH_OUT`) with one
//! cell per {serial, parallel} x {cold, warm} combination plus the
//! derived speedups. `AOSI_BENCH_ENFORCE=1` turns the sanity bound
//! into an exit code: the parallel cold path must not be more than
//! 2x slower than the serial cold path (it should be faster; the 2x
//! headroom absorbs noisy shared CI runners).
//!
//! Knobs: `AOSI_BATCHES` (epochs-vector length driver), `AOSI_BATCH`
//! (rows per batch), `AOSI_QUERIES` (timed repetitions per cell),
//! `AOSI_SHARDS`.

use std::time::Instant;

use aosi::Snapshot;
use columnar::{Row, Value};
use cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, Engine, Metric, Query, ScanConfig,
};

const CUBE: &str = "scanbench";

fn schema() -> CubeSchema {
    CubeSchema::new(
        CUBE,
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 16, 4),
        ],
        vec![Metric::int("likes"), Metric::float("score")],
    )
    .expect("static schema")
}

/// One batch: rows spread over every (region, day) brick so all
/// bricks' epochs vectors grow with every load.
fn batch(id: usize, rows_per_batch: usize) -> Vec<Row> {
    (0..rows_per_batch)
        .map(|k| {
            let i = id * rows_per_batch + k;
            vec![
                Value::from(format!("r{}", i % 8).as_str()),
                Value::from((i % 16) as i64),
                Value::from((i % 100) as i64),
                Value::from(1.5),
            ]
        })
        .collect()
}

/// The timed battery: a filtered group-by (bitmap visibility path)
/// and an unfiltered aggregate (visible-ranges path), so both cached
/// artifact kinds are measured.
fn queries() -> Vec<Query> {
    vec![
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Count, ""),
        ])
        .filter(DimFilter::new(
            "region",
            vec![
                Value::from("r0"),
                Value::from("r1"),
                Value::from("r2"),
                Value::from("r3"),
            ],
        ))
        .grouped_by("day"),
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Avg, "score"),
        ]),
    ]
}

struct Cell {
    mode: &'static str,
    cache: &'static str,
    total_ns: u128,
    mean_ns: u128,
    p50_ns: u128,
    queries: usize,
    cache_hits: u64,
    cache_misses: u64,
    parallel_tasks: u64,
    visibility_build_ns: u64,
    scan_ns: u64,
}

/// Builds an engine under `config`, loads the shared workload, and
/// times the battery at a fixed set of pinned snapshots: the newest
/// committed epoch plus two historical ones. Dashboards re-rendering
/// at a pinned snapshot and time-travel audits are exactly the
/// workload the snapshot-keyed cache targets — at a historical epoch
/// most rows are invisible, so the visibility build (walking the
/// whole epochs vector, materializing the bitmap) dominates the
/// cheap residual scan. Warm cells (nonzero cache capacity) serve
/// the timed pass from the visibility cache populated by the priming
/// pass; cold cells run with the cache disabled.
fn run_cell(
    mode: &'static str,
    cache: &'static str,
    config: ScanConfig,
    batches: usize,
    rows_per_batch: usize,
    reps: usize,
    shards: usize,
) -> Cell {
    let engine = Engine::new(shards).with_scan_config(config);
    engine.create_cube(schema()).expect("cube");
    for id in 0..batches {
        engine
            .load(CUBE, &batch(id, rows_per_batch), 0)
            .expect("load");
    }
    // Ingestion keeps running in the paper's production setting, so a
    // reader snapshot carries a substantial pending-transaction
    // exclusion set; every epochs-vector entry then pays a deps
    // lookup during visibility materialization. Open (and hold) that
    // many writers before taking the query snapshots.
    let pending = bench::env_usize("AOSI_PENDING", 256);
    let _open_txns: Vec<_> = (0..pending)
        .map(|k| {
            let txn = engine.begin();
            engine
                .append(CUBE, &batch(batches + k, 1), &txn)
                .expect("pending append");
            txn
        })
        .collect();
    let lce = engine.manager().lce();
    // The fat-deps reader: a committed-snapshot read sits at the LCE,
    // *below* every pending epoch, so its deps set is empty by the
    // LCE rule. An open read-write transaction is the reader that
    // actually pays for pending writers — its snapshot epoch is its
    // own (above them all) and every pending epoch lands in deps,
    // costing one set probe per epochs-vector entry during
    // visibility materialization. That probe work, times the whole
    // epoch history, times every query, is what the cache memoizes.
    let reader_txn = engine.begin();
    let live = reader_txn.snapshot().clone();
    assert!(
        live.deps().len() >= pending,
        "expected a fat deps set, got {}",
        live.deps().len()
    );
    // Historical snapshots: deps above their epoch are dropped by
    // construction (a snapshot cannot depend on the future), so these
    // two time-travel reads are deps-free — there the cache saves the
    // bitmap/range materialization itself.
    let snapshots = [
        live.clone(),
        Snapshot::new(lce / 2, live.deps().clone()),
        Snapshot::new(lce / 16 + 1, live.deps().clone()),
    ];
    let battery = queries();
    // One untimed priming pass for EVERY cell: it touches the column
    // data (equalizing first-touch memory effects across cells) and,
    // in warm cells only, populates the visibility cache — cold cells
    // run with the cache disabled, so for them this is purely a
    // memory warm-up and every timed query still pays the full
    // visibility build.
    for snapshot in &snapshots {
        for query in &battery {
            engine.query_at(CUBE, query, snapshot).expect("warm-up");
        }
    }
    let mut latencies: Vec<u128> = Vec::with_capacity(reps * battery.len() * snapshots.len());
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut parallel_tasks = 0u64;
    let mut visibility_build_ns = 0u64;
    let mut scan_ns = 0u64;
    let mut checksum = 0u64;
    for _ in 0..reps {
        for snapshot in &snapshots {
            for query in &battery {
                let started = Instant::now();
                let result = engine.query_at(CUBE, query, snapshot).expect("query");
                latencies.push(started.elapsed().as_nanos());
                cache_hits += result.stats.vis_cache_hits;
                cache_misses += result.stats.vis_cache_misses;
                parallel_tasks += result.stats.parallel_tasks;
                visibility_build_ns += result.stats.visibility_build_nanos;
                scan_ns += result.stats.scan_nanos;
                checksum = checksum.wrapping_add(result.rows.len() as u64);
            }
        }
    }
    assert!(checksum > 0, "battery returned no rows");
    latencies.sort_unstable();
    let total: u128 = latencies.iter().sum();
    Cell {
        mode,
        cache,
        total_ns: total,
        mean_ns: total / latencies.len() as u128,
        p50_ns: latencies[latencies.len() / 2],
        queries: latencies.len(),
        cache_hits,
        cache_misses,
        parallel_tasks,
        visibility_build_ns,
        scan_ns,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"cache\": \"{}\", \"queries\": {}, \
         \"total_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
         \"vis_cache_hits\": {}, \"vis_cache_misses\": {}, \
         \"parallel_tasks\": {}, \"visibility_build_ns\": {}, \"scan_ns\": {}}}",
        c.mode,
        c.cache,
        c.queries,
        c.total_ns,
        c.mean_ns,
        c.p50_ns,
        c.cache_hits,
        c.cache_misses,
        c.parallel_tasks,
        c.visibility_build_ns,
        c.scan_ns
    )
}

fn main() {
    let batches = bench::env_usize("AOSI_BATCHES", 2500);
    let rows_per_batch = bench::env_usize("AOSI_BATCH", 8);
    let reps = bench::env_usize("AOSI_QUERIES", 40);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    let out = std::env::var("AOSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    bench::banner(
        "Scan bench",
        "serial vs parallel brick scans, cold vs warm visibility cache",
        &[
            ("batches", batches.to_string()),
            ("rows per batch", rows_per_batch.to_string()),
            ("timed reps per cell", reps.to_string()),
            ("shards", shards.to_string()),
            ("output", out.clone()),
        ],
    );

    // Cold = cache disabled entirely (every query pays the full
    // visibility build); warm = large cache, one untimed priming
    // pass. The data is static during timing, so warm cells are pure
    // cache-hit runs.
    let serial_cold = ScanConfig::sequential_uncached();
    let serial_warm = ScanConfig {
        parallel_threshold: usize::MAX,
        cache_capacity: 4096,
    };
    let parallel_cold = ScanConfig {
        parallel_threshold: 1,
        cache_capacity: 0,
    };
    let parallel_warm = ScanConfig::parallel_cached(4096);

    let cells = vec![
        run_cell(
            "serial",
            "cold",
            serial_cold,
            batches,
            rows_per_batch,
            reps,
            shards,
        ),
        run_cell(
            "serial",
            "warm",
            serial_warm,
            batches,
            rows_per_batch,
            reps,
            shards,
        ),
        run_cell(
            "parallel",
            "cold",
            parallel_cold,
            batches,
            rows_per_batch,
            reps,
            shards,
        ),
        run_cell(
            "parallel",
            "warm",
            parallel_warm,
            batches,
            rows_per_batch,
            reps,
            shards,
        ),
    ];

    println!("\nmode      cache   mean(us)   p50(us)    vis(us)    scan(us)   hits    misses");
    for c in &cells {
        println!(
            "{:<10}{:<8}{:<11.1}{:<11.1}{:<11.1}{:<11.1}{:<8}{}",
            c.mode,
            c.cache,
            c.mean_ns as f64 / 1e3,
            c.p50_ns as f64 / 1e3,
            c.visibility_build_ns as f64 / 1e3 / c.queries as f64,
            c.scan_ns as f64 / 1e3 / c.queries as f64,
            c.cache_hits,
            c.cache_misses
        );
    }

    let mean_of = |mode: &str, cache: &str| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.cache == cache)
            .map(|c| c.mean_ns as f64)
            .expect("cell exists")
    };
    let parallel_warm_speedup = mean_of("serial", "cold") / mean_of("parallel", "warm");
    let parallel_cold_speedup = mean_of("serial", "cold") / mean_of("parallel", "cold");
    let warm_cache_speedup = mean_of("serial", "cold") / mean_of("serial", "warm");
    println!("\nspeedup vs serial cold:");
    println!("  parallel warm: {parallel_warm_speedup:.2}x");
    println!("  parallel cold: {parallel_cold_speedup:.2}x");
    println!("  serial warm (cache only): {warm_cache_speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"scan\",\n  \"config\": {{\"batches\": {batches}, \
         \"rows_per_batch\": {rows_per_batch}, \"timed_reps\": {reps}, \
         \"shards\": {shards}}},\n  \"cells\": [\n{}\n  ],\n  \
         \"speedup_vs_serial_cold\": {{\"parallel_warm\": {parallel_warm_speedup:.4}, \
         \"parallel_cold\": {parallel_cold_speedup:.4}, \
         \"serial_warm\": {warm_cache_speedup:.4}}}\n}}\n",
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("\nwrote {out}");

    if bench::env_u64("AOSI_BENCH_ENFORCE", 0) != 0 {
        // CI sanity bound: parallelizing must never cost more than 2x
        // (it should win; the slack absorbs loaded shared runners).
        if parallel_cold_speedup < 0.5 {
            eprintln!(
                "ENFORCE FAILED: parallel cold is {:.2}x slower than serial cold",
                1.0 / parallel_cold_speedup
            );
            std::process::exit(1);
        }
        println!("enforce: parallel cold within 2x of serial cold — ok");
    }
}
