//! Scan-path benchmark: vectorized vs. reference scan kernels, serial
//! vs. parallel brick scans, shard-merge vs. brick-funnel partial
//! aggregation, cold vs. warm caches, on identical data and queries —
//! the fig5-style workload shape (many small appended batches, so
//! epochs vectors grow long and visibility materialization competes
//! with the residual scan).
//!
//! Emits `BENCH_scan.json` (override with `AOSI_BENCH_OUT`) with one
//! cell per measured combination plus the derived speedups. The
//! `merge` axis compares [`cubrick::MergePath`] variants on the
//! parallel cold point: `shard` folds brick partials into per-shard
//! [`cubrick::AggState`] tables merged once at the coordinator,
//! `funnel` ships every brick's partial through the coordinator
//! thread (the pre-shard-merge baseline). The `aggwarm` cache level
//! measures the snapshot-keyed aggregate cache: brick partials
//! replayed without touching visibility or columns at all.
//! `AOSI_BENCH_ENFORCE=1` turns the sanity bounds into an exit code:
//! the parallel cold path must not be more than 2x slower than the
//! serial cold path, the vectorized kernel must beat the
//! row-at-a-time reference kernel on pure scan time by at least
//! `AOSI_BENCH_MIN_KERNEL` (default 1.5; the committed paper-scale
//! run clears 3x — the smoke default absorbs noisy shared runners
//! and tiny smoke workloads), and shard-merge must not lose to the
//! funnel by more than `AOSI_BENCH_MIN_MERGE` (default 0.9 — i.e.
//! within 10% — the committed run shows it winning).
//!
//! Knobs: `AOSI_BATCHES` (epochs-vector length driver), `AOSI_BATCH`
//! (rows per batch), `AOSI_QUERIES` (timed repetitions per cell),
//! `AOSI_SHARDS`, `AOSI_PENDING`.

use std::time::Instant;

use aosi::Snapshot;
use columnar::{Row, Value};
use cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, Engine, MergePath, Metric, Query,
    ScanConfig, ScanKernel,
};

const CUBE: &str = "scanbench";

fn schema() -> CubeSchema {
    CubeSchema::new(
        CUBE,
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 16, 4),
        ],
        vec![Metric::int("likes"), Metric::float("score")],
    )
    .expect("static schema")
}

/// One batch: rows spread over every (region, day) brick so all
/// bricks' epochs vectors grow with every load.
fn batch(id: usize, rows_per_batch: usize) -> Vec<Row> {
    (0..rows_per_batch)
        .map(|k| {
            let i = id * rows_per_batch + k;
            vec![
                Value::from(format!("r{}", i % 8).as_str()),
                Value::from((i % 16) as i64),
                Value::from((i % 100) as i64),
                Value::from(1.5),
            ]
        })
        .collect()
}

/// The timed battery: a filtered group-by (bitmap visibility path)
/// and an unfiltered aggregate (visible-ranges path), so both cached
/// artifact kinds are measured.
fn queries() -> Vec<Query> {
    vec![
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Count, ""),
        ])
        .filter(DimFilter::new(
            "region",
            vec![
                Value::from("r0"),
                Value::from("r1"),
                Value::from("r2"),
                Value::from("r3"),
            ],
        ))
        .grouped_by("day"),
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Avg, "score"),
        ]),
    ]
}

struct Cell {
    kernel: &'static str,
    mode: &'static str,
    cache: &'static str,
    merge: &'static str,
    total_ns: u128,
    mean_ns: u128,
    p50_ns: u128,
    queries: usize,
    cache_hits: u64,
    cache_misses: u64,
    agg_cache_hits: u64,
    agg_cache_misses: u64,
    parallel_tasks: u64,
    visibility_build_ns: u64,
    scan_ns: u64,
    /// Sum over the battery's (snapshot, query) slots of each slot's
    /// *median* per-invocation scan time: the cost of one full
    /// battery with scheduler preemptions and frequency ramps
    /// filtered out. The plain `scan_ns` sum is kept for reference,
    /// but a single multi-millisecond preemption landing in a short
    /// cell can inflate it several-fold, so derived speedups use this.
    scan_p50_battery_ns: u64,
}

/// Builds an engine under `config`, loads the shared workload, and
/// times the battery at a fixed set of pinned snapshots: the newest
/// committed epoch plus two historical ones. Dashboards re-rendering
/// at a pinned snapshot and time-travel audits are exactly the
/// workload the snapshot-keyed cache targets — at a historical epoch
/// most rows are invisible, so the visibility build (walking the
/// whole epochs vector, materializing the bitmap) dominates the
/// cheap residual scan. Warm cells (nonzero cache capacity) serve
/// the timed pass from the visibility cache populated by the priming
/// pass; cold cells run with the cache disabled.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    kernel: &'static str,
    mode: &'static str,
    cache: &'static str,
    merge: &'static str,
    config: ScanConfig,
    batches: usize,
    rows_per_batch: usize,
    reps: usize,
    shards: usize,
) -> Cell {
    let engine = Engine::new(shards).with_scan_config(config);
    engine.create_cube(schema()).expect("cube");
    for id in 0..batches {
        engine
            .load(CUBE, &batch(id, rows_per_batch), 0)
            .expect("load");
    }
    // Ingestion keeps running in the paper's production setting, so a
    // reader snapshot carries a substantial pending-transaction
    // exclusion set; every epochs-vector entry then pays a deps
    // lookup during visibility materialization. Open (and hold) that
    // many writers before taking the query snapshots.
    let pending = bench::env_usize("AOSI_PENDING", 256);
    let _open_txns: Vec<_> = (0..pending)
        .map(|k| {
            let txn = engine.begin();
            engine
                .append(CUBE, &batch(batches + k, 1), &txn)
                .expect("pending append");
            txn
        })
        .collect();
    let lce = engine.manager().lce();
    // The fat-deps reader: a committed-snapshot read sits at the LCE,
    // *below* every pending epoch, so its deps set is empty by the
    // LCE rule. An open read-write transaction is the reader that
    // actually pays for pending writers — its snapshot epoch is its
    // own (above them all) and every pending epoch lands in deps,
    // costing one set probe per epochs-vector entry during
    // visibility materialization. That probe work, times the whole
    // epoch history, times every query, is what the cache memoizes.
    let reader_txn = engine.begin();
    let live = reader_txn.snapshot().clone();
    assert!(
        live.deps().len() >= pending,
        "expected a fat deps set, got {}",
        live.deps().len()
    );
    // Historical snapshots: deps above their epoch are dropped by
    // construction (a snapshot cannot depend on the future), so these
    // two time-travel reads are deps-free — there the cache saves the
    // bitmap/range materialization itself.
    let snapshots = [
        live.clone(),
        Snapshot::new(lce / 2, live.deps().clone()),
        Snapshot::new(lce / 16 + 1, live.deps().clone()),
    ];
    let battery = queries();
    // One untimed priming pass for EVERY cell: it touches the column
    // data (equalizing first-touch memory effects across cells) and,
    // in warm cells only, populates the visibility cache — cold cells
    // run with the cache disabled, so for them this is purely a
    // memory warm-up and every timed query still pays the full
    // visibility build.
    for snapshot in &snapshots {
        for query in &battery {
            engine.query_at(CUBE, query, snapshot).expect("warm-up");
        }
    }
    let mut latencies: Vec<u128> = Vec::with_capacity(reps * battery.len() * snapshots.len());
    let slots = snapshots.len() * battery.len();
    let mut scan_samples: Vec<Vec<u64>> = vec![Vec::with_capacity(reps); slots];
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut agg_cache_hits = 0u64;
    let mut agg_cache_misses = 0u64;
    let mut parallel_tasks = 0u64;
    let mut visibility_build_ns = 0u64;
    let mut scan_ns = 0u64;
    let mut checksum = 0u64;
    for _ in 0..reps {
        for (si, snapshot) in snapshots.iter().enumerate() {
            for (qi, query) in battery.iter().enumerate() {
                let started = Instant::now();
                let result = engine.query_at(CUBE, query, snapshot).expect("query");
                latencies.push(started.elapsed().as_nanos());
                scan_samples[si * battery.len() + qi].push(result.stats.scan_nanos);
                cache_hits += result.stats.vis_cache_hits;
                cache_misses += result.stats.vis_cache_misses;
                agg_cache_hits += result.stats.agg_cache_hits;
                agg_cache_misses += result.stats.agg_cache_misses;
                parallel_tasks += result.stats.parallel_tasks;
                visibility_build_ns += result.stats.visibility_build_nanos;
                scan_ns += result.stats.scan_nanos;
                checksum = checksum.wrapping_add(result.rows.len() as u64);
            }
        }
    }
    assert!(checksum > 0, "battery returned no rows");
    let scan_p50_battery_ns: u64 = scan_samples
        .iter_mut()
        .map(|samples| {
            samples.sort_unstable();
            samples[samples.len() / 2]
        })
        .sum();
    latencies.sort_unstable();
    let total: u128 = latencies.iter().sum();
    Cell {
        kernel,
        mode,
        cache,
        merge,
        total_ns: total,
        mean_ns: total / latencies.len() as u128,
        p50_ns: latencies[latencies.len() / 2],
        queries: latencies.len(),
        cache_hits,
        cache_misses,
        agg_cache_hits,
        agg_cache_misses,
        parallel_tasks,
        visibility_build_ns,
        scan_ns,
        scan_p50_battery_ns,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"kernel\": \"{}\", \"mode\": \"{}\", \"cache\": \"{}\", \"merge\": \"{}\", \
         \"queries\": {}, \
         \"total_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
         \"vis_cache_hits\": {}, \"vis_cache_misses\": {}, \
         \"agg_cache_hits\": {}, \"agg_cache_misses\": {}, \
         \"parallel_tasks\": {}, \"visibility_build_ns\": {}, \"scan_ns\": {}, \
         \"scan_p50_battery_ns\": {}}}",
        c.kernel,
        c.mode,
        c.cache,
        c.merge,
        c.queries,
        c.total_ns,
        c.mean_ns,
        c.p50_ns,
        c.cache_hits,
        c.cache_misses,
        c.agg_cache_hits,
        c.agg_cache_misses,
        c.parallel_tasks,
        c.visibility_build_ns,
        c.scan_ns,
        c.scan_p50_battery_ns
    )
}

fn main() {
    let batches = bench::env_usize("AOSI_BATCHES", 2500);
    let rows_per_batch = bench::env_usize("AOSI_BATCH", 80);
    let reps = bench::env_usize("AOSI_QUERIES", 40);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    let out = std::env::var("AOSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".into());
    bench::banner(
        "Scan bench",
        "vectorized vs reference kernels, serial vs parallel scans, cold vs warm cache",
        &[
            ("batches", batches.to_string()),
            ("rows per batch", rows_per_batch.to_string()),
            ("timed reps per cell", reps.to_string()),
            ("shards", shards.to_string()),
            ("output", out.clone()),
        ],
    );

    // Cold = caches disabled entirely (every query pays the full
    // visibility build); warm = large *visibility* cache, aggregate
    // cache off, one untimed priming pass; aggwarm = both caches on,
    // so warm bricks replay cached partials without touching columns
    // at all. The data is static during timing, so warm cells are
    // pure cache-hit runs. Kernel-speedup cells run once per scan
    // kernel on identical data; the merge and aggwarm comparison
    // cells are vectorized-only (the reference kernel adds nothing to
    // those axes).
    let vis_warm_only = |base: ScanConfig| ScanConfig {
        agg_cache_capacity: 0,
        ..base
    };
    let base_configs: [(&'static str, &'static str, &'static str, ScanConfig, bool); 6] = [
        (
            "serial",
            "cold",
            "shard",
            ScanConfig::sequential_uncached(),
            true,
        ),
        (
            "serial",
            "warm",
            "shard",
            vis_warm_only(ScanConfig {
                parallel_threshold: usize::MAX,
                cache_capacity: 4096,
                ..ScanConfig::default()
            }),
            true,
        ),
        (
            "parallel",
            "cold",
            "shard",
            ScanConfig {
                parallel_threshold: 1,
                cache_capacity: 0,
                agg_cache_capacity: 0,
                ..ScanConfig::default()
            },
            true,
        ),
        (
            "parallel",
            "cold",
            "funnel",
            ScanConfig {
                parallel_threshold: 1,
                cache_capacity: 0,
                agg_cache_capacity: 0,
                merge: MergePath::Funnel,
                ..ScanConfig::default()
            },
            false,
        ),
        (
            "parallel",
            "warm",
            "shard",
            vis_warm_only(ScanConfig::parallel_cached(4096)),
            true,
        ),
        (
            "parallel",
            "aggwarm",
            "shard",
            ScanConfig::parallel_cached(4096),
            false,
        ),
    ];
    let kernels: [(&'static str, ScanKernel); 2] = [
        ("vectorized", ScanKernel::Vectorized),
        ("reference", ScanKernel::RowAtATime),
    ];

    let mut cells = Vec::new();
    for (kernel_name, kernel) in kernels {
        for (mode, cache, merge, base, both_kernels) in &base_configs {
            if kernel == ScanKernel::RowAtATime && !both_kernels {
                continue;
            }
            let config = ScanConfig { kernel, ..*base };
            cells.push(run_cell(
                kernel_name,
                mode,
                cache,
                merge,
                config,
                batches,
                rows_per_batch,
                reps,
                shards,
            ));
        }
    }

    println!(
        "\nkernel      mode      cache    merge   mean(us)   p50(us)    vis(us)    scan(us)   scanp50(us)  hits    agghits"
    );
    for c in &cells {
        println!(
            "{:<12}{:<10}{:<9}{:<8}{:<11.1}{:<11.1}{:<11.1}{:<11.1}{:<13.1}{:<8}{}",
            c.kernel,
            c.mode,
            c.cache,
            c.merge,
            c.mean_ns as f64 / 1e3,
            c.p50_ns as f64 / 1e3,
            c.visibility_build_ns as f64 / 1e3 / c.queries as f64,
            c.scan_ns as f64 / 1e3 / c.queries as f64,
            c.scan_p50_battery_ns as f64 / 1e3,
            c.cache_hits,
            c.agg_cache_hits
        );
    }

    let cell_of = |kernel: &str, mode: &str, cache: &str, merge: &str| {
        cells
            .iter()
            .find(|c| c.kernel == kernel && c.mode == mode && c.cache == cache && c.merge == merge)
            .expect("cell exists")
    };
    let mean_of = |kernel: &str, mode: &str, cache: &str, merge: &str| {
        cell_of(kernel, mode, cache, merge).mean_ns as f64
    };
    let parallel_warm_speedup = mean_of("vectorized", "serial", "cold", "shard")
        / mean_of("vectorized", "parallel", "warm", "shard");
    let parallel_cold_speedup = mean_of("vectorized", "serial", "cold", "shard")
        / mean_of("vectorized", "parallel", "cold", "shard");
    let warm_cache_speedup = mean_of("vectorized", "serial", "cold", "shard")
        / mean_of("vectorized", "serial", "warm", "shard");
    // Shard merge vs. the brick funnel, parallel cold, identical data:
    // how much the per-shard AggState fold buys over shipping every
    // brick partial through the coordinator.
    let merge_speedup = mean_of("vectorized", "parallel", "cold", "funnel")
        / mean_of("vectorized", "parallel", "cold", "shard");
    // The aggregate cache on top of everything: warm partial replay
    // vs. the cold serial baseline.
    let agg_cache_speedup = mean_of("vectorized", "serial", "cold", "shard")
        / mean_of("vectorized", "parallel", "aggwarm", "shard");
    // The kernel speedup compares pure scan time (visibility build
    // excluded — it is kernel-independent) on the serial warm point,
    // where the cache removes visibility-build noise from the
    // measurement and no thread-pool scheduling jitter applies. It is
    // computed over per-slot medians, not the raw sum: a single
    // preemption or frequency ramp landing inside a sub-millisecond
    // cell distorts the sum by integer factors, while the median of
    // 40 reps of a deterministic scan is stable.
    let scan_of =
        |kernel: &str| cell_of(kernel, "serial", "warm", "shard").scan_p50_battery_ns as f64;
    let kernel_speedup = scan_of("reference") / scan_of("vectorized");
    let kernel_mean_speedup = mean_of("reference", "serial", "warm", "shard")
        / mean_of("vectorized", "serial", "warm", "shard");
    println!("\nspeedup vs serial cold (vectorized):");
    println!("  parallel warm: {parallel_warm_speedup:.2}x");
    println!("  parallel cold: {parallel_cold_speedup:.2}x");
    println!("  serial warm (vis cache only): {warm_cache_speedup:.2}x");
    println!("  parallel aggwarm (aggregate cache): {agg_cache_speedup:.2}x");
    println!("\nshard merge vs brick funnel (parallel cold): {merge_speedup:.2}x");
    println!("\nvectorized kernel vs reference (serial warm):");
    println!("  scan_ns: {kernel_speedup:.2}x");
    println!("  end-to-end mean: {kernel_mean_speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"scan\",\n  \"config\": {{\"batches\": {batches}, \
         \"rows_per_batch\": {rows_per_batch}, \"timed_reps\": {reps}, \
         \"shards\": {shards}}},\n  \"cells\": [\n{}\n  ],\n  \
         \"speedup_vs_serial_cold\": {{\"parallel_warm\": {parallel_warm_speedup:.4}, \
         \"parallel_cold\": {parallel_cold_speedup:.4}, \
         \"serial_warm\": {warm_cache_speedup:.4}, \
         \"parallel_aggwarm\": {agg_cache_speedup:.4}}},\n  \
         \"merge_speedup\": {merge_speedup:.4},\n  \
         \"kernel_speedup\": {{\"scan_ns\": {kernel_speedup:.4}, \
         \"mean_ns\": {kernel_mean_speedup:.4}}}\n}}\n",
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("\nwrote {out}");

    if bench::env_u64("AOSI_BENCH_ENFORCE", 0) != 0 {
        // CI sanity bounds: parallelizing must never cost more than
        // 2x (it should win; the slack absorbs loaded shared
        // runners), and the vectorized kernel must beat the reference
        // kernel on pure scan time.
        let min_kernel = bench::env_f64("AOSI_BENCH_MIN_KERNEL", 1.5);
        let min_merge = bench::env_f64("AOSI_BENCH_MIN_MERGE", 0.9);
        if parallel_cold_speedup < 0.5 {
            eprintln!(
                "ENFORCE FAILED: parallel cold is {:.2}x slower than serial cold",
                1.0 / parallel_cold_speedup
            );
            std::process::exit(1);
        }
        if kernel_speedup < min_kernel {
            eprintln!(
                "ENFORCE FAILED: vectorized kernel scan_ns speedup {kernel_speedup:.2}x \
                 is below the {min_kernel:.2}x bound"
            );
            std::process::exit(1);
        }
        if merge_speedup < min_merge {
            eprintln!(
                "ENFORCE FAILED: shard merge vs funnel speedup {merge_speedup:.2}x \
                 is below the {min_merge:.2}x bound"
            );
            std::process::exit(1);
        }
        println!("enforce: parallel cold within 2x of serial cold — ok");
        println!("enforce: vectorized kernel >= {min_kernel:.2}x reference on scan_ns — ok");
        println!("enforce: shard merge >= {min_merge:.2}x funnel on parallel cold mean — ok");
    }
}
