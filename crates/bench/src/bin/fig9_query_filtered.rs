//! Figure 9: query latency under Snapshot Isolation vs.
//! read-uncommitted with dimension filters.
//!
//! Same driver as Figure 8 but the query carries region/day filters,
//! so range pruning skips bricks and the per-row filter work shrinks
//! the scan — the SI bitmap generation becomes a relatively larger
//! share of the (smaller) query, which is exactly the regime the
//! paper uses to bound the protocol's worst-case query overhead.

use std::time::Instant;

use cubrick::{Engine, IsolationMode};
use workload::{Dataset, LatencyRecorder, QueryMix, WideDataset};

fn main() {
    let rows = bench::env_u64("AOSI_ROWS", 1_000_000);
    let queries = bench::env_usize("AOSI_QUERIES", 300);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    bench::banner(
        "Figure 9",
        "filtered query latency: Snapshot Isolation vs. read-uncommitted",
        &[
            ("rows", rows.to_string()),
            ("queries per mode", queries.to_string()),
            ("shards", shards.to_string()),
        ],
    );

    let dataset = WideDataset::default();
    let engine = Engine::new(shards);
    engine.create_cube(dataset.schema()).expect("cube");
    let mut batch_id = 0u64;
    let mut loaded = 0u64;
    while loaded < rows {
        let rows_batch = dataset.batch(99, batch_id, 5000);
        loaded += engine.load("wide", &rows_batch, 0).expect("load").accepted as u64;
        batch_id += 1;
    }
    println!("preloaded {loaded} rows");

    let query = QueryMix::wide_filtered(&["us", "br"], 0..16);
    let mut si = LatencyRecorder::new();
    let mut ru = LatencyRecorder::new();
    let mut pruned = 0u64;
    for _ in 0..queries {
        let started = Instant::now();
        let r = engine
            .query("wide", &query, IsolationMode::Snapshot)
            .expect("query");
        si.record(started.elapsed());
        pruned = r.stats.bricks_pruned;
        let started = Instant::now();
        engine
            .query("wide", &query, IsolationMode::ReadUncommitted)
            .expect("query");
        ru.record(started.elapsed());
    }

    let si_p = si.percentiles();
    let ru_p = ru.percentiles();
    println!("\nbricks pruned per query: {pruned}");
    println!("\nmode  p50(ms)   p90(ms)   p99(ms)   mean(ms)  n");
    for (name, p) in [("SI", si_p), ("RU", ru_p)] {
        println!(
            "{name:<6}{:<10.3}{:<10.3}{:<10.3}{:<10.3}{}",
            p.p50.as_secs_f64() * 1e3,
            p.p90.as_secs_f64() * 1e3,
            p.p99.as_secs_f64() * 1e3,
            p.mean.as_secs_f64() * 1e3,
            p.count
        );
    }
    let overhead = (si_p.mean.as_secs_f64() / ru_p.mean.as_secs_f64() - 1.0) * 100.0;
    println!("\nSI mean overhead vs RU: {overhead:+.1}%");
    println!(
        "paper shape check: SI overhead stays small even when filters make \
         the scan itself cheap — see EXPERIMENTS.md"
    );
}
