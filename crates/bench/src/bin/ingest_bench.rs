//! Tiered-ingestion benchmark: continuous loads into an engine whose
//! memory budget holds only a fraction of the dataset, with the cold
//! tier spilling bricks through [`wal::WalBrickStore`] on the real
//! filesystem.
//!
//! The shape mirrors figure 10's ingestion scaling, but the variable
//! under test is the residency budget rather than the node count: the
//! dataset is sized to at least `AOSI_INGEST_MULT` (default 4) times
//! the budget, so steady-state ingestion *must* cycle bricks through
//! the cold tier to stay inside memory. Every `AOSI_FLUSH_EVERY`
//! batches a WAL flush round runs (advancing the LSE, which is what
//! makes bricks clean-cold and evictable), a full-scan conservation
//! query checks that the running metric sum survives the spill/reload
//! churn bit-exactly, and an eviction sweep is forced so the
//! post-sweep resident footprint can be held against the budget. At
//! the end the WAL round chain is recovered into a fresh engine and
//! the same conservation sum must come back — snapshots are a
//! redundant cold copy, never a recovery input.
//!
//! A sizing pass first ingests the identical batches into a plain
//! in-memory engine: it measures the dataset's resident footprint
//! (from which the budget is derived as `footprint / mult`) and
//! doubles as the no-tier ingestion baseline rate.
//!
//! Emits `BENCH_ingest.json` (override with `AOSI_BENCH_OUT`).
//! `AOSI_BENCH_ENFORCE=1` turns the bounds into an exit code: the
//! dataset must be ≥ `AOSI_BENCH_MIN_RATIO` (default 4.0) times the
//! budget, every post-flush eviction sweep must land at or under the
//! budget, at least one brick must spill and reload, and no spill or
//! reload may fail. Conservation and recovery mismatches abort
//! unconditionally — those are correctness bugs, not tuning.
//!
//! Knobs: `AOSI_INGEST_BATCHES`, `AOSI_BATCH`, `AOSI_SHARDS`,
//! `AOSI_FLUSH_EVERY`, `AOSI_INGEST_MULT`, and `AOSI_INGEST_BUDGET`
//! (explicit budget in bytes, 0 = derive from the sizing pass).

use std::time::Instant;

use cluster::ReplicationTracker;
use columnar::{Row, Value};
use cubrick::{
    AggFn, Aggregation, CubeSchema, Dimension, Engine, IsolationMode, Metric, Query,
};
use wal::{recover_into, FlushController, TempWalDir, WalBrickStore};

const CUBE: &str = "ingest";

fn schema() -> CubeSchema {
    CubeSchema::new(
        CUBE,
        vec![
            Dimension::string("region", 16, 2),
            Dimension::int("day", 32, 4),
        ],
        vec![Metric::int("likes"), Metric::float("score")],
    )
    .expect("static schema")
}

/// One batch: rows spread over all 64 (region, day) bricks so the
/// eviction sweep always has many candidates much smaller than the
/// budget.
fn batch(id: usize, rows_per_batch: usize) -> (Vec<Row>, f64) {
    let mut sum = 0.0;
    let rows = (0..rows_per_batch)
        .map(|k| {
            let i = id * rows_per_batch + k;
            let likes = (i % 100) as i64;
            sum += likes as f64;
            vec![
                Value::from(format!("r{}", i % 16).as_str()),
                Value::from((i % 32) as i64),
                Value::from(likes),
                Value::from(1.25),
            ]
        })
        .collect();
    (rows, sum)
}

fn total_sum(engine: &Engine) -> f64 {
    engine
        .query(
            CUBE,
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
            IsolationMode::Snapshot,
        )
        .expect("conservation query")
        .scalar()
        .unwrap_or(0.0)
}

fn main() {
    let batches = bench::env_usize("AOSI_INGEST_BATCHES", 64);
    let rows_per_batch = bench::env_usize("AOSI_BATCH", 2000);
    let shards = bench::env_usize("AOSI_SHARDS", 4);
    let flush_every = bench::env_usize("AOSI_FLUSH_EVERY", 4).max(1);
    let mult = bench::env_u64("AOSI_INGEST_MULT", 4).max(1);
    bench::banner(
        "Tiered ingestion",
        "sustained loads under a memory budget a fraction of the dataset",
        &[
            ("batches", batches.to_string()),
            ("rows per batch", rows_per_batch.to_string()),
            ("shards", shards.to_string()),
            ("flush every", format!("{flush_every} batches")),
            ("dataset / budget", format!("{mult}x")),
        ],
    );

    // Sizing pass: the same batches into a plain engine measure the
    // dataset's resident footprint and the no-tier baseline rate.
    let plain = Engine::new(shards);
    plain.create_cube(schema()).expect("cube");
    let started = Instant::now();
    let mut expected_total = 0.0f64;
    for id in 0..batches {
        let (rows, sum) = batch(id, rows_per_batch);
        plain.load(CUBE, &rows, 0).expect("sizing load");
        expected_total += sum;
    }
    let baseline_s = started.elapsed().as_secs_f64();
    let mem = plain.memory();
    let footprint = (mem.data_bytes + mem.aosi_bytes) as u64;
    let total_rows = (batches * rows_per_batch) as u64;
    let baseline_rows_per_s = total_rows as f64 / baseline_s;
    drop(plain);

    let budget_bytes = match bench::env_u64("AOSI_INGEST_BUDGET", 0) {
        0 => (footprint / mult).max(1),
        explicit => explicit,
    };
    println!(
        "dataset footprint {} ({} bricks), budget {}",
        workload::human_bytes(footprint),
        mem.bricks,
        workload::human_bytes(budget_bytes),
    );

    // The measured run: WAL chain and snapshot store live in sibling
    // directories (the flush controller owns its directory and deletes
    // files it does not recognize).
    let base = TempWalDir::new("ingest-bench");
    let wal_dir = base.path().join("wal");
    let tier_dir = base.path().join("tier");
    let store = WalBrickStore::open(&tier_dir).expect("snapshot store");
    let engine =
        Engine::new(shards).with_tiered_storage(Box::new(store), budget_bytes as usize);
    engine.create_cube(schema()).expect("cube");
    let mut ctl = FlushController::new(&wal_dir, 1).expect("flush controller");
    let tracker = ReplicationTracker::new(1);

    let mut running_sum = 0.0f64;
    let mut max_resident_after_sweep = 0u64;
    let mut sweep_failures = 0u64;
    let mut flushes = 0usize;
    let mut wal_bytes = 0u64;
    let started = Instant::now();
    for id in 0..batches {
        let (rows, sum) = batch(id, rows_per_batch);
        engine.load(CUBE, &rows, 0).expect("load");
        running_sum += sum;
        if (id + 1) % flush_every == 0 || id + 1 == batches {
            let outcome = ctl.flush_round(&engine, &tracker).expect("flush round");
            wal_bytes += outcome.bytes_written;
            flushes += 1;
            // Full-scan conservation: reloads whatever is spilled, so
            // every flush window cycles bricks both directions.
            let got = total_sum(&engine);
            assert!(
                got == running_sum,
                "conservation violated after batch {}: sum {got}, loaded {running_sum}",
                id + 1
            );
            let sweep = engine.enforce_tier_budget();
            sweep_failures += sweep.failed;
            max_resident_after_sweep = max_resident_after_sweep.max(sweep.resident_bytes_after);
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let rows_per_s = total_rows as f64 / elapsed_s;
    let stats = engine.tier_stats().expect("tier stats");
    let dataset_bytes = stats.resident_bytes + stats.spilled_resident_bytes;
    let ratio = dataset_bytes as f64 / budget_bytes as f64;

    // Recovery reads only the round chain — a fresh engine with no
    // snapshot store must reproduce the conservation sum.
    let recovered = Engine::new(shards);
    recovered.create_cube(schema()).expect("cube");
    let report = recover_into(&wal_dir, &recovered).expect("recovery");
    assert!(
        report.gaps_detected == 0 && report.unknown_cube_deltas == 0,
        "recovery chain damaged: {report:?}"
    );
    assert!(
        report.rows_recovered == total_rows,
        "recovery lost rows: {} of {total_rows}",
        report.rows_recovered
    );
    let recovered_sum = total_sum(&recovered);
    assert!(
        recovered_sum == expected_total,
        "recovered sum {recovered_sum} != loaded {expected_total}"
    );

    println!(
        "\ningest:   {} rows in {elapsed_s:.2}s — {} (baseline, no tier: {})",
        total_rows,
        workload::human_rate(rows_per_s),
        workload::human_rate(baseline_rows_per_s),
    );
    println!(
        "tier:     {} spills, {} reloads, {} cache serves, {} spilled bricks at end",
        stats.spills, stats.reloads, stats.cache_serves, stats.spilled_bricks
    );
    println!(
        "resident: max {} after {} sweeps, budget {} ({ratio:.1}x dataset / budget)",
        workload::human_bytes(max_resident_after_sweep),
        flushes,
        workload::human_bytes(budget_bytes),
    );
    println!(
        "wal:      {} rounds, {}; recovery replayed {} rows clean",
        flushes,
        workload::human_bytes(wal_bytes),
        report.rows_recovered
    );

    let out = std::env::var("AOSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".into());
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"config\": {{\"batches\": {batches}, \
         \"rows_per_batch\": {rows_per_batch}, \"shards\": {shards}, \
         \"flush_every\": {flush_every}, \"budget_bytes\": {budget_bytes}}},\n  \
         \"sizing_footprint_bytes\": {footprint},\n  \
         \"dataset_bytes\": {dataset_bytes},\n  \"dataset_over_budget\": {ratio:.3},\n  \
         \"rows\": {total_rows},\n  \"elapsed_s\": {elapsed_s:.3},\n  \
         \"rows_per_s\": {rows_per_s:.0},\n  \"baseline_rows_per_s\": {baseline_rows_per_s:.0},\n  \
         \"spills\": {},\n  \"reloads\": {},\n  \"cache_serves\": {},\n  \
         \"spill_failures\": {},\n  \"reload_failures\": {},\n  \
         \"spilled_bricks_final\": {},\n  \"spilled_file_bytes\": {},\n  \
         \"max_resident_after_sweep\": {max_resident_after_sweep},\n  \
         \"wal_rounds\": {flushes},\n  \"wal_bytes\": {wal_bytes},\n  \
         \"recovered_rows\": {}\n}}\n",
        stats.spills,
        stats.reloads,
        stats.cache_serves,
        stats.spill_failures,
        stats.reload_failures,
        stats.spilled_bricks,
        stats.spilled_file_bytes,
        report.rows_recovered
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    if bench::env_u64("AOSI_BENCH_ENFORCE", 0) != 0 {
        let min_ratio = bench::env_f64("AOSI_BENCH_MIN_RATIO", 4.0);
        if ratio < min_ratio {
            eprintln!(
                "ENFORCE FAILED: dataset is only {ratio:.2}x the budget, need {min_ratio:.2}x"
            );
            std::process::exit(1);
        }
        if max_resident_after_sweep > budget_bytes {
            eprintln!(
                "ENFORCE FAILED: resident bytes peaked at {max_resident_after_sweep} after an \
                 eviction sweep, budget is {budget_bytes}"
            );
            std::process::exit(1);
        }
        if stats.spills == 0 || stats.reloads == 0 {
            eprintln!(
                "ENFORCE FAILED: no cold-tier cycling ({} spills, {} reloads)",
                stats.spills, stats.reloads
            );
            std::process::exit(1);
        }
        if stats.spill_failures != 0 || stats.reload_failures != 0 || sweep_failures != 0 {
            eprintln!(
                "ENFORCE FAILED: {} spill failures, {} reload failures, {} sweep failures",
                stats.spill_failures, stats.reload_failures, sweep_failures
            );
            std::process::exit(1);
        }
        println!("enforce: OK");
    }
}
