//! Figure 5: latency distribution of load requests on a cluster
//! under continuous ingestion.
//!
//! Paper observation: "Parse and flush latency are usually small and
//! the total time is dominated by network latency incurred in order
//! to forward records to remote nodes." We run a simulated cluster
//! with a datacenter-ish latency model and report the per-stage
//! distribution of load requests, expecting the same dominance of
//! the forward stage.

use std::time::Instant;

use cluster::{LatencyModel, SimulatedNetwork};
use cubrick::DistributedEngine;
use workload::{Dataset, LatencyRecorder, SingleColumnDataset};

fn main() {
    let nodes = bench::env_u64("AOSI_NODES", 8);
    let clients = bench::env_usize("AOSI_CLIENTS", 4);
    let requests = bench::env_u64("AOSI_REQUESTS", 100);
    let batch = bench::env_usize("AOSI_BATCH", 5000);
    let shards = bench::env_usize("AOSI_SHARDS", 2);
    let hop_us = bench::env_u64("AOSI_HOP_US", 300);
    bench::banner(
        "Figure 5",
        "load-request latency distribution (parse / forward / flush / total)",
        &[
            ("nodes", nodes.to_string()),
            ("clients", clients.to_string()),
            ("requests per client", requests.to_string()),
            ("batch", batch.to_string()),
            ("one-way hop", format!("{hop_us}us (+50% jitter)")),
        ],
    );

    let network = SimulatedNetwork::new(LatencyModel::datacenter(
        std::time::Duration::from_micros(hop_us),
    ));
    let cluster = DistributedEngine::new(nodes, shards, network);
    let dataset = SingleColumnDataset::default();
    cluster.create_cube(dataset.schema()).expect("cube");

    struct Stage {
        parse: LatencyRecorder,
        forward: LatencyRecorder,
        flush: LatencyRecorder,
        total: LatencyRecorder,
    }
    let mut merged = Stage {
        parse: LatencyRecorder::new(),
        forward: LatencyRecorder::new(),
        flush: LatencyRecorder::new(),
        total: LatencyRecorder::new(),
    };

    let started = Instant::now();
    let stages: Vec<Stage> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let cluster = &cluster;
                let dataset = &dataset;
                scope.spawn(move || {
                    let origin = (client as u64 % cluster.num_nodes()) + 1;
                    let mut stage = Stage {
                        parse: LatencyRecorder::new(),
                        forward: LatencyRecorder::new(),
                        flush: LatencyRecorder::new(),
                        total: LatencyRecorder::new(),
                    };
                    for request in 0..requests {
                        let batch_id = client as u64 * requests + request;
                        let rows = dataset.batch(55, batch_id, batch);
                        let outcome = cluster
                            .load(origin, "single_column", &rows, 0)
                            .expect("load");
                        stage.parse.record(outcome.timings.parse);
                        stage.forward.record(outcome.timings.forward);
                        stage.flush.record(outcome.timings.flush);
                        stage.total.record(outcome.timings.total);
                    }
                    stage
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for stage in stages {
        merged.parse.merge(stage.parse);
        merged.forward.merge(stage.forward);
        merged.flush.merge(stage.flush);
        merged.total.merge(stage.total);
    }
    let elapsed = started.elapsed();

    println!("\nstage    p50(ms)   p90(ms)   p99(ms)   mean(ms)");
    for (name, rec) in [
        ("parse", &merged.parse),
        ("forward", &merged.forward),
        ("flush", &merged.flush),
        ("total", &merged.total),
    ] {
        let p = rec.percentiles();
        println!(
            "{name:<9}{:<10.3}{:<10.3}{:<10.3}{:.3}",
            p.p50.as_secs_f64() * 1e3,
            p.p90.as_secs_f64() * 1e3,
            p.p99.as_secs_f64() * 1e3,
            p.mean.as_secs_f64() * 1e3,
        );
    }
    let stats = cluster.network().stats();
    println!(
        "\nnetwork: {} messages, {}",
        stats.messages,
        workload::human_bytes(stats.bytes)
    );
    let total_mean = merged.total.percentiles().mean.as_secs_f64();
    let forward_share = merged.forward.percentiles().mean.as_secs_f64() / total_mean * 100.0;
    // Everything that is neither parse nor flush is network time:
    // the forward fan-out plus the commit broadcast roundtrip.
    let network_share = (1.0
        - (merged.parse.percentiles().mean.as_secs_f64()
            + merged.flush.percentiles().mean.as_secs_f64())
            / total_mean)
        * 100.0;
    println!(
        "rows/s: {}",
        workload::human_rate(
            (clients as u64 * requests * batch as u64) as f64 / elapsed.as_secs_f64()
        )
    );
    println!("forward share of total latency: {forward_share:.0}%");
    println!("network share of total latency (forward + commit): {network_share:.0}%");
    println!(
        "paper shape check: total dominated by forwarding, parse and flush \
         small — see EXPERIMENTS.md"
    );

    if bench::env_u64("AOSI_METRICS", 1) != 0 {
        println!("\n--- metrics report (AOSI_METRICS=0 to silence) ---");
        println!("{}", cluster.metrics_report());
    }
}
