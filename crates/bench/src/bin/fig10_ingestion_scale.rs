//! Figure 10: ingestion scale on a cluster.
//!
//! Paper setup: a daily Hive-to-Cubrick job on a 200-node cluster
//! peaking at ~390M records/s (~6 GB/s) with a ramp-up, plateau, and
//! ramp-down as upstream tasks finish. We run an `AOSI_NODES`-node
//! simulated cluster fed by many parallel clients whose population
//! ramps up and down, and report records/s and bytes/s per time
//! window plus the per-node scaling table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cluster::SimulatedNetwork;
use cubrick::DistributedEngine;
use workload::{Dataset, SingleColumnDataset};

/// 128 partition ranges so the consistent-hash spread is visible even
/// on small clusters (the default dataset only makes 16 bricks).
fn make_dataset() -> SingleColumnDataset {
    SingleColumnDataset {
        cardinality: 1 << 20,
        range_size: 1 << 13,
    }
}

fn run_cluster(
    nodes: u64,
    shards: usize,
    clients: usize,
    batches_per_client: u64,
    batch: usize,
) -> (f64, f64) {
    let cluster = DistributedEngine::new(nodes, shards, SimulatedNetwork::instant());
    let dataset = make_dataset();
    cluster.create_cube(dataset.schema()).expect("cube");
    let loaded = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let cluster = &cluster;
            let dataset = &dataset;
            let loaded = &loaded;
            scope.spawn(move || {
                let origin = (client as u64 % cluster.num_nodes()) + 1;
                for b in 0..batches_per_client {
                    let rows = dataset.batch(66, client as u64 * batches_per_client + b, batch);
                    let outcome = cluster
                        .load(origin, "single_column", &rows, 0)
                        .expect("load");
                    loaded.fetch_add(outcome.accepted as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let rows = loaded.load(Ordering::Relaxed) as f64;
    (rows / secs, rows)
}

fn main() {
    let nodes = bench::env_u64("AOSI_NODES", 8);
    let shards = bench::env_usize("AOSI_SHARDS", 2);
    let clients = bench::env_usize("AOSI_CLIENTS", 8);
    let batches = bench::env_u64("AOSI_BATCHES", 40);
    let batch = bench::env_usize("AOSI_BATCH", 5000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    bench::banner(
        "Figure 10",
        "ingestion scale: records/s over the job and scaling with cluster size",
        &[
            ("nodes (max)", nodes.to_string()),
            ("shards per node", shards.to_string()),
            ("clients", clients.to_string()),
            ("batches per client", batches.to_string()),
            ("batch", batch.to_string()),
            ("host cores", cores.to_string()),
        ],
    );
    if cores == 1 {
        println!(
            "note: single-core host — client/node scaling cannot exceed 1x; \n\
             the work-distribution table below is the meaningful half of \n\
             Figure 10's claim on this machine"
        );
    }
    let dataset = make_dataset();
    let row_bytes = dataset.row_bytes() as f64;

    // Ramp profile: the paper's job ramps up as Hive tasks start and
    // down as they finalize. We emulate with three phases of client
    // population.
    println!("\njob profile (nodes = {nodes}):");
    println!("phase      clients  records/s      bytes/s");
    for (phase, factor) in [("ramp-up", 0.25), ("plateau", 1.0), ("ramp-down", 0.25)] {
        let phase_clients = ((clients as f64 * factor).round() as usize).max(1);
        let (rate, _) = run_cluster(nodes, shards, phase_clients, batches, batch);
        println!(
            "{phase:<11}{phase_clients:<9}{:<15}{}/s",
            workload::human_rate(rate),
            workload::human_bytes((rate * row_bytes) as u64),
        );
    }

    // Scaling with load parallelism: the claim behind "200 nodes,
    // 390M rows/s" is that aggregate ingestion grows with the
    // parallelism the cluster absorbs. On one host the ceiling is
    // the machine's cores, so we show throughput vs. client count
    // and, separately, that the per-node share of the work stays
    // flat as the cluster grows (the distribution half of the
    // claim).
    println!("\nscaling with load parallelism (nodes = {nodes}):");
    println!("clients  records/s      bytes/s        speedup");
    let mut base_rate = None;
    let mut cl = 1usize;
    while cl <= clients {
        let (rate, _) = run_cluster(nodes, shards, cl, batches, batch);
        let base = *base_rate.get_or_insert(rate);
        println!(
            "{cl:<9}{:<15}{:<15}{:.2}x",
            workload::human_rate(rate),
            workload::human_bytes((rate * row_bytes) as u64),
            rate / base
        );
        cl *= 2;
    }

    println!("\nwork distribution (clients = {clients}):");
    println!("nodes  records/s      rows-per-node-share");
    let mut n = 1u64;
    while n <= nodes {
        let cluster = DistributedEngine::new(n, shards, SimulatedNetwork::instant());
        let ds = make_dataset();
        cluster.create_cube(ds.schema()).expect("cube");
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                let cluster = &cluster;
                let ds = &ds;
                scope.spawn(move || {
                    let origin = (client as u64 % cluster.num_nodes()) + 1;
                    for b in 0..batches {
                        let rows = ds.batch(67, client as u64 * batches + b, batch);
                        cluster
                            .load(origin, "single_column", &rows, 0)
                            .expect("load");
                    }
                });
            }
        });
        let secs = started.elapsed().as_secs_f64();
        let total_rows: u64 = (1..=n).map(|node| cluster.engine(node).memory().rows).sum();
        let max_node = (1..=n)
            .map(|node| cluster.engine(node).memory().rows)
            .max()
            .unwrap_or(0);
        println!(
            "{n:<7}{:<15}{:.1}% (max node holds; fair = {:.1}%)",
            workload::human_rate(total_rows as f64 / secs),
            max_node as f64 / total_rows.max(1) as f64 * 100.0,
            100.0 / n as f64
        );
        n *= 2;
    }
    println!(
        "\npaper shape check: ramp-up/plateau/ramp-down profile, throughput \
         growing with client parallelism until the host's cores saturate, \
         and near-fair spread of rows across nodes — see EXPERIMENTS.md"
    );
}
