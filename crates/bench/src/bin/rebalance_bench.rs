//! Rebalance benchmark: read latency while a shard move is in flight
//! vs. steady state.
//!
//! An elastic cluster (3 active members of 4 provisioned slots,
//! replication factor 2) is loaded, then hammered with single-origin
//! aggregate reads in two phases: a steady-state baseline, and a
//! phase where node 4 joins mid-read-storm — `join_node` streams its
//! ring share of bricks over the simulated network while the reader
//! keeps going. The claim under test is DESIGN.md §17's "reads keep
//! answering from surviving replicas mid-move": every read must be
//! answered (`unanswered == 0`) and the moving-phase p99 must stay
//! within a generous ceiling of sanity.
//!
//! Emits `BENCH_rebalance.json` (override with `AOSI_BENCH_OUT`) with
//! per-phase read counts and p50/p99 latencies, the move duration,
//! and the brick count moved. `AOSI_BENCH_ENFORCE=1` turns the
//! bounds into an exit code: zero unanswered reads in both phases,
//! and moving-phase p99 ≤ `AOSI_REBAL_MAX_P99_MS` (default 250 —
//! the gate is for pathological regressions such as a handoff
//! holding the scan gate for the whole stream, not µs tuning).
//!
//! Knobs: `AOSI_REBAL_BATCHES` (load volume), `AOSI_REBAL_READS`
//! (steady-phase reads), `AOSI_BATCH` (rows per batch).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use cluster::{FaultPlan, LatencyModel, NodeId, SimulatedNetwork};
use columnar::{Row, Value};
use cubrick::{CubeSchema, Dimension, DistributedEngine, ElasticConfig, Metric};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CUBE: &str = "events";
const METRIC: &str = "likes";

fn batch(rng: &mut StdRng, rows: usize) -> Vec<Row> {
    (0..rows)
        .map(|_| vec![Value::from(rng.gen_range(0..32i64)), Value::from(1i64)])
        .collect()
}

/// One timed read from a random steady member; returns its latency.
/// The read itself is the conservation query the elastic suite uses —
/// never memory accounting.
fn timed_read(d: &DistributedEngine, rng: &mut StdRng, expected: f64) -> u128 {
    let origin: NodeId = rng.gen_range(1..=3);
    let t = Instant::now();
    let seen = d
        .committed_total(origin, CUBE, METRIC)
        .expect("read went unanswered");
    let ns = t.elapsed().as_nanos();
    assert_eq!(seen, expected, "conservation violated mid-bench");
    ns
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Phase {
    reads: usize,
    p50_ns: u128,
    p99_ns: u128,
}

fn phase_stats(mut lat: Vec<u128>) -> Phase {
    lat.sort_unstable();
    Phase {
        reads: lat.len(),
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
    }
}

fn main() {
    let batches = bench::env_usize("AOSI_REBAL_BATCHES", 400);
    let rows_per_batch = bench::env_usize("AOSI_BATCH", 40);
    let steady_reads = bench::env_usize("AOSI_REBAL_READS", 500);
    let out = std::env::var("AOSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_rebalance.json".into());
    bench::banner(
        "Rebalance bench",
        "read p50/p99 during a timed shard move vs steady state",
        &[
            ("batches", batches.to_string()),
            ("rows per batch", rows_per_batch.to_string()),
            ("steady reads", steady_reads.to_string()),
        ],
    );

    let network = SimulatedNetwork::with_faults(LatencyModel::instant(), FaultPlan::seeded(1));
    let d = DistributedEngine::elastic(
        ElasticConfig {
            capacity: 4,
            active: vec![1, 2, 3],
            shards_per_node: 2,
            replication: 2,
            retry: Default::default(),
        },
        network,
    );
    d.create_cube(
        CubeSchema::new(
            CUBE,
            vec![Dimension::int("day", 32, 1)],
            vec![Metric::int(METRIC)],
        )
        .expect("static schema"),
    )
    .expect("create cube");

    let mut rng = StdRng::seed_from_u64(0x5EBA1);
    let mut committed = 0.0f64;
    for _ in 0..batches {
        let origin: NodeId = rng.gen_range(1..=3);
        d.load(origin, CUBE, &batch(&mut rng, rows_per_batch), 0)
            .expect("load");
        committed += rows_per_batch as f64;
    }
    assert!(d.protocol().settle(), "cluster failed to settle after load");

    // Phase 1: steady state.
    let steady = phase_stats(
        (0..steady_reads)
            .map(|_| timed_read(&d, &mut rng, committed))
            .collect(),
    );

    // Phase 2: node 4 joins (brick handoff streams over the network)
    // while the reader keeps hammering. The reader stops when the
    // join thread reports completion.
    let done = AtomicBool::new(false);
    let (moving_lat, move_ns, bricks_moved) = std::thread::scope(|s| {
        let mover = s.spawn(|| {
            let t = Instant::now();
            let moved = d.join_node(4).expect("join failed");
            done.store(true, Ordering::SeqCst);
            (t.elapsed().as_nanos(), moved)
        });
        let mut lat = Vec::new();
        while !done.load(Ordering::SeqCst) {
            lat.push(timed_read(&d, &mut rng, committed));
        }
        let (move_ns, moved) = mover.join().expect("mover panicked");
        (lat, move_ns, moved)
    });
    let moving = phase_stats(moving_lat);
    let (_, _, unanswered) = d.read_routing_stats();

    println!(
        "\nsteady:  {} reads, p50 {} ns, p99 {} ns",
        steady.reads, steady.p50_ns, steady.p99_ns
    );
    println!(
        "moving:  {} reads, p50 {} ns, p99 {} ns (move {} ms, {} bricks)",
        moving.reads,
        moving.p50_ns,
        moving.p99_ns,
        move_ns / 1_000_000,
        bricks_moved
    );
    println!("unanswered reads: {unanswered}");

    let json = format!(
        "{{\n  \"bench\": \"rebalance\",\n  \"config\": {{\"batches\": {batches}, \
         \"rows_per_batch\": {rows_per_batch}, \"steady_reads\": {steady_reads}, \
         \"replication\": 2}},\n  \
         \"steady\": {{\"reads\": {}, \"p50_ns\": {}, \"p99_ns\": {}}},\n  \
         \"moving\": {{\"reads\": {}, \"p50_ns\": {}, \"p99_ns\": {}}},\n  \
         \"move_ns\": {move_ns},\n  \"bricks_moved\": {bricks_moved},\n  \
         \"unanswered_reads\": {unanswered}\n}}\n",
        steady.reads, steady.p50_ns, steady.p99_ns, moving.reads, moving.p50_ns, moving.p99_ns
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    if bench::env_u64("AOSI_BENCH_ENFORCE", 0) != 0 {
        let max_p99_ms = bench::env_f64("AOSI_REBAL_MAX_P99_MS", 250.0);
        if unanswered != 0 {
            eprintln!("ENFORCE FAILED: {unanswered} reads went unanswered during the move");
            std::process::exit(1);
        }
        let moving_p99_ms = moving.p99_ns as f64 / 1e6;
        if moving_p99_ms > max_p99_ms {
            eprintln!(
                "ENFORCE FAILED: moving-phase read p99 {moving_p99_ms:.2} ms exceeds \
                 {max_p99_ms:.2} ms"
            );
            std::process::exit(1);
        }
        if moving.reads == 0 {
            eprintln!("ENFORCE FAILED: no read completed while the move was in flight");
            std::process::exit(1);
        }
        println!("enforce: OK");
    }
}
