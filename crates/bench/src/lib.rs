//! Shared plumbing for the figure binaries.
//!
//! Every `fig*` binary reads its scale knobs from environment
//! variables so the paper-scale runs and quick smoke runs use the
//! same code path:
//!
//! * `AOSI_ROWS` — total rows to ingest (figures 6/7/10).
//! * `AOSI_NODES` — simulated cluster size (figures 5/10).
//! * `AOSI_CLIENTS` — parallel load clients.
//! * `AOSI_BATCH` — rows per load request (paper: 5000).
//! * `AOSI_QUERIES` — query repetitions (figures 8/9).
//! * `AOSI_SHARDS` — shard threads per node.

/// Reads a `usize` knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` knob from the environment (enforcement thresholds).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a figure banner with the experiment id and its knobs.
pub fn banner(figure: &str, description: &str, knobs: &[(&str, String)]) {
    println!("================================================================");
    println!("{figure}: {description}");
    for (name, value) in knobs {
        println!("  {name} = {value}");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        std::env::remove_var("AOSI_TEST_KNOB_X");
        assert_eq!(env_usize("AOSI_TEST_KNOB_X", 7), 7);
        assert_eq!(env_u64("AOSI_TEST_KNOB_X", 9), 9);
        assert_eq!(env_f64("AOSI_TEST_KNOB_X", 1.5), 1.5);
        std::env::set_var("AOSI_TEST_KNOB_X", "42");
        assert_eq!(env_usize("AOSI_TEST_KNOB_X", 7), 42);
        std::env::set_var("AOSI_TEST_KNOB_X", "not-a-number");
        assert_eq!(env_usize("AOSI_TEST_KNOB_X", 7), 7);
        std::env::remove_var("AOSI_TEST_KNOB_X");
    }
}
