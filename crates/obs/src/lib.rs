//! Lock-free observability primitives for the engine.
//!
//! Every subsystem (the AOSI transaction manager, the Cubrick engine,
//! the shard pool, the simulated cluster network) exposes its health
//! through the three primitives here:
//!
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Gauge`] — a point-in-time value (LSE, queue depth, …).
//! * [`Histogram`] — a power-of-two-bucketed latency/size
//!   distribution with count, sum, and estimated percentiles.
//!
//! All three are single `AtomicU64`s (or a fixed array of them) and
//! use `Ordering::Relaxed` throughout: recording a sample is one
//! `fetch_add` with no locks, no allocation, and no fences, so
//! instrumentation can sit directly on the transaction and scan paths
//! without perturbing them. The trade-off is that a report taken
//! while writers are active is a statistical snapshot, not an atomic
//! cut — exactly what an operational metrics dump needs.
//!
//! [`ReportBuilder`] renders metrics into the plain-text
//! `[section]` / `name = value` format used by
//! `Engine::metrics_report()`.

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets in a [`Histogram`]: bucket `i`
/// holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zero), which
/// covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value: set wins, no history.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram over power-of-two buckets.
///
/// Values are typically nanoseconds ([`Histogram::record_duration`])
/// or byte/row counts. Percentiles are estimated at bucket upper
/// bounds, so they are accurate to within 2x — plenty for spotting
/// regressions and tail behavior.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A consistent-enough copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one moment.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing that rank. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Upper bound of the highest non-empty bucket (zero when empty).
    pub fn max_estimate(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_upper_bound)
            .unwrap_or(0)
    }
}

fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Renders metrics into the engine's plain-text report format:
///
/// ```text
/// [section]
/// name = value
/// ```
#[derive(Debug, Default)]
pub struct ReportBuilder {
    out: String,
}

impl ReportBuilder {
    /// An empty report.
    pub fn new() -> Self {
        ReportBuilder::default()
    }

    /// Opens a `[name]` section; subsequent metrics belong to it.
    pub fn section(&mut self, name: &str) -> &mut Self {
        if !self.out.is_empty() {
            self.out.push('\n');
        }
        let _ = writeln!(self.out, "[{name}]");
        self
    }

    /// Writes one `name = value` line.
    pub fn metric(&mut self, name: &str, value: impl Display) -> &mut Self {
        let _ = writeln!(self.out, "{name} = {value}");
        self
    }

    /// Writes a counter's current value.
    pub fn counter(&mut self, name: &str, counter: &Counter) -> &mut Self {
        self.metric(name, counter.get())
    }

    /// Writes a gauge's current value.
    pub fn gauge(&mut self, name: &str, gauge: &Gauge) -> &mut Self {
        self.metric(name, gauge.get())
    }

    /// Writes a histogram as count/mean/p50/p99/max lines. Values are
    /// reported in the unit they were recorded in (nanoseconds for
    /// `record_duration`).
    pub fn histogram(&mut self, name: &str, histogram: &Histogram) -> &mut Self {
        let snap = histogram.snapshot();
        self.metric(&format!("{name}.count"), snap.count);
        self.metric(&format!("{name}.mean"), format!("{:.0}", snap.mean()));
        self.metric(&format!("{name}.p50"), snap.quantile(0.50));
        self.metric(&format!("{name}.p99"), snap.quantile(0.99));
        self.metric(&format!("{name}.max"), snap.max_estimate())
    }

    /// The rendered report.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max never lowers");
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[1], 1, "[1,2)");
        assert_eq!(s.buckets[2], 2, "[2,4)");
        assert_eq!(s.buckets[11], 1, "[1024,2048)");
        assert_eq!(s.mean(), 206.0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8,16), upper bound 15
        }
        h.record(1 << 20); // one outlier
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(0.99), 15);
        assert!(s.quantile(1.0) >= 1 << 20);
        assert!(s.max_estimate() >= 1 << 20);
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Histogram::new().snapshot()
        }
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(1));
        assert_eq!(h.snapshot().sum, 1000);
    }

    #[test]
    fn report_builder_formats_sections() {
        let mut rb = ReportBuilder::new();
        let c = Counter::new();
        c.add(3);
        let g = Gauge::new();
        g.set(9);
        let h = Histogram::new();
        h.record(100);
        rb.section("aosi").counter("commits", &c).gauge("lse", &g);
        rb.section("engine").histogram("query_nanos", &h);
        let text = rb.finish();
        assert!(text.starts_with("[aosi]\n"));
        assert!(text.contains("commits = 3\n"));
        assert!(text.contains("lse = 9\n"));
        assert!(text.contains("\n[engine]\n"));
        assert!(text.contains("query_nanos.count = 1\n"));
        assert!(text.contains("query_nanos.p50 = 127\n"));
    }
}
