//! Online snapshot-isolation checker for the AOSI protocol.
//!
//! The chaos harness feeds every transaction lifecycle event, read
//! observation, and clock sample into an [`SiChecker`], which
//! verifies the protocol's invariants **while the system runs** —
//! the event log never has to be persisted or post-processed, and a
//! violation is caught at the first event that exhibits it.
//!
//! The invariants, in the paper's terms (Sections III-B, IV-A, IV-C):
//!
//! 1. **Epoch assignment** — epochs are unique cluster-wide, and a
//!    node's epochs stay in its stride residue class
//!    (`epoch % n == node % n`), so two nodes can never mint the
//!    same epoch no matter how clock merges interleave.
//! 2. **Lifecycle** — a transaction commits or rolls back at most
//!    once, never both, and only after it began; its deps all
//!    precede it.
//! 3. **Snapshot visibility** — a read at snapshot epoch `E` with
//!    deps `D` observes only epochs `j <= E` with `j ∉ D`, never a
//!    rolled-back epoch, and never a pending epoch other than the
//!    reading transaction itself (pending work is hidden by `D`;
//!    anything else visible must already be committed).
//! 4. **Committed reads are stable** — the same `(key, E, D)` always
//!    yields the same result fingerprint, no matter what the network
//!    reorders in between.
//! 5. **Clock sanity** — per node, `LSE <= LCE < EC` always holds,
//!    all three advance monotonically, and EC keeps its residue.
//!
//! The checker is deliberately independent of the cluster crate: it
//! sees only the event stream, so it cannot inherit a bug from the
//! protocol implementation it is checking.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use aosi::Epoch;
use parking_lot::Mutex;

/// 1-based node identifier.
pub type NodeId = u64;

/// One observation fed to the checker.
#[derive(Clone, Debug)]
pub enum TxnEvent {
    /// A RW transaction began on `node` with its deps fully
    /// assembled (after the begin broadcast).
    Begin {
        /// Coordinator node.
        node: NodeId,
        /// Epoch assigned by the coordinator's strided clock.
        epoch: Epoch,
        /// Union of pending sets captured at begin.
        deps: BTreeSet<Epoch>,
    },
    /// The transaction committed (coordinator decision).
    Commit {
        /// Coordinator node.
        node: NodeId,
        /// The committed epoch.
        epoch: Epoch,
    },
    /// The transaction rolled back (coordinator decision).
    Rollback {
        /// Coordinator node.
        node: NodeId,
        /// The rolled-back epoch.
        epoch: Epoch,
    },
    /// A query ran: which epochs its result actually contained.
    Read {
        /// Coordinator node of the query.
        node: NodeId,
        /// Snapshot epoch the query ran at.
        snapshot_epoch: Epoch,
        /// The snapshot's deps (empty for RO snapshots).
        deps: BTreeSet<Epoch>,
        /// Epochs whose writes were visible in the result.
        observed: BTreeSet<Epoch>,
        /// The reading RW transaction, if any (sees its own writes).
        reader: Option<Epoch>,
        /// Identifies *what* was read (query/cube), for stability.
        key: String,
        /// Hash of the result, for stability comparison.
        fingerprint: u64,
    },
    /// A sample of one node's epoch clock state.
    ClockSample {
        /// Sampled node.
        node: NodeId,
        /// Epoch Clock (next epoch to assign).
        ec: Epoch,
        /// Latest Committed Epoch.
        lce: Epoch,
        /// Lowest Stable Epoch.
        lse: Epoch,
    },
}

#[derive(Debug, Default)]
struct CheckerState {
    /// epoch -> (origin node, deps)
    begun: BTreeMap<Epoch, (NodeId, BTreeSet<Epoch>)>,
    committed: BTreeSet<Epoch>,
    rolled_back: BTreeSet<Epoch>,
    /// (key, snapshot epoch, deps) -> first fingerprint seen.
    fingerprints: HashMap<(String, Epoch, Vec<Epoch>), u64>,
    /// node -> last (ec, lce, lse) sample.
    clocks: BTreeMap<NodeId, (Epoch, Epoch, Epoch)>,
    violations: Vec<String>,
    events: u64,
}

/// The online checker. Cheap to share (`&SiChecker` is `Sync`);
/// every [`SiChecker::record`] call verifies the event against all
/// state accumulated so far.
#[derive(Debug)]
pub struct SiChecker {
    num_nodes: u64,
    state: Mutex<CheckerState>,
}

impl SiChecker {
    /// A checker for a cluster of `num_nodes` strided clocks.
    pub fn new(num_nodes: u64) -> Self {
        assert!(num_nodes > 0, "cluster cannot be empty");
        SiChecker {
            num_nodes,
            state: Mutex::new(CheckerState::default()),
        }
    }

    /// Feeds one event; any invariant it breaks is recorded.
    pub fn record(&self, event: TxnEvent) {
        let mut s = self.state.lock();
        s.events += 1;
        match event {
            TxnEvent::Begin { node, epoch, deps } => {
                self.check_begin(&mut s, node, epoch, deps);
            }
            TxnEvent::Commit { node, epoch } => {
                self.check_finish(&mut s, node, epoch, false);
            }
            TxnEvent::Rollback { node, epoch } => {
                self.check_finish(&mut s, node, epoch, true);
            }
            TxnEvent::Read {
                node,
                snapshot_epoch,
                deps,
                observed,
                reader,
                key,
                fingerprint,
            } => {
                self.check_read(
                    &mut s,
                    node,
                    snapshot_epoch,
                    &deps,
                    &observed,
                    reader,
                    key,
                    fingerprint,
                );
            }
            TxnEvent::ClockSample { node, ec, lce, lse } => {
                self.check_clock(&mut s, node, ec, lce, lse);
            }
        }
    }

    fn check_begin(&self, s: &mut CheckerState, node: NodeId, epoch: Epoch, deps: BTreeSet<Epoch>) {
        if node == 0 || node > self.num_nodes {
            s.violations
                .push(format!("begin T{epoch}: unknown node {node}"));
            return;
        }
        if epoch % self.num_nodes != node % self.num_nodes {
            s.violations.push(format!(
                "begin T{epoch} on node {node}: epoch escaped the node's \
                 stride residue class (mod {})",
                self.num_nodes
            ));
        }
        if s.begun.contains_key(&epoch) {
            s.violations
                .push(format!("begin T{epoch}: epoch assigned twice"));
        }
        if s.committed.contains(&epoch) || s.rolled_back.contains(&epoch) {
            s.violations
                .push(format!("begin T{epoch}: epoch already finished"));
        }
        for &d in &deps {
            if d >= epoch {
                s.violations.push(format!(
                    "begin T{epoch}: dep T{d} does not precede the transaction"
                ));
            }
        }
        s.begun.insert(epoch, (node, deps));
    }

    fn check_finish(&self, s: &mut CheckerState, node: NodeId, epoch: Epoch, rollback: bool) {
        let what = if rollback { "rollback" } else { "commit" };
        match s.begun.get(&epoch) {
            None => {
                s.violations.push(format!("{what} T{epoch}: never began"));
            }
            Some((origin, _)) if *origin != node => {
                s.violations.push(format!(
                    "{what} T{epoch} from node {node}: transaction belongs to \
                     node {origin}"
                ));
            }
            Some(_) => {}
        }
        if s.committed.contains(&epoch) {
            s.violations
                .push(format!("{what} T{epoch}: transaction already committed"));
        }
        if s.rolled_back.contains(&epoch) {
            s.violations
                .push(format!("{what} T{epoch}: transaction already rolled back"));
        }
        if rollback {
            s.rolled_back.insert(epoch);
        } else {
            s.committed.insert(epoch);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_read(
        &self,
        s: &mut CheckerState,
        node: NodeId,
        snapshot_epoch: Epoch,
        deps: &BTreeSet<Epoch>,
        observed: &BTreeSet<Epoch>,
        reader: Option<Epoch>,
        key: String,
        fingerprint: u64,
    ) {
        for &j in observed {
            if j > snapshot_epoch {
                s.violations.push(format!(
                    "read@{snapshot_epoch} on node {node}: observed future \
                     epoch T{j}"
                ));
            }
            if deps.contains(&j) {
                s.violations.push(format!(
                    "read@{snapshot_epoch} on node {node}: observed excluded \
                     dep T{j}"
                ));
            }
            if s.rolled_back.contains(&j) {
                s.violations.push(format!(
                    "read@{snapshot_epoch} on node {node}: observed \
                     rolled-back epoch T{j}"
                ));
            }
            let is_reader_itself = reader == Some(j);
            if !is_reader_itself && !s.committed.contains(&j) {
                s.violations.push(format!(
                    "read@{snapshot_epoch} on node {node}: observed pending \
                     epoch T{j} (not hidden by deps, not the reader)"
                ));
            }
        }
        // Stability: identical (key, snapshot, deps) must always
        // produce the identical result.
        let sig = (
            key,
            snapshot_epoch,
            deps.iter().copied().collect::<Vec<_>>(),
        );
        match s.fingerprints.get(&sig) {
            None => {
                s.fingerprints.insert(sig, fingerprint);
            }
            Some(&first) if first != fingerprint => {
                s.violations.push(format!(
                    "read@{snapshot_epoch} key {:?}: committed read unstable \
                     ({first:#x} then {fingerprint:#x})",
                    sig.0
                ));
            }
            Some(_) => {}
        }
    }

    fn check_clock(&self, s: &mut CheckerState, node: NodeId, ec: Epoch, lce: Epoch, lse: Epoch) {
        if lse > lce {
            s.violations
                .push(format!("clock node {node}: LSE {lse} passed LCE {lce}"));
        }
        if lce >= ec {
            s.violations
                .push(format!("clock node {node}: LCE {lce} caught up to EC {ec}"));
        }
        if ec % self.num_nodes != node % self.num_nodes {
            s.violations.push(format!(
                "clock node {node}: EC {ec} escaped the stride residue class \
                 (mod {})",
                self.num_nodes
            ));
        }
        if let Some(&(pec, plce, plse)) = s.clocks.get(&node) {
            if ec < pec || lce < plce || lse < plse {
                s.violations.push(format!(
                    "clock node {node}: regression ({pec},{plce},{plse}) -> \
                     ({ec},{lce},{lse})"
                ));
            }
        }
        s.clocks.insert(node, (ec, lce, lse));
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// Events processed so far.
    pub fn events_checked(&self) -> u64 {
        self.state.lock().events
    }

    /// Epochs currently begun-but-unfinished, as seen by the checker.
    pub fn pending(&self) -> Vec<Epoch> {
        let s = self.state.lock();
        s.begun
            .keys()
            .filter(|e| !s.committed.contains(e) && !s.rolled_back.contains(e))
            .copied()
            .collect()
    }

    /// Panics with every violation if any invariant was broken.
    /// Chaos tests call this after settling; the panic message lists
    /// each violation so the seed can be replayed against it.
    pub fn assert_clean(&self) {
        let v = self.violations();
        assert!(
            v.is_empty(),
            "SI checker found {} violation(s):\n  {}",
            v.len(),
            v.join("\n  ")
        );
    }
}

/// Replica-divergence checker: every replica of a brick answering the
/// same query at the same snapshot must produce an identical result
/// fingerprint. Feed it one observation per `(brick, replica)` pair;
/// the first fingerprint observed for a brick becomes the reference
/// and every later replica is compared against it.
///
/// This is the read-side complement of the [`SiChecker`]: SI says a
/// committed read is stable over *time*; this says it is stable over
/// *placement* — which replica happened to answer must be
/// unobservable.
#[derive(Debug, Default)]
pub struct ReplicaDivergenceChecker {
    /// `(cube, bid)` → (first replica seen, its fingerprint).
    reference: std::collections::HashMap<(String, u64), (NodeId, String)>,
    violations: Vec<String>,
    observations: u64,
}

impl ReplicaDivergenceChecker {
    /// Fresh checker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one replica's answer for one brick. Any replica that
    /// disagrees with the first answer recorded for that brick is a
    /// violation.
    pub fn observe(&mut self, cube: &str, bid: u64, node: NodeId, fingerprint: &str) {
        self.observations += 1;
        let key = (cube.to_owned(), bid);
        match self.reference.get(&key) {
            None => {
                self.reference.insert(key, (node, fingerprint.to_owned()));
            }
            Some((ref_node, ref_fp)) => {
                if ref_fp != fingerprint {
                    self.violations.push(format!(
                        "cube {cube:?} brick {bid}: replica {node} diverges from \
                         replica {ref_node} ({fingerprint:?} != {ref_fp:?})"
                    ));
                }
            }
        }
    }

    /// Observations recorded so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// All divergences recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// `Err` with every divergence joined, `Ok` if replicas agree.
    pub fn finish(&self) -> Result<(), String> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} replica divergence(s):\n  {}",
                self.violations.len(),
                self.violations.join("\n  ")
            ))
        }
    }
}

/// Order-insensitive fingerprint helper for read stability: combine
/// each row's hash with a commutative fold so shard scheduling
/// cannot change the fingerprint of an identical result set.
pub fn fingerprint_rows<I: IntoIterator<Item = u64>>(row_hashes: I) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for h in row_hashes {
        // Commutative mix: multiplication by an odd constant after a
        // xor-fold, summed. Sensitive to multiplicity, blind to order.
        acc = acc.wrapping_add((h ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0x100_0000_01b3));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps(v: &[Epoch]) -> BTreeSet<Epoch> {
        v.iter().copied().collect()
    }

    fn begin(node: NodeId, epoch: Epoch, d: &[Epoch]) -> TxnEvent {
        TxnEvent::Begin {
            node,
            epoch,
            deps: deps(d),
        }
    }

    fn read(snapshot: Epoch, d: &[Epoch], observed: &[Epoch], fp: u64) -> TxnEvent {
        TxnEvent::Read {
            node: 1,
            snapshot_epoch: snapshot,
            deps: deps(d),
            observed: deps(observed),
            reader: None,
            key: "q".into(),
            fingerprint: fp,
        }
    }

    #[test]
    fn clean_history_stays_clean() {
        let c = SiChecker::new(3);
        c.record(begin(1, 1, &[]));
        c.record(begin(2, 5, &[1]));
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        c.record(read(1, &[], &[1], 0xAB));
        c.record(read(1, &[], &[1], 0xAB));
        c.record(TxnEvent::Commit { node: 2, epoch: 5 });
        c.record(TxnEvent::ClockSample {
            node: 1,
            ec: 7,
            lce: 5,
            lse: 1,
        });
        c.assert_clean();
        assert_eq!(c.events_checked(), 7);
        assert!(c.pending().is_empty());
    }

    #[test]
    fn stride_violation_is_caught() {
        let c = SiChecker::new(3);
        c.record(begin(2, 1, &[])); // node 2 minting a residue-1 epoch
        assert!(c.violations()[0].contains("stride"));
    }

    #[test]
    fn duplicate_epoch_is_caught() {
        let c = SiChecker::new(2);
        c.record(begin(1, 3, &[]));
        c.record(begin(1, 3, &[]));
        assert!(c.violations().iter().any(|v| v.contains("twice")));
    }

    #[test]
    fn dep_not_preceding_is_caught() {
        let c = SiChecker::new(2);
        c.record(begin(1, 3, &[3]));
        assert!(c.violations()[0].contains("precede"));
    }

    #[test]
    fn double_commit_and_commit_after_rollback_are_caught() {
        let c = SiChecker::new(2);
        c.record(begin(1, 1, &[]));
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("already committed")));

        let c = SiChecker::new(2);
        c.record(begin(1, 1, &[]));
        c.record(TxnEvent::Rollback { node: 1, epoch: 1 });
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("already rolled back")));
    }

    #[test]
    fn finish_without_begin_is_caught() {
        let c = SiChecker::new(2);
        c.record(TxnEvent::Commit { node: 1, epoch: 9 });
        assert!(c.violations()[0].contains("never began"));
    }

    #[test]
    fn read_of_pending_rolled_back_or_future_is_caught() {
        let c = SiChecker::new(2);
        c.record(begin(1, 1, &[]));
        c.record(begin(2, 2, &[1]));
        // T1 pending and NOT in this snapshot's deps -> violation.
        c.record(read(3, &[], &[1], 1));
        assert!(c.violations().iter().any(|v| v.contains("pending")));
        // Excluded dep observed -> violation.
        c.record(read(3, &[1], &[1], 2));
        assert!(c.violations().iter().any(|v| v.contains("excluded dep")));
        // Future epoch observed -> violation.
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        c.record(read(0, &[], &[1], 3));
        assert!(c.violations().iter().any(|v| v.contains("future")));
        // Rolled-back epoch observed -> violation.
        c.record(TxnEvent::Rollback { node: 2, epoch: 2 });
        c.record(read(5, &[], &[2], 4));
        assert!(c.violations().iter().any(|v| v.contains("rolled-back")));
    }

    #[test]
    fn own_writes_are_not_a_violation() {
        let c = SiChecker::new(2);
        c.record(begin(1, 1, &[]));
        c.record(TxnEvent::Read {
            node: 1,
            snapshot_epoch: 1,
            deps: BTreeSet::new(),
            observed: deps(&[1]),
            reader: Some(1),
            key: "own".into(),
            fingerprint: 7,
        });
        c.assert_clean();
    }

    #[test]
    fn unstable_committed_read_is_caught() {
        let c = SiChecker::new(2);
        c.record(begin(1, 1, &[]));
        c.record(TxnEvent::Commit { node: 1, epoch: 1 });
        c.record(read(1, &[], &[1], 0xAA));
        c.record(read(1, &[], &[1], 0xBB));
        assert!(c.violations()[0].contains("unstable"));
    }

    #[test]
    fn clock_violations_are_caught() {
        let c = SiChecker::new(2);
        c.record(TxnEvent::ClockSample {
            node: 1,
            ec: 5,
            lce: 6,
            lse: 7,
        });
        let v = c.violations();
        assert!(v.iter().any(|m| m.contains("LSE")));
        assert!(v.iter().any(|m| m.contains("LCE")));

        // Monotonicity.
        let c = SiChecker::new(2);
        c.record(TxnEvent::ClockSample {
            node: 1,
            ec: 5,
            lce: 2,
            lse: 0,
        });
        c.record(TxnEvent::ClockSample {
            node: 1,
            ec: 3,
            lce: 2,
            lse: 0,
        });
        assert!(c.violations().iter().any(|m| m.contains("regression")));

        // Residue.
        let c = SiChecker::new(2);
        c.record(TxnEvent::ClockSample {
            node: 1,
            ec: 4,
            lce: 1,
            lse: 0,
        });
        assert!(c.violations().iter().any(|m| m.contains("stride")));
    }

    #[test]
    fn fingerprint_is_order_insensitive_but_multiplicity_sensitive() {
        let a = fingerprint_rows([1u64, 2, 3]);
        let b = fingerprint_rows([3u64, 1, 2]);
        let d = fingerprint_rows([1u64, 2, 3, 3]);
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn replica_divergence_agreeing_replicas_are_clean() {
        let mut c = ReplicaDivergenceChecker::new();
        c.observe("events", 3, 1, "fp-a");
        c.observe("events", 3, 2, "fp-a");
        c.observe("events", 7, 2, "fp-b");
        c.observe("events", 7, 3, "fp-b");
        assert_eq!(c.observations(), 4);
        assert!(c.finish().is_ok());
    }

    #[test]
    fn replica_divergence_flags_the_disagreeing_replica() {
        let mut c = ReplicaDivergenceChecker::new();
        c.observe("events", 3, 1, "fp-a");
        c.observe("events", 3, 2, "fp-DIFFERENT");
        let err = c.finish().unwrap_err();
        assert!(err.contains("brick 3"), "{err}");
        assert!(err.contains("replica 2"), "{err}");
        // Same fingerprint on a different brick is not a divergence.
        let mut c = ReplicaDivergenceChecker::new();
        c.observe("events", 3, 1, "fp-a");
        c.observe("events", 4, 2, "fp-b");
        assert!(c.finish().is_ok());
    }
}
