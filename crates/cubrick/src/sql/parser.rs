//! Recursive-descent parser producing [`Statement`]s.

use columnar::Value;

use super::lexer::{tokenize, Token};
use super::SqlError;
use crate::ddl::{CubeSchema, Dimension, Metric};
use crate::query::{AggFn, Aggregation, CmpOp, DimFilter, Having, OrderBy, Query};

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE CUBE …`
    CreateCube(CubeSchema),
    /// `INSERT INTO cube VALUES …`
    Insert {
        /// Target cube.
        cube: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT … FROM cube … [AS OF epoch]`
    Select {
        /// Target cube.
        cube: String,
        /// The resolved query shape.
        query: Query,
        /// Time-travel epoch (`AS OF n`).
        as_of: Option<u64>,
    },
    /// `DELETE FROM cube [WHERE …]`
    Delete {
        /// Target cube.
        cube: String,
        /// Partition predicate.
        filters: Vec<DimFilter>,
    },
    /// `DROP CUBE name`
    DropCube(String),
    /// `PURGE`
    Purge,
    /// `SHOW MEMORY`
    ShowMemory,
    /// `SHOW CUBES`
    ShowCubes,
    /// `SHOW STATS`
    ShowStats,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, SqlError> {
        let token = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(token)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        let token = self.next()?;
        if token.is_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {token:?}")))
        }
    }

    fn expect(&mut self, expected: Token) -> Result<(), SqlError> {
        let token = self.next()?;
        if token == expected {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {expected:?}, found {token:?}"
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn int(&mut self) -> Result<i64, SqlError> {
        match self.next()? {
            Token::Int(v) => Ok(v),
            other => Err(SqlError::Parse(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn done(&self) -> bool {
        self.pos == self.tokens.len()
    }
}

/// Parses one statement.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
    };
    let head = p.next()?;
    let statement = if head.is_kw("CREATE") {
        parse_create(&mut p)?
    } else if head.is_kw("INSERT") {
        parse_insert(&mut p)?
    } else if head.is_kw("SELECT") {
        parse_select(&mut p)?
    } else if head.is_kw("DELETE") {
        parse_delete(&mut p)?
    } else if head.is_kw("DROP") {
        p.expect_kw("CUBE")?;
        Statement::DropCube(p.ident()?)
    } else if head.is_kw("PURGE") {
        Statement::Purge
    } else if head.is_kw("SHOW") {
        let what = p.ident()?;
        if what.eq_ignore_ascii_case("MEMORY") {
            Statement::ShowMemory
        } else if what.eq_ignore_ascii_case("CUBES") {
            Statement::ShowCubes
        } else if what.eq_ignore_ascii_case("STATS") {
            Statement::ShowStats
        } else {
            return Err(SqlError::Parse(format!(
                "expected MEMORY, CUBES or STATS after SHOW, found {what}"
            )));
        }
    } else if head.is_kw("UPDATE") {
        return Err(SqlError::Unsupported(
            "UPDATE: AOSI drops record updates by design; model the change \
             as a new fact, or re-run the idempotent ETL (paper, Section II-A)"
                .into(),
        ));
    } else {
        return Err(SqlError::Parse(format!("unknown statement {head:?}")));
    };
    if !p.done() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.tokens[p.pos..].to_vec()
        )));
    }
    Ok(statement)
}

/// `CREATE CUBE name (col STRING DIM(card, range), col INT METRIC, …)`
fn parse_create(p: &mut Parser) -> Result<Statement, SqlError> {
    p.expect_kw("CUBE")?;
    let name = p.ident()?;
    p.expect(Token::LParen)?;
    let mut dimensions = Vec::new();
    let mut metrics = Vec::new();
    loop {
        let col = p.ident()?;
        let col_type = p.ident()?;
        let role = p.ident()?;
        if role.eq_ignore_ascii_case("DIM") {
            p.expect(Token::LParen)?;
            let cardinality = p.int()?;
            p.expect(Token::Comma)?;
            let range = p.int()?;
            p.expect(Token::RParen)?;
            if cardinality <= 0 || range <= 0 {
                return Err(SqlError::Parse(
                    "cardinality and range size must be positive".into(),
                ));
            }
            let dim = if col_type.eq_ignore_ascii_case("STRING") {
                Dimension::string(col, cardinality as u32, range as u32)
            } else if col_type.eq_ignore_ascii_case("INT") {
                Dimension::int(col, cardinality as u32, range as u32)
            } else {
                return Err(SqlError::Parse(format!(
                    "dimension type must be STRING or INT, found {col_type}"
                )));
            };
            dimensions.push(dim);
        } else if role.eq_ignore_ascii_case("METRIC") {
            let metric = if col_type.eq_ignore_ascii_case("INT") {
                Metric::int(col)
            } else if col_type.eq_ignore_ascii_case("FLOAT") {
                Metric::float(col)
            } else {
                return Err(SqlError::Parse(format!(
                    "metric type must be INT or FLOAT, found {col_type}"
                )));
            };
            metrics.push(metric);
        } else {
            return Err(SqlError::Parse(format!(
                "expected DIM or METRIC, found {role}"
            )));
        }
        match p.next()? {
            Token::Comma => continue,
            Token::RParen => break,
            other => return Err(SqlError::Parse(format!("expected , or ), found {other:?}"))),
        }
    }
    let schema =
        CubeSchema::new(name, dimensions, metrics).map_err(|e| SqlError::Parse(e.to_string()))?;
    Ok(Statement::CreateCube(schema))
}

fn parse_value(p: &mut Parser) -> Result<Value, SqlError> {
    match p.next()? {
        Token::Str(s) => Ok(Value::Str(s)),
        Token::Int(v) => Ok(Value::I64(v)),
        Token::Float(v) => Ok(Value::F64(v)),
        other => Err(SqlError::Parse(format!(
            "expected literal, found {other:?}"
        ))),
    }
}

/// `INSERT INTO cube VALUES (…), (…)`
fn parse_insert(p: &mut Parser) -> Result<Statement, SqlError> {
    p.expect_kw("INTO")?;
    let cube = p.ident()?;
    p.expect_kw("VALUES")?;
    let mut rows = Vec::new();
    loop {
        p.expect(Token::LParen)?;
        let mut row = Vec::new();
        loop {
            row.push(parse_value(p)?);
            match p.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(SqlError::Parse(format!("expected , or ), found {other:?}"))),
            }
        }
        rows.push(row);
        if p.peek() == Some(&Token::Comma) {
            p.pos += 1;
            continue;
        }
        break;
    }
    Ok(Statement::Insert { cube, rows })
}

fn parse_where(p: &mut Parser) -> Result<Vec<DimFilter>, SqlError> {
    let mut filters = Vec::new();
    if !p.eat_kw("WHERE") {
        return Ok(filters);
    }
    loop {
        let dim = p.ident()?;
        p.expect_kw("IN")?;
        p.expect(Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(parse_value(p)?);
            match p.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(SqlError::Parse(format!("expected , or ), found {other:?}"))),
            }
        }
        filters.push(DimFilter::new(dim, values));
        if !p.eat_kw("AND") {
            break;
        }
    }
    Ok(filters)
}

/// `SELECT agg(col)[, …] FROM cube [WHERE …] [GROUP BY dim[, …]]
/// [HAVING agg(col) op literal] [ORDER BY …] [LIMIT n] [AS OF epoch]`
fn parse_select(p: &mut Parser) -> Result<Statement, SqlError> {
    let mut aggregations = Vec::new();
    loop {
        let func_name = p.ident()?;
        let func = match func_name.to_ascii_uppercase().as_str() {
            "SUM" => AggFn::Sum,
            "COUNT" => AggFn::Count,
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            "AVG" => AggFn::Avg,
            other => {
                return Err(SqlError::Parse(format!(
                    "unknown aggregation {other} (SUM/COUNT/MIN/MAX/AVG)"
                )))
            }
        };
        p.expect(Token::LParen)?;
        let metric = match p.next()? {
            Token::Star if func == AggFn::Count => String::new(),
            Token::Ident(name) => name,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected metric name (or * for COUNT), found {other:?}"
                )))
            }
        };
        p.expect(Token::RParen)?;
        aggregations.push(Aggregation { func, metric });
        if p.peek() == Some(&Token::Comma) {
            p.pos += 1;
            continue;
        }
        break;
    }
    p.expect_kw("FROM")?;
    let cube = p.ident()?;
    let filters = parse_where(p)?;
    let mut group_by = Vec::new();
    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        loop {
            group_by.push(p.ident()?);
            if p.peek() == Some(&Token::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    // HAVING agg(metric) op literal
    let mut having = None;
    if p.eat_kw("HAVING") {
        let name = p.ident()?;
        let idx = parse_agg_ref(p, &aggregations, &name, "HAVING")?;
        let op = match p.next()? {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected comparison operator in HAVING, found {other:?}"
                )))
            }
        };
        let value = match p.next()? {
            Token::Int(v) => v as f64,
            Token::Float(v) => v,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected numeric literal in HAVING, found {other:?}"
                )))
            }
        };
        having = Some(Having {
            agg: idx,
            op,
            value,
        });
    }
    // ORDER BY agg(metric) | dimension [ASC|DESC]
    let mut order_by = None;
    if p.eat_kw("ORDER") {
        p.expect_kw("BY")?;
        let name = p.ident()?;
        let target = if p.peek() == Some(&Token::LParen) {
            OrderBy::Aggregation(parse_agg_ref(p, &aggregations, &name, "ORDER BY")?)
        } else {
            OrderBy::Dimension(name)
        };
        let desc = if p.eat_kw("DESC") {
            true
        } else {
            p.eat_kw("ASC");
            false
        };
        order_by = Some((target, desc));
    }
    // LIMIT n
    let limit = if p.eat_kw("LIMIT") {
        let n = p.int()?;
        if n < 0 {
            return Err(SqlError::Parse("LIMIT must be non-negative".into()));
        }
        Some(n as usize)
    } else {
        None
    };
    let as_of = if p.eat_kw("AS") {
        p.expect_kw("OF")?;
        let epoch = p.int()?;
        if epoch < 0 {
            return Err(SqlError::Parse("AS OF epoch must be non-negative".into()));
        }
        Some(epoch as u64)
    } else {
        None
    };
    Ok(Statement::Select {
        cube,
        query: Query {
            filters,
            aggregations,
            group_by,
            having,
            order_by,
            limit,
        },
        as_of,
    })
}

/// Parses the `(metric)` tail of an aggregation reference (the
/// function name identifier is already consumed as `name`) and
/// matches it against the SELECT list, returning the aggregation's
/// index. HAVING and ORDER BY both reference aggregations this way.
fn parse_agg_ref(
    p: &mut Parser,
    aggregations: &[Aggregation],
    name: &str,
    context: &str,
) -> Result<usize, SqlError> {
    p.expect(Token::LParen)?;
    let metric = match p.next()? {
        Token::Star => String::new(),
        Token::Ident(m) => m,
        other => {
            return Err(SqlError::Parse(format!(
                "expected metric in {context}, found {other:?}"
            )))
        }
    };
    p.expect(Token::RParen)?;
    aggregations
        .iter()
        .position(|a| format!("{:?}", a.func).eq_ignore_ascii_case(name) && a.metric == metric)
        .ok_or_else(|| {
            SqlError::Parse(format!(
                "{context} {name}({metric}) must appear in the SELECT list"
            ))
        })
}

/// `DELETE FROM cube [WHERE …]`
fn parse_delete(p: &mut Parser) -> Result<Statement, SqlError> {
    p.expect_kw("FROM")?;
    let cube = p.ident()?;
    let filters = parse_where(p)?;
    Ok(Statement::Delete { cube, filters })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_ddl() {
        let stmt = parse(
            "CREATE CUBE test (region STRING DIM(4, 2), gender STRING DIM(4, 1), \
             likes INT METRIC, comments INT METRIC)",
        )
        .unwrap();
        let Statement::CreateCube(schema) = stmt else {
            panic!("not a create");
        };
        assert_eq!(schema.name, "test");
        assert_eq!(schema.dimensions.len(), 2);
        assert_eq!(schema.dimensions[0].cardinality, 4);
        assert_eq!(schema.dimensions[0].range_size, 2);
        assert!(schema.dimensions[0].is_string);
        assert_eq!(schema.metrics.len(), 2);
        assert_eq!(schema.max_bricks(), 8);
    }

    #[test]
    fn parses_insert_with_multiple_rows() {
        let stmt = parse("INSERT INTO test VALUES ('us', 'male', 12, 3), ('br', 'female', 5, 0.5)")
            .unwrap();
        let Statement::Insert { cube, rows } = stmt else {
            panic!("not an insert");
        };
        assert_eq!(cube, "test");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("us".into()));
        assert_eq!(rows[1][3], Value::F64(0.5));
    }

    #[test]
    fn parses_select_with_filters_and_group_by() {
        let stmt = parse(
            "SELECT SUM(likes), COUNT(*), AVG(comments) FROM test \
             WHERE region IN ('us', 'br') AND gender IN ('male') GROUP BY region",
        )
        .unwrap();
        let Statement::Select { cube, query, as_of } = stmt else {
            panic!("not a select");
        };
        assert_eq!(cube, "test");
        assert_eq!(query.aggregations.len(), 3);
        assert_eq!(query.aggregations[0].func, AggFn::Sum);
        assert_eq!(query.aggregations[1].func, AggFn::Count);
        assert_eq!(query.filters.len(), 2);
        assert_eq!(query.filters[0].values.len(), 2);
        assert_eq!(query.group_by, vec!["region".to_string()]);
        assert_eq!(as_of, None);
    }

    #[test]
    fn parses_time_travel_and_ddl_extras() {
        let stmt = parse("SELECT COUNT(*) FROM t AS OF 7").unwrap();
        let Statement::Select { as_of, .. } = stmt else {
            panic!("not a select");
        };
        assert_eq!(as_of, Some(7));
        assert_eq!(
            parse("DROP CUBE old_data").unwrap(),
            Statement::DropCube("old_data".into())
        );
        assert_eq!(parse("SHOW CUBES").unwrap(), Statement::ShowCubes);
        assert!(matches!(parse("SHOW TABLES"), Err(SqlError::Parse(_))));
        assert!(matches!(
            parse("SELECT COUNT(*) FROM t AS OF -1"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn parses_delete_and_purge() {
        let stmt = parse("DELETE FROM test WHERE day IN (0, 1, 2, 3)").unwrap();
        let Statement::Delete { cube, filters } = stmt else {
            panic!("not a delete");
        };
        assert_eq!(cube, "test");
        assert_eq!(filters[0].values.len(), 4);
        assert_eq!(parse("PURGE;").unwrap(), Statement::Purge);
        assert_eq!(parse("SHOW MEMORY").unwrap(), Statement::ShowMemory);
        assert_eq!(
            parse("DELETE FROM test").unwrap(),
            Statement::Delete {
                cube: "test".into(),
                filters: vec![]
            }
        );
    }

    #[test]
    fn update_is_rejected_with_rationale() {
        let err = parse("UPDATE test SET likes = 5").unwrap_err();
        match err {
            SqlError::Unsupported(msg) => {
                assert!(msg.contains("new fact"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(matches!(parse("SELECT"), Err(SqlError::Parse(_))));
        assert!(matches!(
            parse("SELECT MEDIAN(x) FROM t"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse("CREATE CUBE t (a BLOB DIM(4, 2))"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse("CREATE CUBE t (a INT DIM(0, 1))"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT SUM(x) FROM t extra"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(parse("FROB"), Err(SqlError::Parse(_))));
        assert!(matches!(
            parse("SELECT COUNT(*) FROM t GROUP region"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn parses_having_between_group_by_and_order_by() {
        let stmt = parse(
            "SELECT SUM(likes), COUNT(*) FROM test GROUP BY region \
             HAVING SUM(likes) >= 2.5 ORDER BY COUNT(*) DESC LIMIT 3",
        )
        .unwrap();
        let Statement::Select { query, .. } = stmt else {
            panic!("not a select");
        };
        let having = query.having.expect("having parsed");
        assert_eq!(having.agg, 0);
        assert_eq!(having.op, crate::query::CmpOp::Ge);
        assert_eq!(having.value, 2.5);
        assert!(query.order_by.is_some());
        assert_eq!(query.limit, Some(3));
        // HAVING COUNT(*) matches the star aggregation; negative
        // literals work.
        let stmt = parse("SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) < -2").unwrap();
        let Statement::Select { query, .. } = stmt else {
            panic!("not a select");
        };
        assert_eq!(query.having.unwrap().value, -2.0);
    }

    #[test]
    fn count_star_requires_count() {
        assert!(matches!(
            parse("SELECT SUM(*) FROM t"),
            Err(SqlError::Parse(_))
        ));
    }
}
