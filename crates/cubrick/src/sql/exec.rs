//! Statement execution against an [`Engine`].

use super::parser::Statement;
use super::SqlError;
use crate::engine::{Engine, IsolationMode};
use crate::query::{Query, ScanStats};
use columnar::Value;

/// The result of executing one statement.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlOutput {
    /// DDL/DML acknowledgment with a human-readable summary.
    Ok(String),
    /// A result table: header plus rows of rendered cells.
    Table {
        /// Column headers.
        columns: Vec<String>,
        /// Rendered rows.
        rows: Vec<Vec<String>>,
    },
}

impl SqlOutput {
    /// Renders the output for a console session.
    pub fn render(&self) -> String {
        match self {
            SqlOutput::Ok(msg) => msg.clone(),
            SqlOutput::Table { columns, rows } => {
                let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
                for row in rows {
                    for (w, cell) in widths.iter_mut().zip(row) {
                        *w = (*w).max(cell.len());
                    }
                }
                let mut out = String::new();
                let render_row = |cells: &[String], widths: &[usize]| -> String {
                    cells
                        .iter()
                        .zip(widths)
                        .map(|(c, w)| format!("{c:<w$}"))
                        .collect::<Vec<_>>()
                        .join("  ")
                };
                out.push_str(&render_row(columns, &widths));
                out.push('\n');
                for row in rows {
                    out.push_str(&render_row(row, &widths));
                    out.push('\n');
                }
                out
            }
        }
    }
}

/// Renders one aggregate cell for the console table: NaN (SQL NULL)
/// renders as `NULL`, integral values without a fraction, everything
/// else with four decimals.
pub fn render_float(v: f64) -> String {
    if v.is_nan() {
        "NULL".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// A typed SELECT result: the wire-protocol layer renders these rows
/// itself (JSON `null` for NaN aggregates, numbers for numbers),
/// while the console path stringifies them via [`render_float`].
#[derive(Clone, Debug, PartialEq)]
pub struct SelectOutcome {
    /// Column headers: the group-by dimensions followed by the
    /// aggregations in request order (or `rows` for an
    /// aggregation-free SELECT).
    pub columns: Vec<String>,
    /// One row per group: decoded group-key values plus aggregate
    /// values. NaN aggregates are SQL NULL (empty-group
    /// `Min`/`Max`/`Avg`).
    pub rows: Vec<(Vec<Value>, Vec<f64>)>,
    /// Scan counters from the underlying query.
    pub stats: ScanStats,
}

/// Executes one SELECT and returns typed rows.
///
/// `as_of` pins the read to an explicit epoch via the guarded
/// [`Engine::query_as_of`] window check; `None` reads the freshest
/// committed snapshot. Result-shape conventions shared by every
/// result surface:
///
/// * an aggregation-free SELECT yields one `rows` column holding the
///   visible row count;
/// * an ungrouped aggregation over an empty set yields one row —
///   COUNT is `0.0`, every other aggregate is NaN (SQL NULL).
pub fn execute_select(
    engine: &Engine,
    cube: &str,
    query: &Query,
    as_of: Option<u64>,
) -> Result<SelectOutcome, SqlError> {
    let result = match as_of {
        Some(epoch) => engine.query_as_of(cube, query, epoch)?,
        None => engine.query(cube, query, IsolationMode::Snapshot)?,
    };
    Ok(shape_outcome(query, result))
}

/// [`execute_select`] pinned to `epoch`, with every coordinator-side
/// refinement shaped and forwarded through `on_partial` before the
/// complete outcome is returned. The server's progressive `/query`
/// mode streams the refinements as NDJSON lines.
pub fn execute_select_with_progress(
    engine: &Engine,
    cube: &str,
    query: &Query,
    epoch: u64,
    mut on_partial: impl FnMut(SelectOutcome),
) -> Result<SelectOutcome, SqlError> {
    let result = engine.query_as_of_with_progress(cube, query, epoch, |partial| {
        on_partial(shape_outcome(query, partial));
    })?;
    Ok(shape_outcome(query, result))
}

/// Shapes an engine result into the shared SELECT surface: column
/// headers, the aggregation-free row count, and the one-NULL-row
/// convention for ungrouped aggregation over an empty set.
fn shape_outcome(query: &Query, result: crate::query::QueryResult) -> SelectOutcome {
    let mut columns = Vec::new();
    for group in &query.group_by {
        columns.push(group.clone());
    }
    for agg in &query.aggregations {
        let metric = if agg.metric.is_empty() {
            "*"
        } else {
            &agg.metric
        };
        columns.push(format!("{:?}({})", agg.func, metric).to_lowercase());
    }
    let mut rows: Vec<(Vec<Value>, Vec<f64>)>;
    if query.aggregations.is_empty() {
        // An aggregation-free SELECT still reports the visible row
        // count (useful for the single-column dataset).
        columns.push("rows".into());
        rows = vec![(Vec::new(), vec![result.stats.rows_visible as f64])];
    } else {
        rows = result.rows;
        // SQL semantics for an ungrouped aggregation over an empty
        // set: one row — COUNT is 0, the rest are NULL.
        if rows.is_empty() && query.group_by.is_empty() {
            rows.push((
                Vec::new(),
                query
                    .aggregations
                    .iter()
                    .map(|a| match a.func {
                        crate::query::AggFn::Count => 0.0,
                        _ => f64::NAN,
                    })
                    .collect(),
            ));
        }
    }
    SelectOutcome {
        columns,
        rows,
        stats: result.stats,
    }
}

/// Parses and executes one statement against `engine`.
///
/// Queries run under snapshot isolation (the system's default mode);
/// inserts and deletes are implicit transactions, exactly like the
/// engine's native API.
pub fn execute(engine: &Engine, sql: &str) -> Result<SqlOutput, SqlError> {
    execute_statement(engine, super::parser::parse(sql)?)
}

/// Executes one already-parsed statement against `engine`.
///
/// Split from [`execute`] so callers that inspect or rewrite the
/// statement first (the server overlays session-pinned `AS OF`
/// epochs) don't parse twice.
pub fn execute_statement(engine: &Engine, statement: Statement) -> Result<SqlOutput, SqlError> {
    match statement {
        Statement::CreateCube(schema) => {
            let name = schema.name.clone();
            let bricks = schema.max_bricks();
            engine.create_cube(schema)?;
            Ok(SqlOutput::Ok(format!(
                "created cube {name} (at most {bricks} bricks)"
            )))
        }
        Statement::Insert { cube, rows } => {
            let outcome = engine.load(&cube, &rows, 0)?;
            Ok(SqlOutput::Ok(format!(
                "inserted {} row(s) as transaction T{}",
                outcome.accepted, outcome.epoch
            )))
        }
        Statement::Select { cube, query, as_of } => {
            let outcome = execute_select(engine, &cube, &query, as_of)?;
            let rows_out = outcome
                .rows
                .iter()
                .map(|(keys, values)| {
                    let mut row: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                    row.extend(values.iter().map(|&v| render_float(v)));
                    row
                })
                .collect();
            Ok(SqlOutput::Table {
                columns: outcome.columns,
                rows: rows_out,
            })
        }
        Statement::Delete { cube, filters } => {
            let (epoch, marked) = engine.delete_where(&cube, &filters)?;
            Ok(SqlOutput::Ok(format!(
                "marked {marked} partition(s) deleted as transaction T{epoch} \
                 (rows reclaimed on the next purge)"
            )))
        }
        Statement::DropCube(name) => {
            engine.drop_cube(&name)?;
            Ok(SqlOutput::Ok(format!("dropped cube {name}")))
        }
        Statement::Purge => {
            let stats = engine.advance_lse_and_purge();
            Ok(SqlOutput::Ok(format!(
                "purged {} row(s), reclaimed {} epochs entr(ies) across {} brick(s) at LSE {}",
                stats.rows_purged,
                stats.entries_reclaimed,
                stats.bricks_changed,
                engine.manager().lse()
            )))
        }
        Statement::ShowCubes => {
            let rows = engine
                .cube_names()
                .into_iter()
                .map(|name| {
                    let bricks = engine
                        .cube(&name)
                        .map(|c| c.schema().max_bricks().to_string())
                        .unwrap_or_default();
                    vec![name, bricks]
                })
                .collect();
            Ok(SqlOutput::Table {
                columns: vec!["cube".into(), "max_bricks".into()],
                rows,
            })
        }
        Statement::ShowStats => {
            let ops = engine.op_stats();
            let txns = engine.manager().stats();
            Ok(SqlOutput::Table {
                columns: vec!["counter".into(), "value".into()],
                rows: vec![
                    vec!["loads".into(), ops.loads.to_string()],
                    vec!["rows_loaded".into(), ops.rows_loaded.to_string()],
                    vec!["queries".into(), ops.queries.to_string()],
                    vec!["deletes".into(), ops.deletes.to_string()],
                    vec!["purges".into(), ops.purges.to_string()],
                    vec!["rollbacks".into(), ops.rollbacks.to_string()],
                    vec!["txns_committed".into(), txns.committed.to_string()],
                    vec!["txns_pending".into(), txns.pending.to_string()],
                    vec![
                        "ec".into(),
                        engine.manager().clock().current_ec().to_string(),
                    ],
                    vec!["lce".into(), engine.manager().lce().to_string()],
                    vec!["lse".into(), engine.manager().lse().to_string()],
                ],
            })
        }
        Statement::ShowMemory => {
            let m = engine.memory();
            Ok(SqlOutput::Table {
                columns: vec!["metric".into(), "value".into()],
                rows: vec![
                    vec!["rows".into(), m.rows.to_string()],
                    vec!["data_bytes".into(), m.data_bytes.to_string()],
                    vec!["aosi_bytes".into(), m.aosi_bytes.to_string()],
                    vec!["dictionary_bytes".into(), m.dictionary_bytes.to_string()],
                    vec!["bricks".into(), m.bricks.to_string()],
                    vec![
                        "mvcc_baseline_bytes".into(),
                        m.mvcc_baseline_bytes.to_string(),
                    ],
                ],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_data() -> Engine {
        let engine = Engine::new(2);
        execute(
            &engine,
            "CREATE CUBE test (region STRING DIM(4, 2), gender STRING DIM(4, 1), \
             likes INT METRIC, comments INT METRIC)",
        )
        .unwrap();
        execute(
            &engine,
            "INSERT INTO test VALUES ('us', 'male', 12, 3), ('us', 'female', 7, 1), \
             ('br', 'male', 5, 0), ('mx', 'female', 9, 4)",
        )
        .unwrap();
        engine
    }

    #[test]
    fn full_session_roundtrip() {
        let engine = engine_with_data();
        let out = execute(
            &engine,
            "SELECT SUM(likes), COUNT(*) FROM test GROUP BY region",
        )
        .unwrap();
        let SqlOutput::Table { columns, rows } = out else {
            panic!("expected table");
        };
        assert_eq!(columns, vec!["region", "sum(likes)", "count(*)"]);
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&vec!["us".into(), "19".into(), "2".into()]));
        assert!(rows.contains(&vec!["br".into(), "5".into(), "1".into()]));
    }

    #[test]
    fn multi_dimension_group_by_via_sql() {
        let engine = engine_with_data();
        let out = execute(&engine, "SELECT COUNT(*) FROM test GROUP BY region, gender").unwrap();
        let SqlOutput::Table { columns, rows } = out else {
            panic!("expected table");
        };
        assert_eq!(columns, vec!["region", "gender", "count(*)"]);
        assert_eq!(rows.len(), 4, "four distinct (region, gender) pairs");
        assert!(rows.iter().all(|r| r.len() == 3 && r[2] == "1"));
    }

    #[test]
    fn order_by_and_limit_via_sql() {
        let engine = engine_with_data();
        let out = execute(
            &engine,
            "SELECT SUM(likes) FROM test GROUP BY region              ORDER BY SUM(likes) DESC LIMIT 2",
        )
        .unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!("expected table");
        };
        assert_eq!(
            rows,
            vec![
                vec!["us".to_string(), "19".to_string()],
                vec!["mx".to_string(), "9".to_string()],
            ]
        );
        // Ordering by a dimension, ascending by default.
        let out = execute(
            &engine,
            "SELECT COUNT(*) FROM test GROUP BY region ORDER BY region",
        )
        .unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!()
        };
        let regions: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(regions, vec!["br", "mx", "us"]);
        // ORDER BY of an aggregation not in the SELECT list fails.
        assert!(matches!(
            execute(
                &engine,
                "SELECT SUM(likes) FROM test GROUP BY region ORDER BY MAX(likes)"
            ),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn having_filters_groups_via_sql() {
        let engine = engine_with_data();
        // Sums by region: us=19, br=5, mx=9. HAVING > 8 keeps us, mx.
        let out = execute(
            &engine,
            "SELECT SUM(likes) FROM test GROUP BY region HAVING SUM(likes) > 8 \
             ORDER BY SUM(likes) DESC",
        )
        .unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!("expected table");
        };
        assert_eq!(
            rows,
            vec![
                vec!["us".to_string(), "19".to_string()],
                vec!["mx".to_string(), "9".to_string()],
            ]
        );
        // Every operator spelling parses and executes.
        for (clause, expected_regions) in [
            ("HAVING COUNT(*) = 1", 2usize),
            ("HAVING COUNT(*) != 1", 1),
            ("HAVING COUNT(*) <> 1", 1),
            ("HAVING COUNT(*) >= 1", 3),
            ("HAVING COUNT(*) <= 1", 2),
            ("HAVING COUNT(*) < 1", 0),
        ] {
            let out = execute(
                &engine,
                &format!("SELECT COUNT(*) FROM test GROUP BY region {clause}"),
            )
            .unwrap();
            let SqlOutput::Table { rows, .. } = out else {
                panic!("expected table");
            };
            assert_eq!(rows.len(), expected_regions, "{clause}");
        }
        // HAVING referencing an aggregation outside the SELECT list
        // is a parse error, exactly like ORDER BY.
        assert!(matches!(
            execute(
                &engine,
                "SELECT SUM(likes) FROM test GROUP BY region HAVING MAX(likes) > 0"
            ),
            Err(SqlError::Parse(_))
        ));
        // Malformed HAVING clauses fail cleanly.
        assert!(matches!(
            execute(
                &engine,
                "SELECT SUM(likes) FROM test GROUP BY region HAVING SUM(likes) 5"
            ),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            execute(
                &engine,
                "SELECT SUM(likes) FROM test GROUP BY region HAVING SUM(likes) > 'x'"
            ),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn where_clause_filters() {
        let engine = engine_with_data();
        let out = execute(
            &engine,
            "SELECT SUM(likes) FROM test WHERE region IN ('us') AND gender IN ('male')",
        )
        .unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!("expected table");
        };
        assert_eq!(rows, vec![vec!["12".to_string()]]);
    }

    #[test]
    fn delete_then_purge_via_sql() {
        let engine = engine_with_data();
        let out = execute(&engine, "DELETE FROM test WHERE gender IN ('male')").unwrap();
        assert!(matches!(out, SqlOutput::Ok(msg) if msg.contains("partition")));
        let out = execute(&engine, "SELECT COUNT(*) FROM test").unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!("expected table");
        };
        assert_eq!(rows, vec![vec!["2".to_string()]], "male partitions gone");
        let out = execute(&engine, "PURGE").unwrap();
        assert!(matches!(out, SqlOutput::Ok(msg) if msg.contains("purged 2 row(s)")));
    }

    #[test]
    fn show_stats_reports_counters() {
        let engine = engine_with_data();
        execute(&engine, "SELECT COUNT(*) FROM test").unwrap();
        execute(&engine, "DELETE FROM test").unwrap();
        execute(&engine, "PURGE").unwrap();
        let out = execute(&engine, "SHOW STATS").unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!()
        };
        let get = |name: &str| {
            rows.iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(get("loads"), "1");
        assert_eq!(get("rows_loaded"), "4");
        assert_eq!(get("queries"), "1");
        assert_eq!(get("deletes"), "1");
        assert_eq!(get("purges"), "1");
        assert_eq!(get("lce"), "2");
    }

    #[test]
    fn show_memory_reports_accounting() {
        let engine = engine_with_data();
        let out = execute(&engine, "SHOW MEMORY").unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!("expected table");
        };
        let rows_row = rows.iter().find(|r| r[0] == "rows").unwrap();
        assert_eq!(rows_row[1], "4");
    }

    #[test]
    fn errors_surface_cleanly() {
        let engine = Engine::new(1);
        assert!(matches!(
            execute(&engine, "SELECT SUM(x) FROM missing"),
            Err(SqlError::Engine(_))
        ));
        assert!(matches!(
            execute(&engine, "UPDATE t SET x = 1"),
            Err(SqlError::Unsupported(_))
        ));
        engine
            .create_cube(
                crate::ddl::CubeSchema::new(
                    "t",
                    vec![crate::ddl::Dimension::int("k", 4, 1)],
                    vec![],
                )
                .unwrap(),
            )
            .unwrap();
        assert!(matches!(
            execute(&engine, "SELECT SUM(nope) FROM t"),
            Err(SqlError::Engine(_))
        ));
    }

    #[test]
    fn select_without_aggregations_counts_rows() {
        let engine = Engine::new(1);
        execute(&engine, "CREATE CUBE sc (k INT DIM(16, 4))").unwrap();
        execute(&engine, "INSERT INTO sc VALUES (1), (2), (9)").unwrap();
        // Grammar needs at least one aggregation in SELECT; use the
        // engine path for the bare count instead.
        let out = execute(&engine, "SELECT COUNT(*) FROM sc").unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows, vec![vec!["3".to_string()]]);
    }

    #[test]
    fn drop_show_and_time_travel() {
        let engine = engine_with_data();
        // SHOW CUBES lists the cube.
        let out = execute(&engine, "SHOW CUBES").unwrap();
        let SqlOutput::Table { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows, vec![vec!["test".to_string(), "8".to_string()]]);

        // Time travel: epoch 1 (first insert) vs after a delete.
        execute(&engine, "DELETE FROM test").unwrap();
        let now = execute(&engine, "SELECT COUNT(*) FROM test").unwrap();
        let SqlOutput::Table { rows, .. } = now else {
            panic!()
        };
        assert_eq!(rows, vec![vec!["0".to_string()]]);
        let then = execute(&engine, "SELECT COUNT(*) FROM test AS OF 1").unwrap();
        let SqlOutput::Table { rows, .. } = then else {
            panic!()
        };
        assert_eq!(rows, vec![vec!["4".to_string()]]);
        // Out-of-window epochs error cleanly.
        assert!(matches!(
            execute(&engine, "SELECT COUNT(*) FROM test AS OF 99"),
            Err(SqlError::Engine(_))
        ));

        // DROP CUBE removes everything.
        execute(&engine, "DROP CUBE test").unwrap();
        assert!(matches!(
            execute(&engine, "SELECT COUNT(*) FROM test"),
            Err(SqlError::Engine(_))
        ));
        assert!(matches!(
            execute(&engine, "DROP CUBE test"),
            Err(SqlError::Engine(_))
        ));
    }

    #[test]
    fn render_formats_tables() {
        let out = SqlOutput::Table {
            columns: vec!["region".into(), "sum(likes)".into()],
            rows: vec![
                vec!["us".into(), "19".into()],
                vec!["brazil".into(), "5".into()],
            ],
        };
        let rendered = out.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("region"));
        assert!(lines[2].starts_with("brazil"));
    }

    #[test]
    fn float_rendering() {
        assert_eq!(render_float(3.0), "3");
        assert_eq!(render_float(2.5), "2.5000");
        assert_eq!(render_float(f64::NAN), "NULL");
    }
}
