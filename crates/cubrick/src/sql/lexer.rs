//! Tokenizer for the SQL subset.

use super::SqlError;

/// One token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=` (recognized so that rejected statements like UPDATE lex
    /// cleanly and fail with the right explanation).
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// The identifier payload, if this token is one.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Case-insensitive keyword match.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.as_ident().is_some_and(|s| s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' | ';' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token::Le);
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token::Ne);
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token::Lt);
                        i += 1;
                    }
                };
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::Lex("dangling '!' (did you mean !=?)".into()));
                }
            }
            '\'' => {
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Lex("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            out.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            out.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(out));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !bytes.get(i).is_some_and(|b| b.is_ascii_digit()) {
                        return Err(SqlError::Lex("dangling '-'".into()));
                    }
                }
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| SqlError::Lex(format!("bad float {text:?}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| SqlError::Lex(format!("bad integer {text:?}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_mixed_statement() {
        let tokens =
            tokenize("SELECT SUM(likes), COUNT(*) FROM test WHERE region IN ('us', 'it''s')")
                .unwrap();
        assert_eq!(tokens[0], Token::Ident("SELECT".into()));
        assert!(tokens.contains(&Token::Star));
        assert!(tokens.contains(&Token::Str("us".into())));
        assert!(tokens.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn numbers_and_negatives() {
        let tokens = tokenize("(4, 2, -7, 0.5, -1.25)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LParen,
                Token::Int(4),
                Token::Comma,
                Token::Int(2),
                Token::Comma,
                Token::Int(-7),
                Token::Comma,
                Token::Float(0.5),
                Token::Comma,
                Token::Float(-1.25),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let tokens = tokenize("select From").unwrap();
        assert!(tokens[0].is_kw("SELECT"));
        assert!(tokens[1].is_kw("from"));
        assert!(!tokens[1].is_kw("select"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex(_))));
        assert!(matches!(tokenize("a @ b"), Err(SqlError::Lex(_))));
        assert!(matches!(tokenize("- x"), Err(SqlError::Lex(_))));
        assert!(matches!(tokenize("a ! b"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn comparison_operators_tokenize_greedily() {
        let tokens = tokenize("a < b <= c > d >= e <> f != g = h").unwrap();
        let ops: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Lt,
                &Token::Le,
                &Token::Gt,
                &Token::Ge,
                &Token::Ne,
                &Token::Ne,
                &Token::Eq,
            ]
        );
    }

    #[test]
    fn semicolons_and_whitespace_are_skipped() {
        let tokens = tokenize("  PURGE ;\n").unwrap();
        assert_eq!(tokens, vec![Token::Ident("PURGE".into())]);
    }
}
