//! A small SQL front-end over the engine.
//!
//! Cubrick is driven by DDL like the paper's Section V-A example:
//!
//! ```sql
//! CREATE CUBE test (region STRING DIM(4, 2), gender STRING DIM(4, 1),
//!                   likes INT METRIC, comments INT METRIC)
//! ```
//!
//! This module provides the statement surface a data-mart user needs
//! and nothing more — the analytic subset the engine actually
//! executes:
//!
//! * `CREATE CUBE name (col STRING|INT DIM(cardinality, range), …,
//!   col INT|FLOAT METRIC, …)`
//! * `INSERT INTO cube VALUES (…), (…), …` — one implicit
//!   transaction per statement.
//! * `SELECT agg(metric) [, …] FROM cube [WHERE dim IN (…) [AND …]]
//!   [GROUP BY dim]` — aggregations: `SUM`, `COUNT`, `MIN`, `MAX`,
//!   `AVG`.
//! * `DELETE FROM cube [WHERE dim IN (…)]` — partition-level, per the
//!   protocol.
//! * `PURGE` — advance LSE to LCE and garbage-collect.
//! * `SHOW MEMORY` — the Figure 6/7 accounting.
//!
//! There is intentionally no UPDATE and no single-row DELETE: the
//! parser rejects them with an explanation, which is the paper's
//! Section II argument surfaced at the API boundary.
//!
//! # Example
//!
//! ```
//! use cubrick::Engine;
//! use cubrick::sql::execute;
//!
//! let engine = Engine::new(1);
//! execute(&engine, "CREATE CUBE t (k INT DIM(8, 2), v INT METRIC)")?;
//! execute(&engine, "INSERT INTO t VALUES (1, 10), (2, 20)")?;
//! let out = execute(&engine, "SELECT SUM(v) FROM t")?;
//! assert!(out.render().contains("30"));
//! # Ok::<(), cubrick::sql::SqlError>(())
//! ```

mod exec;
mod lexer;
mod parser;

pub use exec::{
    execute, execute_select, execute_select_with_progress, execute_statement, render_float,
    SelectOutcome, SqlOutput,
};
pub use parser::{parse, Statement};

/// Errors from the SQL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure.
    Lex(String),
    /// Grammar failure.
    Parse(String),
    /// The statement is valid SQL but unsupported by design; the
    /// message explains the AOSI rationale.
    Unsupported(String),
    /// Execution failure from the engine.
    Engine(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(msg) => write!(f, "lex error: {msg}"),
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            SqlError::Engine(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<crate::error::CubrickError> for SqlError {
    fn from(e: crate::error::CubrickError) -> Self {
        SqlError::Engine(e.to_string())
    }
}
