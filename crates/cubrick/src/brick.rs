//! Bricks: sparse columnar partitions (Section V-A, Figure 4(c)).
//!
//! "Within each brick, data is stored column-wise using one vector
//! per column and implicit record ids." Dimension coordinates are
//! `u32` (already dictionary-encoded for string dimensions); metrics
//! are typed columns. The only concurrency-control state is the AOSI
//! epochs vector — no per-record timestamps anywhere.

use aosi::{purge, rollback, Epoch, EpochsVector, Snapshot};
use columnar::{BessVector, Bitmap, Column, ColumnType};

use crate::ddl::{CubeSchema, MetricType};
use crate::ingest::ParsedRecord;

/// How a brick stores its dimension coordinates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DimStorage {
    /// One `Vec<u32>` per dimension (simple, fastest access).
    #[default]
    Plain,
    /// All dimensions bit-packed into one bess vector (the paper's
    /// footnote-3 layout; far smaller for low-cardinality schemas).
    Bess,
}

/// Memory breakdown of one brick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrickMemory {
    /// Bytes of dimension + metric payload.
    pub data_bytes: usize,
    /// Bytes of AOSI metadata (the epochs vector).
    pub aosi_bytes: usize,
    /// Rows stored.
    pub rows: u64,
}

#[derive(Clone, Debug)]
enum DimStore {
    Plain(Vec<Vec<u32>>),
    Bess(BessVector),
}

/// One materialized partition.
#[derive(Clone, Debug)]
pub struct Brick {
    dims: DimStore,
    metrics: Vec<Column>,
    epochs: EpochsVector,
}

impl Brick {
    /// Materializes an empty brick for `schema` with plain dimension
    /// storage.
    pub fn new(schema: &CubeSchema) -> Self {
        Brick::with_storage(schema, DimStorage::Plain)
    }

    /// Materializes an empty brick with the chosen dimension layout.
    pub fn with_storage(schema: &CubeSchema, storage: DimStorage) -> Self {
        let dims = match storage {
            DimStorage::Plain => DimStore::Plain(vec![Vec::new(); schema.dimensions.len()]),
            DimStorage::Bess => {
                let cards: Vec<u32> = schema.dimensions.iter().map(|d| d.cardinality).collect();
                DimStore::Bess(BessVector::new(&cards))
            }
        };
        Brick {
            dims,
            metrics: schema
                .metrics
                .iter()
                .map(|m| {
                    Column::new(match m.metric_type {
                        MetricType::I64 => ColumnType::I64,
                        MetricType::F64 => ColumnType::F64,
                    })
                })
                .collect(),
            epochs: EpochsVector::new(),
        }
    }

    /// The dimension layout this brick uses.
    pub fn storage_kind(&self) -> DimStorage {
        match &self.dims {
            DimStore::Plain(_) => DimStorage::Plain,
            DimStore::Bess(_) => DimStorage::Bess,
        }
    }

    /// Materializes dimension `dim` as an owned coordinate column,
    /// for either layout — what the tier spill codec writes. Cold
    /// path: scans use [`Brick::dim_slice`] / [`Brick::gather_dim`].
    pub fn dim_coords(&self, dim: usize) -> Vec<u32> {
        match &self.dims {
            DimStore::Plain(dims) => dims[dim].clone(),
            DimStore::Bess(bess) => {
                let rows: Vec<u32> = (0..self.row_count() as u32).collect();
                let mut out = Vec::new();
                bess.gather_dim(dim, &rows, &mut out);
                out
            }
        }
    }

    /// Reassembles a brick from a spilled snapshot: per-dimension
    /// coordinate columns, typed metric columns, and the epochs
    /// vector carrying its **original generation** (see
    /// [`EpochsVector::from_parts_with_generation`]) so cache slots
    /// keyed before the eviction stay valid. The result is
    /// bit-identical to the spilled brick under every scan path: a
    /// plain layout adopts the columns directly, a bess layout
    /// repacks the same coordinates deterministically.
    ///
    /// # Panics
    /// Panics when the parts disagree with each other or with
    /// `schema` — a snapshot that decoded to mismatched lengths must
    /// never be installed.
    pub fn restore(
        schema: &CubeSchema,
        storage: DimStorage,
        dim_columns: Vec<Vec<u32>>,
        metrics: Vec<Column>,
        epochs: EpochsVector,
    ) -> Self {
        let rows = epochs.row_count();
        assert_eq!(
            dim_columns.len(),
            schema.dimensions.len(),
            "dimension count mismatch"
        );
        assert_eq!(metrics.len(), schema.metrics.len(), "metric count mismatch");
        for d in &dim_columns {
            assert_eq!(d.len() as u64, rows, "dimension column length mismatch");
        }
        for m in &metrics {
            assert_eq!(m.len() as u64, rows, "metric column length mismatch");
        }
        let dims = match storage {
            DimStorage::Plain => DimStore::Plain(dim_columns),
            DimStorage::Bess => {
                let cards: Vec<u32> = schema.dimensions.iter().map(|d| d.cardinality).collect();
                let mut bess = BessVector::new(&cards);
                let mut coords = vec![0u32; dim_columns.len()];
                for row in 0..rows as usize {
                    for (d, col) in dim_columns.iter().enumerate() {
                        coords[d] = col[row];
                    }
                    bess.push(&coords);
                }
                DimStore::Bess(bess)
            }
        };
        Brick {
            dims,
            metrics,
            epochs,
        }
    }

    /// Appends parsed records on behalf of transaction `epoch`.
    ///
    /// Applied by the owning shard thread only, so the append is
    /// lock-free by construction (Section V-B).
    pub fn append(&mut self, epoch: Epoch, records: &[ParsedRecord]) {
        if records.is_empty() {
            return;
        }
        let range = self.epochs.append(epoch, records.len() as u64);
        debug_assert_eq!(range.end - range.start, records.len() as u64);
        for rec in records {
            debug_assert_eq!(rec.coords.len(), self.num_dims());
            match &mut self.dims {
                DimStore::Plain(dims) => {
                    for (dim, &coord) in dims.iter_mut().zip(&rec.coords) {
                        dim.push(coord);
                    }
                }
                DimStore::Bess(bess) => bess.push(&rec.coords),
            }
            for (col, value) in self.metrics.iter_mut().zip(&rec.metrics) {
                let ok = col.push_value(value);
                debug_assert!(ok, "metric type mismatch survived parsing");
            }
        }
    }

    /// Marks the whole brick deleted by transaction `epoch`.
    pub fn mark_delete(&mut self, epoch: Epoch) {
        self.epochs.mark_delete(epoch);
    }

    /// Rows physically stored (including not-yet-visible and
    /// logically deleted ones).
    pub fn row_count(&self) -> u64 {
        self.epochs.row_count()
    }

    /// The AOSI visibility bitmap for `snapshot`.
    pub fn visibility(&self, snapshot: &Snapshot) -> Bitmap {
        self.epochs.visible_bitmap(snapshot)
    }

    /// A read-uncommitted "bitmap": every stored row.
    pub fn all_rows(&self) -> Bitmap {
        Bitmap::new_set(self.row_count() as usize)
    }

    /// Number of dimension columns.
    pub fn num_dims(&self) -> usize {
        match &self.dims {
            DimStore::Plain(dims) => dims.len(),
            DimStore::Bess(bess) => bess.num_dims(),
        }
    }

    /// Number of metric columns.
    pub fn num_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Coordinate of dimension `dim` at `row` (works for either
    /// layout).
    #[inline]
    pub fn dim_value(&self, dim: usize, row: usize) -> u32 {
        match &self.dims {
            DimStore::Plain(dims) => dims[dim][row],
            DimStore::Bess(bess) => bess.get(row, dim),
        }
    }

    /// Dimension coordinates of column `dim` as a slice.
    ///
    /// # Panics
    /// Panics for bess-packed bricks, which have no per-dimension
    /// slices — use [`Brick::dim_value`].
    pub fn dim_column(&self, dim: usize) -> &[u32] {
        match &self.dims {
            DimStore::Plain(dims) => &dims[dim],
            DimStore::Bess(_) => {
                panic!("dim_column on a bess-packed brick; use dim_value")
            }
        }
    }

    /// Dimension coordinates of column `dim` as a contiguous slice,
    /// when the layout has one: the non-panicking form of
    /// [`Brick::dim_column`]. `None` for bess-packed bricks — use
    /// [`Brick::gather_dim`] there.
    pub fn dim_slice(&self, dim: usize) -> Option<&[u32]> {
        match &self.dims {
            DimStore::Plain(dims) => Some(&dims[dim]),
            DimStore::Bess(_) => None,
        }
    }

    /// Decodes the coordinates of `dim` for every row id in `rows`
    /// into `out` (cleared first) — the gather fallback scan kernels
    /// use when [`Brick::dim_slice`] is unavailable. Works for either
    /// layout.
    pub fn gather_dim(&self, dim: usize, rows: &[u32], out: &mut Vec<u32>) {
        match &self.dims {
            DimStore::Plain(dims) => {
                let col = &dims[dim];
                out.clear();
                out.reserve(rows.len());
                out.extend(rows.iter().map(|&row| col[row as usize]));
            }
            DimStore::Bess(bess) => bess.gather_dim(dim, rows, out),
        }
    }

    /// Metric column `metric`.
    pub fn metric_column(&self, metric: usize) -> &Column {
        &self.metrics[metric]
    }

    /// The brick's epochs vector (protocol-level inspection).
    pub fn epochs(&self) -> &EpochsVector {
        &self.epochs
    }

    /// Whether purge at `lse` would change this brick.
    pub fn needs_purge(&self, lse: Epoch) -> bool {
        self.epochs.needs_purge(lse)
    }

    /// Purges the brick at `lse`: applies safe deletes, compacts
    /// history, rebuilds the data vectors, and swaps in place.
    /// Returns `(rows_purged, entries_reclaimed)`.
    pub fn purge(&mut self, lse: Epoch) -> (u64, usize) {
        let result = purge::purge(&self.epochs, lse);
        if !result.changed {
            return (0, 0);
        }
        if result.purged_rows > 0 {
            self.rebuild_data(&result.keep);
        }
        self.epochs = result.vector;
        self.epochs.shrink_to_fit();
        (result.purged_rows, result.entries_reclaimed)
    }

    /// Removes an aborted transaction's rows. Returns rows removed.
    pub fn rollback(&mut self, aborted: Epoch) -> u64 {
        let result = rollback::rollback_partition(&self.epochs, aborted);
        if !result.changed {
            return 0;
        }
        if result.removed_rows > 0 {
            self.rebuild_data(&result.keep);
        }
        self.epochs = result.vector;
        result.removed_rows
    }

    fn rebuild_data(&mut self, keep: &Bitmap) {
        match &mut self.dims {
            DimStore::Plain(dims) => {
                for dim in dims {
                    let mut new_dim = Vec::with_capacity(keep.count_ones());
                    new_dim.extend(keep.iter_ones().map(|row| dim[row]));
                    *dim = new_dim;
                }
            }
            DimStore::Bess(bess) => *bess = bess.retain_by_bitmap(keep),
        }
        for col in &mut self.metrics {
            *col = col.retain_by_bitmap(keep);
        }
    }

    /// Metric-column bytes only (test support for layout
    /// comparisons).
    #[doc(hidden)]
    pub fn metric_bytes_for_test(&self) -> usize {
        self.metrics.iter().map(Column::heap_bytes).sum()
    }

    /// Swaps in a raw metric column (test support: the schema cannot
    /// produce non-numeric metric cells, so kernel tests pinning the
    /// skip-non-numeric semantics inject a `Column::Str` here).
    ///
    /// # Panics
    /// Panics if the replacement's length differs from the brick's
    /// row count.
    #[doc(hidden)]
    pub fn replace_metric_for_test(&mut self, metric: usize, column: Column) {
        assert_eq!(
            column.len() as u64,
            self.row_count(),
            "replacement metric column length mismatch"
        );
        self.metrics[metric] = column;
    }

    /// Memory accounting for the overhead experiments and the
    /// eviction budget. Counts every heap allocation the brick owns:
    /// for plain storage that includes the outer spine (one `Vec`
    /// header per dimension lives on the heap too), for bess the
    /// packed words plus the field table.
    pub fn memory(&self) -> BrickMemory {
        let dim_bytes: usize = match &self.dims {
            DimStore::Plain(dims) => {
                dims.capacity() * std::mem::size_of::<Vec<u32>>()
                    + dims
                        .iter()
                        .map(|d| d.capacity() * std::mem::size_of::<u32>())
                        .sum::<usize>()
            }
            DimStore::Bess(bess) => bess.heap_bytes(),
        };
        let metric_bytes: usize = self.metrics.iter().map(Column::heap_bytes).sum();
        BrickMemory {
            data_bytes: dim_bytes + metric_bytes,
            aosi_bytes: self.epochs.heap_bytes(),
            rows: self.row_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};
    use columnar::Value;

    fn schema() -> CubeSchema {
        CubeSchema::new(
            "t",
            vec![Dimension::int("d", 8, 2)],
            vec![Metric::int("m"), Metric::float("f")],
        )
        .unwrap()
    }

    fn rec(coord: u32, m: i64, f: f64) -> ParsedRecord {
        ParsedRecord {
            bid: 0,
            coords: vec![coord],
            metrics: vec![Value::I64(m), Value::F64(f)],
        }
    }

    #[test]
    fn append_fills_all_columns() {
        let mut b = Brick::new(&schema());
        b.append(1, &[rec(0, 10, 0.5), rec(1, 20, 1.5)]);
        assert_eq!(b.row_count(), 2);
        assert_eq!(b.dim_column(0), &[0, 1]);
        assert_eq!(b.metric_column(0).get_i64(1), Some(20));
        assert_eq!(b.metric_column(1).get_f64(0), Some(0.5));
    }

    #[test]
    fn visibility_respects_snapshots() {
        let mut b = Brick::new(&schema());
        b.append(1, &[rec(0, 1, 0.0)]);
        b.append(3, &[rec(1, 2, 0.0)]);
        let bm = b.visibility(&Snapshot::committed(1));
        assert_eq!(bm.to_bit_string(), "10");
        let bm = b.visibility(&Snapshot::committed(3));
        assert_eq!(bm.to_bit_string(), "11");
        assert_eq!(b.all_rows().count_ones(), 2, "RU sees everything");
    }

    #[test]
    fn purge_rebuilds_data_vectors() {
        let mut b = Brick::new(&schema());
        b.append(1, &[rec(0, 1, 0.0), rec(1, 2, 0.0)]);
        b.mark_delete(2);
        b.append(3, &[rec(2, 3, 0.0)]);
        let (purged, _) = b.purge(3);
        assert_eq!(purged, 2);
        assert_eq!(b.row_count(), 1);
        assert_eq!(b.dim_column(0), &[2]);
        assert_eq!(b.metric_column(0).get_i64(0), Some(3));
        assert_eq!(b.epochs().entries().len(), 1);
    }

    #[test]
    fn rollback_rebuilds_data_vectors() {
        let mut b = Brick::new(&schema());
        b.append(1, &[rec(0, 1, 0.0)]);
        b.append(2, &[rec(1, 2, 0.0), rec(2, 3, 0.0)]);
        b.append(1, &[rec(3, 4, 0.0)]);
        assert_eq!(b.rollback(2), 2);
        assert_eq!(b.row_count(), 2);
        assert_eq!(b.dim_column(0), &[0, 3]);
        assert_eq!(b.metric_column(0).get_i64(1), Some(4));
        assert_eq!(b.rollback(9), 0, "unknown epoch is a no-op");
    }

    #[test]
    fn memory_counts_payload_and_metadata_separately() {
        let mut b = Brick::new(&schema());
        let recs: Vec<ParsedRecord> = (0..100).map(|i| rec(i % 8, i as i64, 0.0)).collect();
        b.append(1, &recs);
        let m = b.memory();
        assert_eq!(m.rows, 100);
        // 100 x (4B dim + 8B + 8B metrics), capacities may round up.
        assert!(m.data_bytes >= 2000);
        // One epochs entry regardless of row count.
        assert!(m.aosi_bytes >= 16 && m.aosi_bytes < 1024);
    }

    /// Audit (ISSUE 10 satellite): the eviction budget is driven by
    /// `memory()`, so it must agree with an *independent* enumeration
    /// of every allocation the brick owns — catching omissions like
    /// the plain-layout spine or the bess field table, which the
    /// composed accessors used to drop.
    #[test]
    fn memory_matches_an_independent_allocation_walk() {
        let schema = CubeSchema::new(
            "wide",
            (0..6)
                .map(|i| Dimension::int(&format!("d{i}"), 8, 2))
                .collect(),
            vec![Metric::int("m"), Metric::float("f")],
        )
        .unwrap();
        let mut b = Brick::with_storage(&schema, DimStorage::Plain);
        let recs: Vec<ParsedRecord> = (0..300)
            .map(|i| ParsedRecord {
                bid: 0,
                coords: vec![i % 8; 6],
                metrics: vec![Value::I64(i as i64), Value::F64(0.5)],
            })
            .collect();
        b.append(1, &recs);
        b.mark_delete(2);
        b.append(3, &recs[..50]);

        // Walk the actual structures allocation by allocation.
        let DimStore::Plain(dims) = &b.dims else {
            unreachable!()
        };
        let mut expected_data = dims.capacity() * std::mem::size_of::<Vec<u32>>();
        for d in dims {
            expected_data += d.capacity() * std::mem::size_of::<u32>();
        }
        for col in &b.metrics {
            expected_data += match col {
                Column::I64(v) => v.capacity() * std::mem::size_of::<i64>(),
                Column::F64(v) => v.capacity() * std::mem::size_of::<f64>(),
                Column::Str(v) => v.capacity() * std::mem::size_of::<u32>(),
            };
        }
        let m = b.memory();
        assert_eq!(m.data_bytes, expected_data);
        assert!(m.aosi_bytes >= b.epochs.entries().len() * 16);
    }

    #[test]
    fn restore_roundtrips_both_layouts_bit_identically() {
        let schema = schema();
        let recs: Vec<ParsedRecord> = (0..200)
            .map(|i| rec(i % 8, i as i64, i as f64 / 2.0))
            .collect();
        for storage in [DimStorage::Plain, DimStorage::Bess] {
            let mut original = Brick::with_storage(&schema, storage);
            original.append(1, &recs[..120]);
            original.mark_delete(2);
            original.append(3, &recs[120..]);

            let dims: Vec<Vec<u32>> = (0..original.num_dims())
                .map(|d| original.dim_coords(d))
                .collect();
            let metrics: Vec<Column> = (0..original.num_metrics())
                .map(|m| original.metric_column(m).clone())
                .collect();
            let epochs = EpochsVector::from_parts_with_generation(
                original.epochs().entries().to_vec(),
                original.row_count(),
                original.epochs().generation(),
            );
            let restored = Brick::restore(&schema, storage, dims, metrics, epochs);

            assert_eq!(restored.storage_kind(), storage);
            assert_eq!(restored.row_count(), original.row_count());
            assert_eq!(
                restored.epochs().generation(),
                original.epochs().generation(),
                "reload must carry the cache-invalidation token verbatim"
            );
            for row in 0..original.row_count() as usize {
                assert_eq!(restored.dim_value(0, row), original.dim_value(0, row));
                assert_eq!(
                    restored.metric_column(0).get_i64(row),
                    original.metric_column(0).get_i64(row)
                );
                assert_eq!(
                    restored.metric_column(1).get_f64(row),
                    original.metric_column(1).get_f64(row)
                );
            }
            for reader in 1..=4 {
                let snap = Snapshot::committed(reader);
                assert_eq!(
                    restored.visibility(&snap).to_bit_string(),
                    original.visibility(&snap).to_bit_string(),
                    "reader {reader}"
                );
            }
        }
    }

    #[test]
    fn plain_memory_includes_the_dimension_spine() {
        // A freshly materialized 6-dimension plain brick owns six Vec
        // headers on the heap before any row arrives; this read 0
        // before the audit fix.
        let schema = CubeSchema::new(
            "wide",
            (0..6)
                .map(|i| Dimension::int(&format!("d{i}"), 8, 2))
                .collect(),
            vec![Metric::int("m")],
        )
        .unwrap();
        let b = Brick::with_storage(&schema, DimStorage::Plain);
        assert!(b.memory().data_bytes >= 6 * std::mem::size_of::<Vec<u32>>());
    }

    #[test]
    fn empty_append_is_noop() {
        let mut b = Brick::new(&schema());
        b.append(1, &[]);
        assert_eq!(b.row_count(), 0);
        assert!(b.epochs().is_empty());
    }

    #[test]
    fn bess_brick_behaves_like_plain() {
        let schema = schema();
        let mut plain = Brick::with_storage(&schema, DimStorage::Plain);
        let mut bess = Brick::with_storage(&schema, DimStorage::Bess);
        let recs: Vec<ParsedRecord> = (0..200).map(|i| rec(i % 8, i as i64, 0.5)).collect();
        for b in [&mut plain, &mut bess] {
            b.append(1, &recs[..100]);
            b.append(2, &recs[100..150]);
            b.mark_delete(3);
            b.append(4, &recs[150..]);
        }
        assert_eq!(plain.row_count(), bess.row_count());
        for row in 0..plain.row_count() as usize {
            assert_eq!(plain.dim_value(0, row), bess.dim_value(0, row), "row {row}");
        }
        for reader in 1..=5 {
            let snap = Snapshot::committed(reader);
            assert_eq!(
                plain.visibility(&snap).to_bit_string(),
                bess.visibility(&snap).to_bit_string(),
                "reader {reader}"
            );
        }
        // Purge rebuilds both layouts identically.
        let (p_rows, _) = plain.purge(5);
        let (b_rows, _) = bess.purge(5);
        assert_eq!(p_rows, b_rows);
        assert_eq!(plain.row_count(), bess.row_count());
        for row in 0..plain.row_count() as usize {
            assert_eq!(plain.dim_value(0, row), bess.dim_value(0, row));
            assert_eq!(
                plain.metric_column(0).get_i64(row),
                bess.metric_column(0).get_i64(row)
            );
        }
    }

    #[test]
    fn bess_brick_is_smaller_for_low_cardinality_dims() {
        // 8-value dimension: 3 bits packed vs 32 bits plain.
        let schema = schema();
        let mut plain = Brick::with_storage(&schema, DimStorage::Plain);
        let mut bess = Brick::with_storage(&schema, DimStorage::Bess);
        let recs: Vec<ParsedRecord> = (0..10_000).map(|i| rec(i % 8, 0, 0.0)).collect();
        plain.append(1, &recs);
        bess.append(1, &recs);
        let plain_dims = plain.memory().data_bytes - plain.metric_bytes_for_test();
        let bess_dims = bess.memory().data_bytes - bess.metric_bytes_for_test();
        assert!(
            bess_dims * 5 < plain_dims,
            "bess {bess_dims} B vs plain {plain_dims} B"
        );
    }

    #[test]
    #[should_panic(expected = "bess-packed")]
    fn dim_column_on_bess_panics() {
        let b = Brick::with_storage(&schema(), DimStorage::Bess);
        b.dim_column(0);
    }

    #[test]
    fn dim_slice_and_gather_cover_both_layouts() {
        let schema = schema();
        let recs: Vec<ParsedRecord> = (0..50).map(|i| rec(i % 8, i as i64, 0.0)).collect();
        let mut plain = Brick::with_storage(&schema, DimStorage::Plain);
        let mut bess = Brick::with_storage(&schema, DimStorage::Bess);
        plain.append(1, &recs);
        bess.append(1, &recs);
        assert!(bess.dim_slice(0).is_none(), "bess has no slices");
        let slice = plain.dim_slice(0).expect("plain exposes slices");
        assert_eq!(slice, plain.dim_column(0));
        let rows: Vec<u32> = (0..50).step_by(3).collect();
        let mut from_plain = Vec::new();
        let mut from_bess = Vec::new();
        plain.gather_dim(0, &rows, &mut from_plain);
        bess.gather_dim(0, &rows, &mut from_bess);
        assert_eq!(from_plain, from_bess);
        let expected: Vec<u32> = rows
            .iter()
            .map(|&r| plain.dim_value(0, r as usize))
            .collect();
        assert_eq!(from_plain, expected);
    }
}
