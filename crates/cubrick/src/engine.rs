//! The single-node Cubrick engine: transaction manager + cubes +
//! shard pool.
//!
//! Operation flow mirrors Section V-B:
//!
//! * **Load**: parse (CPU-only, caller thread) → validate against
//!   `max_rejected` → implicit RW transaction → per-bid append tasks
//!   on the owning shards → flush barrier → commit. "At this point,
//!   all deterministic reasons why a transaction could fail are
//!   already discarded", so commit cannot fail.
//! * **Query**: read-only snapshot at LCE (or the caller's RW
//!   transaction snapshot), registered as an active reader so purge
//!   cannot pull rows out from under the scan; fan-out over shards;
//!   merge partial aggregates. [`IsolationMode::ReadUncommitted`]
//!   skips the snapshot and scans every stored row — the paper's
//!   Figure 8/9 comparison point.
//! * **Delete**: partition-level only. A brick is deleted when its
//!   entire coordinate range is contained in the predicate, so a
//!   delete never removes rows outside the predicate (predicates must
//!   align with partition ranges, the paper's retention use case).
//! * **Purge / rollback**: shard-local rebuilds driven by the
//!   protocol-level `purge`/`rollback` results.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aosi::{
    CacheStats, Epoch, Snapshot, SnapshotCache, Txn, TxnManager, TxnPartitionIndex, VisibilityCache,
};
use columnar::{Bitmap, Row};
use obs::{Counter, Histogram, ReportBuilder};
use parking_lot::RwLock;

use crate::brick::{Brick, DimStorage};
use crate::cube::{Cube, CubeMemory};
use crate::ddl::CubeSchema;
use crate::error::CubrickError;
use crate::ingest::{parse_rows, ParsedBatch};
use crate::query::{
    AggQueryShape, CachedAgg, PartialResult, Query, QueryResult, ResolvedQuery, ScanKernel,
};
use crate::shard::ShardPool;
use crate::tier::{BrickStore, TierEnforcement, TierStats, TieredStore};

/// Partition key the engine caches visibility artifacts under. Brick
/// ids are only unique within a cube, so the cube name is part of the
/// key; the `Arc<str>` keeps per-brick key construction down to a
/// refcount bump on the hot path.
pub(crate) type BrickKey = (Arc<str>, u64);

/// The per-brick aggregate cache: the visibility cache's keying
/// (generation + snapshot, see [`aosi::SnapshotCache`]) one level up,
/// tagged by the query's structural scan shape. A hit skips the
/// brick's visibility build *and* its scan.
pub(crate) type AggCache = SnapshotCache<BrickKey, Arc<AggQueryShape>, CachedAgg>;

/// How a parallel scan's per-brick partials reach the coordinator
/// (see [`ScanConfig::merge`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergePath {
    /// One task per involved shard: each shard folds its own bricks
    /// (ascending bid) into a local partial, and the coordinator
    /// merges one result per shard in shard order. Merge work scales
    /// with shards, not bricks — the default.
    #[default]
    Shard,
    /// One task per brick, all partials funneled to the coordinator
    /// and merged there in submission order. Kept as a comparison
    /// point (`scan_bench` measures the difference) and for workloads
    /// with few, huge bricks per shard.
    Funnel,
}

/// How the engine runs brick scans (see [`Engine::with_scan_config`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanConfig {
    /// Dispatch parallel scan tasks when a query matches at least
    /// this many bricks after pruning; below the threshold the
    /// engine falls back to the sequential per-shard walk (the
    /// per-task dispatch overhead is not worth it for tiny scans).
    /// `usize::MAX` disables the parallel path entirely.
    pub parallel_threshold: usize,
    /// Visibility-cache capacity in artifacts; `0` disables caching.
    pub cache_capacity: usize,
    /// Aggregate-cache capacity in cached brick partials; `0`
    /// disables it. Snapshot-isolated scans of unchanged bricks under
    /// a repeated query shape are then served without touching the
    /// brick at all.
    pub agg_cache_capacity: usize,
    /// Which scan/aggregate kernel brick scans run
    /// ([`ScanKernel::Vectorized`] unless diffing against the
    /// row-at-a-time reference).
    pub kernel: ScanKernel,
    /// How parallel partials merge ([`MergePath::Shard`] unless
    /// measuring the funnel).
    pub merge: MergePath,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            parallel_threshold: 2,
            cache_capacity: 4096,
            agg_cache_capacity: 1024,
            kernel: ScanKernel::Vectorized,
            merge: MergePath::Shard,
        }
    }
}

impl ScanConfig {
    /// The differential-testing reference configuration: every scan
    /// sequential, no caches, row-at-a-time kernel.
    /// [`Engine::query_at_reference`] uses this regardless of the
    /// engine's own configuration.
    pub fn sequential_uncached() -> Self {
        ScanConfig {
            parallel_threshold: usize::MAX,
            cache_capacity: 0,
            agg_cache_capacity: 0,
            kernel: ScanKernel::RowAtATime,
            merge: MergePath::Shard,
        }
    }

    /// Always-parallel with the given cache capacity for both caches
    /// (benches and stress tests use this to force the interesting
    /// path).
    pub fn parallel_cached(cache_capacity: usize) -> Self {
        ScanConfig {
            parallel_threshold: 1,
            cache_capacity,
            agg_cache_capacity: cache_capacity,
            kernel: ScanKernel::Vectorized,
            merge: MergePath::Shard,
        }
    }
}

/// Which rows a query may see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// Snapshot isolation through the AOSI protocol.
    Snapshot,
    /// Best-effort: scan every stored row, committed or not
    /// (the paper's "RU" comparison mode, Section VI-B).
    ReadUncommitted,
}

/// Per-stage timings of one load request (Figure 5's breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStageTimings {
    /// Parse + validate + route.
    pub parse: Duration,
    /// Forwarding to remote nodes (zero on a single node).
    pub forward: Duration,
    /// Queue + apply on the shard threads.
    pub flush: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// Result of a load request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadOutcome {
    /// The implicit transaction's epoch.
    pub epoch: Epoch,
    /// Records stored.
    pub accepted: usize,
    /// Records rejected by parsing.
    pub rejected: usize,
    /// Bricks touched.
    pub bricks_touched: usize,
    /// Stage latencies.
    pub timings: LoadStageTimings,
}

/// Node-level memory accounting (Figures 6 and 7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineMemory {
    /// Record payload bytes.
    pub data_bytes: usize,
    /// AOSI epochs-vector bytes — the protocol's whole footprint.
    pub aosi_bytes: usize,
    /// Dictionary bytes.
    pub dictionary_bytes: usize,
    /// Rows stored.
    pub rows: u64,
    /// Bricks materialized.
    pub bricks: usize,
    /// What a traditional MVCC system would pay for the same rows:
    /// two 8-byte timestamps per record (the paper's baseline).
    pub mvcc_baseline_bytes: u64,
}

/// Cumulative engine operation counters (`SHOW STATS`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineOpStats {
    /// Load requests accepted.
    pub loads: u64,
    /// Rows ingested.
    pub rows_loaded: u64,
    /// Batch flushes through the shard pool.
    pub flushes: u64,
    /// Queries executed.
    pub queries: u64,
    /// Partition-delete statements.
    pub deletes: u64,
    /// Purge cycles run.
    pub purges: u64,
    /// Rows physically reclaimed by purge.
    pub rows_purged: u64,
    /// Epochs-vector entries reclaimed by purge.
    pub entries_reclaimed: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
}

#[derive(Debug, Default)]
struct OpCounters {
    loads: Counter,
    rows_loaded: Counter,
    flushes: Counter,
    queries: Counter,
    deletes: Counter,
    purges: Counter,
    rows_purged: Counter,
    entries_reclaimed: Counter,
    rollbacks: Counter,
}

/// Engine-level latency distributions and scan-time totals. All
/// lock-free (see the `obs` crate): recording sits directly on the
/// query and load paths.
#[derive(Debug, Default)]
struct EngineMetrics {
    query_nanos: Histogram,
    load_nanos: Histogram,
    visibility_build_nanos: Counter,
    scan_nanos: Counter,
    /// Queries routed down the parallel per-brick scan path.
    parallel_queries: Counter,
    /// Queries that took the sequential per-shard walk.
    sequential_queries: Counter,
    /// Wall time of individual brick-scan tasks (both paths).
    scan_task_nanos: Histogram,
}

/// Outcome of one purge cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PurgeStats {
    /// Rows physically reclaimed.
    pub rows_purged: u64,
    /// Epochs-vector entries reclaimed.
    pub entries_reclaimed: u64,
    /// Bricks that needed work.
    pub bricks_changed: u64,
}

/// One Cubrick node.
pub struct Engine {
    manager: TxnManager,
    cubes: RwLock<HashMap<String, Cube>>,
    shards: Arc<ShardPool>,
    dim_storage: DimStorage,
    rollback_index: Option<TxnPartitionIndex>,
    scan_config: ScanConfig,
    vis_cache: Option<Arc<VisibilityCache<BrickKey>>>,
    agg_cache: Option<Arc<AggCache>>,
    /// Bids whose scan tasks panic on purpose (test injection only).
    panic_bids: RwLock<HashSet<u64>>,
    /// Cold-tier residency manager, when tiered storage is enabled.
    tier: Option<Arc<TieredStore>>,
    ops: OpCounters,
    metrics: EngineMetrics,
}

impl Engine {
    /// A standalone single-node engine.
    pub fn new(num_shards: usize) -> Self {
        Engine::with_manager(TxnManager::single_node(), num_shards)
    }

    /// An engine wired to an existing transaction manager (one node
    /// of a cluster).
    pub fn with_manager(manager: TxnManager, num_shards: usize) -> Self {
        let scan_config = ScanConfig::default();
        Engine {
            manager,
            cubes: RwLock::new(HashMap::new()),
            shards: Arc::new(ShardPool::new(num_shards)),
            dim_storage: DimStorage::Plain,
            rollback_index: None,
            scan_config,
            vis_cache: Some(Arc::new(VisibilityCache::new(scan_config.cache_capacity))),
            agg_cache: Some(Arc::new(AggCache::new(scan_config.agg_cache_capacity))),
            panic_bids: RwLock::new(HashSet::new()),
            tier: None,
            ops: OpCounters::default(),
            metrics: EngineMetrics::default(),
        }
    }

    /// Enables tiered storage: cold bricks spill into `store` whenever
    /// resident brick bytes exceed `budget_bytes`, and fault back in
    /// transparently when a scan or mutation touches them. Enforcement
    /// runs after every load/commit and on demand via
    /// [`Engine::enforce_tier_budget`].
    pub fn with_tiered_storage(mut self, store: Box<dyn BrickStore>, budget_bytes: usize) -> Self {
        self.tier = Some(Arc::new(TieredStore::new(store, budget_bytes)));
        self
    }

    /// Cold-tier statistics, when tiered storage is enabled.
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.tier.as_ref().map(|tier| tier.stats())
    }

    /// The tier manager (crate-internal: persistence consults the
    /// spilled registry).
    pub(crate) fn tier(&self) -> Option<&Arc<TieredStore>> {
        self.tier.as_ref()
    }

    /// Reconfigures how scans run (parallel threshold, cache
    /// capacities, merge path). Choose before serving queries:
    /// swapping the config replaces both caches.
    pub fn with_scan_config(mut self, config: ScanConfig) -> Self {
        self.scan_config = config;
        self.vis_cache = (config.cache_capacity > 0)
            .then(|| Arc::new(VisibilityCache::new(config.cache_capacity)));
        self.agg_cache = (config.agg_cache_capacity > 0)
            .then(|| Arc::new(AggCache::new(config.agg_cache_capacity)));
        self
    }

    /// The active scan configuration.
    pub fn scan_config(&self) -> ScanConfig {
        self.scan_config
    }

    /// Visibility-cache statistics, when caching is enabled.
    pub fn visibility_cache_stats(&self) -> Option<CacheStats> {
        self.vis_cache.as_ref().map(|cache| cache.stats())
    }

    /// Aggregate-cache statistics, when the aggregate cache is
    /// enabled.
    pub fn agg_cache_stats(&self) -> Option<CacheStats> {
        self.agg_cache.as_ref().map(|cache| cache.stats())
    }

    /// Corrupts every cached visibility artifact in place, simulating
    /// a stale cache that serves wrong bytes. The aggregate cache
    /// layered above it is emptied at the same time — warm brick
    /// partials would otherwise replay without ever touching the
    /// poisoned artifacts, making the corruption unreachable. Exists
    /// solely so the scan-oracle meta-test can prove the oracle
    /// detects it.
    #[doc(hidden)]
    pub fn corrupt_visibility_cache_for_test(&self) {
        if let Some(cache) = &self.vis_cache {
            cache.corrupt_for_test();
        }
        if let Some(cache) = &self.agg_cache {
            cache.clear();
        }
    }

    /// Corrupts every cached aggregate partial in place (counts and
    /// sums nudged, keys untouched), simulating a stale aggregate
    /// cache. Exists solely so the merge-oracle meta-test can prove
    /// the differential layer detects it.
    #[doc(hidden)]
    pub fn corrupt_agg_cache_for_test(&self) {
        if let Some(cache) = &self.agg_cache {
            cache.corrupt_values_for_test(CachedAgg::corrupt_for_test);
        }
    }

    /// Makes every scan task for `bid` panic (test injection for the
    /// panic-to-typed-error regression tests).
    #[doc(hidden)]
    pub fn inject_scan_panic_for_test(&self, bid: u64) {
        self.panic_bids.write().insert(bid);
    }

    /// Clears scan-panic injection.
    #[doc(hidden)]
    pub fn clear_scan_panics_for_test(&self) {
        self.panic_bids.write().clear();
    }

    /// Whether panic injection targets `bid` (the export path shares
    /// the scan-panic injection set).
    pub(crate) fn export_panic_injected(&self, bid: u64) -> bool {
        self.panic_bids.read().contains(&bid)
    }

    /// Faults one spilled brick back into its shard before a mutation
    /// or export touches it. Appending into a fresh empty brick while
    /// a spill snapshot exists would shadow the spilled rows, so every
    /// write path that targets a brick by id goes through here first.
    /// A no-op when tiering is off or the brick is resident.
    pub(crate) fn fault_in_brick(&self, cube: &str, bid: u64) -> Result<(), CubrickError> {
        let Some(tier) = &self.tier else {
            return Ok(());
        };
        if !tier.is_spilled(cube, bid) {
            return Ok(());
        }
        let cube = self.cube(cube)?;
        let tier = Arc::clone(tier);
        let shard = self.shards.shard_of(bid);
        let task_cube = cube.clone();
        self.shards
            .submit_and_wait(shard, move |bricks| {
                tier.reload_into(&task_cube, bid, bricks).map(|_| ())
            })
            .map_err(|reason| CubrickError::TierReloadFailed {
                cube: cube.name().to_owned(),
                bid,
                reason,
            })
    }

    /// Faults every spilled brick of `cube` back in (cube-wide
    /// mutations: partition deletes walk all bricks of the cube).
    pub(crate) fn fault_in_cube(&self, cube: &str) -> Result<(), CubrickError> {
        let Some(tier) = &self.tier else {
            return Ok(());
        };
        for bid in tier.spilled_bids(cube) {
            self.fault_in_brick(cube, bid)?;
        }
        Ok(())
    }

    /// Runs one eviction sweep: while resident brick bytes exceed the
    /// tier budget, spill the coldest *clean* bricks — newest epoch at
    /// or below the LSE, which makes them immutable and fully durable
    /// in the WAL (see [`crate::tier`]) — until the budget holds or
    /// candidates run out. Ranking takes the hottest signal across the
    /// tier's own scan clock and both caches' recency clocks, so a
    /// brick still answering queries from a warm cache keeps its
    /// residency longer than one nobody asks about.
    ///
    /// Runs automatically after loads, commits, and LSE advances; a
    /// no-op without tiered storage. A failed spill leaves its brick
    /// resident and is counted, never silent.
    pub fn enforce_tier_budget(&self) -> TierEnforcement {
        let Some(tier) = &self.tier else {
            return TierEnforcement::default();
        };
        let lse = self.manager.lse();
        let per_shard: Vec<Vec<(String, u64, usize, Epoch)>> = self.shards.map_shards(|_| {
            Box::new(|bricks: &mut crate::shard::ShardBricks| {
                let mut out = Vec::new();
                for (cube_name, cube_bricks) in bricks.iter() {
                    for (&bid, brick) in cube_bricks {
                        let m = brick.memory();
                        let newest = brick
                            .epochs()
                            .entries()
                            .last()
                            .map(|e| e.epoch())
                            .unwrap_or(0);
                        out.push((cube_name.clone(), bid, m.data_bytes + m.aosi_bytes, newest));
                    }
                }
                out
            })
        });
        let resident: Vec<(String, u64, usize, Epoch)> =
            per_shard.into_iter().flatten().collect();
        let resident_bytes: u64 = resident.iter().map(|r| r.2 as u64).sum();
        let mut outcome = TierEnforcement {
            resident_bytes_before: resident_bytes,
            resident_bytes_after: resident_bytes,
            ..TierEnforcement::default()
        };
        // Rank clean-cold candidates coldest-first; empty bricks
        // (newest epoch 0) are never worth a file.
        let mut candidates: Vec<(f64, String, u64, usize)> = resident
            .into_iter()
            .filter(|&(_, _, _, newest)| newest != 0 && newest <= lse)
            .map(|(cube, bid, bytes, _)| {
                let key: BrickKey = (Arc::from(cube.as_str()), bid);
                let mut recency = tier.touch_recency(&cube, bid).unwrap_or(0.0);
                if let Some(cache) = &self.vis_cache {
                    recency = recency.max(cache.partition_recency(&key).unwrap_or(0.0));
                }
                if let Some(cache) = &self.agg_cache {
                    recency = recency.max(cache.partition_recency(&key).unwrap_or(0.0));
                }
                (recency, cube, bid, bytes)
            })
            .collect();
        outcome.eligible_bytes = candidates.iter().map(|c| c.3 as u64).sum();
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        for (_, cube_name, bid, _) in candidates {
            if outcome.resident_bytes_after <= tier.budget_bytes() as u64 {
                break;
            }
            match self.spill_brick(tier, &cube_name, bid, lse) {
                Ok(Some(freed)) => {
                    outcome.evicted += 1;
                    outcome.resident_bytes_after =
                        outcome.resident_bytes_after.saturating_sub(freed as u64);
                }
                Ok(None) => {}
                Err(()) => outcome.failed += 1,
            }
        }
        tier.observe_resident_bytes(outcome.resident_bytes_after);
        outcome
    }

    /// Spills one brick on its owning shard thread. Eligibility is
    /// re-checked there — a write may have landed between the sweep's
    /// enumeration and this task running. Returns the bytes freed
    /// (`Ok(None)` when the brick vanished or turned ineligible,
    /// `Err` when the durable write failed and the brick stayed
    /// resident). Cached artifacts are deliberately *not*
    /// invalidated: they stay valid across the evict/reload cycle and
    /// can answer for the brick while it is cold.
    fn spill_brick(
        &self,
        tier: &Arc<TieredStore>,
        cube_name: &str,
        bid: u64,
        lse: Epoch,
    ) -> Result<Option<usize>, ()> {
        let Ok(cube) = self.cube(cube_name) else {
            return Ok(None);
        };
        let shard = self.shards.shard_of(bid);
        let tier = Arc::clone(tier);
        self.shards.submit_and_wait(shard, move |bricks| {
            let Some(cube_bricks) = bricks.get_mut(cube.name()) else {
                return Ok(None);
            };
            let Some(brick) = cube_bricks.get(&bid) else {
                return Ok(None);
            };
            let newest = brick
                .epochs()
                .entries()
                .last()
                .map(|e| e.epoch())
                .unwrap_or(0);
            if newest == 0 || newest > lse {
                return Ok(None);
            }
            match tier.store().spill(&cube, bid, brick) {
                Ok(file_bytes) => {
                    let epochs = brick.epochs().clone();
                    let m = brick.memory();
                    let freed = m.data_bytes + m.aosi_bytes;
                    cube_bricks.remove(&bid);
                    tier.note_spilled(cube.name(), bid, epochs, file_bytes, freed);
                    Ok(Some(freed))
                }
                Err(_) => {
                    tier.note_spill_failure();
                    Err(())
                }
            }
        })
    }

    /// Cumulative operation counters.
    pub fn op_stats(&self) -> EngineOpStats {
        EngineOpStats {
            loads: self.ops.loads.get(),
            rows_loaded: self.ops.rows_loaded.get(),
            flushes: self.ops.flushes.get(),
            queries: self.ops.queries.get(),
            deletes: self.ops.deletes.get(),
            purges: self.ops.purges.get(),
            rows_purged: self.ops.rows_purged.get(),
            entries_reclaimed: self.ops.entries_reclaimed.get(),
            rollbacks: self.ops.rollbacks.get(),
        }
    }

    /// Renders this node's full metrics report — `[aosi]`, `[engine]`,
    /// and `[shards]` sections in the `obs` plain-text format.
    pub fn metrics_report(&self) -> String {
        let mut report = ReportBuilder::new();
        self.report_into(&mut report, "");
        report.finish()
    }

    /// Writes this node's report sections, prefixing section names
    /// with `prefix` (the distributed engine passes `"node1."` etc.).
    pub(crate) fn report_into(&self, report: &mut ReportBuilder, prefix: &str) {
        self.manager.report_as(report, &format!("{prefix}aosi"));
        report
            .section(&format!("{prefix}engine"))
            .metric("cubes", self.cubes.read().len())
            .counter("loads", &self.ops.loads)
            .counter("rows_loaded", &self.ops.rows_loaded)
            .counter("flushes", &self.ops.flushes)
            .counter("queries", &self.ops.queries)
            .counter("deletes", &self.ops.deletes)
            .counter("purges", &self.ops.purges)
            .counter("rows_purged", &self.ops.rows_purged)
            .counter("entries_reclaimed", &self.ops.entries_reclaimed)
            .counter("rollbacks", &self.ops.rollbacks)
            .counter(
                "visibility_build_nanos",
                &self.metrics.visibility_build_nanos,
            )
            .counter("scan_nanos", &self.metrics.scan_nanos)
            .counter("parallel_queries", &self.metrics.parallel_queries)
            .counter("sequential_queries", &self.metrics.sequential_queries)
            .histogram("query_nanos", &self.metrics.query_nanos)
            .histogram("load_nanos", &self.metrics.load_nanos)
            .histogram("scan_task_nanos", &self.metrics.scan_task_nanos);
        if let Some(cache) = &self.vis_cache {
            cache.report_as(report, &format!("{prefix}engine.vis_cache"));
        }
        if let Some(cache) = &self.agg_cache {
            cache.report_as(report, &format!("{prefix}engine.agg_cache"));
        }
        if let Some(tier) = &self.tier {
            tier.report_as(report, &format!("{prefix}storage.tier"));
        }
        self.shards.report_as(report, &format!("{prefix}shards"));
    }

    /// Enables the transaction-to-partition index the paper describes
    /// as an alternative rollback accelerator (Section III-C5) and
    /// rejects for its memory footprint. Off by default, matching the
    /// paper's choice; the `ablations` bench quantifies the trade.
    pub fn with_rollback_index(mut self) -> Self {
        self.rollback_index = Some(TxnPartitionIndex::new());
        self
    }

    /// The rollback index, if enabled (instrumentation).
    pub fn rollback_index(&self) -> Option<&TxnPartitionIndex> {
        self.rollback_index.as_ref()
    }

    /// Selects the dimension layout for bricks materialized from now
    /// on (the paper's bess packing vs. plain vectors). Choose before
    /// loading data.
    pub fn with_dim_storage(mut self, storage: DimStorage) -> Self {
        self.dim_storage = storage;
        self
    }

    /// The configured dimension layout.
    pub fn dim_storage(&self) -> DimStorage {
        self.dim_storage
    }

    /// The node's transaction manager.
    pub fn manager(&self) -> &TxnManager {
        &self.manager
    }

    /// The shard pool (crate-internal: persistence walks bricks).
    pub(crate) fn shards(&self) -> &ShardPool {
        &self.shards
    }

    /// Creates a cube from a schema (local DDL).
    pub fn create_cube(&self, schema: CubeSchema) -> Result<Cube, CubrickError> {
        self.register_cube(Cube::new(schema))
    }

    /// Registers shared cube metadata (cluster DDL: every node holds
    /// the same `Cube`, including its dictionaries).
    pub fn register_cube(&self, cube: Cube) -> Result<Cube, CubrickError> {
        let mut cubes = self.cubes.write();
        if cubes.contains_key(cube.name()) {
            return Err(CubrickError::CubeExists(cube.name().to_owned()));
        }
        cubes.insert(cube.name().to_owned(), cube.clone());
        Ok(cube)
    }

    /// Drops a cube: unregisters its metadata and removes its bricks
    /// from every shard. Data is reclaimed immediately (dropping a
    /// cube is DDL, not a transactional delete — the paper's
    /// transactional path for data removal is the partition delete).
    pub fn drop_cube(&self, name: &str) -> Result<(), CubrickError> {
        let removed = self.cubes.write().remove(name);
        if removed.is_none() {
            return Err(CubrickError::UnknownCube(name.to_owned()));
        }
        let name = name.to_owned();
        let dropped: Vec<Vec<u64>> = self.shards.map_shards(|_| {
            let name = name.clone();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                bricks
                    .remove(&name)
                    .map(|b| b.keys().copied().collect())
                    .unwrap_or_default()
            })
        });
        let cube_key: Arc<str> = Arc::from(name.as_str());
        for bid in dropped.into_iter().flatten() {
            invalidate_brick(
                &self.vis_cache,
                &self.agg_cache,
                &(Arc::clone(&cube_key), bid),
            );
        }
        // Evicted bricks of the dropped cube: forget them and remove
        // their snapshots.
        if let Some(tier) = &self.tier {
            for bid in tier.spilled_bids(&name) {
                tier.forget(&name, bid);
                invalidate_brick(
                    &self.vis_cache,
                    &self.agg_cache,
                    &(Arc::clone(&cube_key), bid),
                );
            }
        }
        Ok(())
    }

    /// Names of all registered cubes.
    pub fn cube_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cubes.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Looks a cube up.
    pub fn cube(&self, name: &str) -> Result<Cube, CubrickError> {
        self.cubes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| CubrickError::UnknownCube(name.to_owned()))
    }

    /// Loads `rows` into `cube` in one implicit transaction
    /// (Section V-B's pipeline on a single node).
    pub fn load(
        &self,
        cube: &str,
        rows: &[Row],
        max_rejected: usize,
    ) -> Result<LoadOutcome, CubrickError> {
        let started = Instant::now();
        let cube = self.cube(cube)?;

        // Parse.
        let parse_started = Instant::now();
        let batch = parse_rows(cube.schema(), cube.layout(), cube.dictionaries(), rows);
        let parse = parse_started.elapsed();
        if batch.rejected > max_rejected {
            return Err(CubrickError::TooManyRejected {
                rejected: batch.rejected,
                max_rejected,
            });
        }

        // Validate & create the implicit transaction. From here on,
        // nothing can deterministically fail.
        let txn = self.manager.begin_rw();
        let (accepted, rejected, bricks_touched) =
            (batch.accepted, batch.rejected, batch.bricks_touched());

        // Flush: enqueue per-brick appends, then barrier. The only
        // failure is a spilled brick that cannot be faulted back in,
        // detected before any row lands — abort the implicit
        // transaction so it cannot pin the LCE forever.
        let flush_started = Instant::now();
        if let Err(e) = self.flush_batch(&cube, txn.epoch(), batch) {
            let _ = self.manager.rollback(&txn);
            self.manager.clear_rolled_back(&[txn.epoch()]);
            return Err(e);
        }
        let flush = flush_started.elapsed();

        self.manager.commit(&txn)?;
        if self.tier.is_some() {
            self.enforce_tier_budget();
        }
        if let Some(index) = &self.rollback_index {
            index.forget(txn.epoch());
        }
        self.ops.loads.inc();
        self.ops.rows_loaded.add(accepted as u64);
        self.metrics.load_nanos.record_duration(started.elapsed());
        Ok(LoadOutcome {
            epoch: txn.epoch(),
            accepted,
            rejected,
            bricks_touched,
            timings: LoadStageTimings {
                parse,
                forward: Duration::ZERO,
                flush,
                total: started.elapsed(),
            },
        })
    }

    /// Enqueues a parsed batch under `epoch` and waits for the shard
    /// threads to apply it. Used by `load`, explicit transactions,
    /// and the distributed engine's flush step.
    ///
    /// Spilled target bricks are faulted back in *before* any append
    /// is submitted: appending into a fresh empty brick while a spill
    /// snapshot exists would shadow the spilled rows. Failing the
    /// whole batch before any row lands keeps the error path simple
    /// for callers.
    pub(crate) fn flush_batch(
        &self,
        cube: &Cube,
        epoch: Epoch,
        batch: ParsedBatch,
    ) -> Result<(), CubrickError> {
        if self.tier.is_some() {
            for &bid in batch.by_bid.keys() {
                self.fault_in_brick(cube.name(), bid)?;
            }
        }
        self.ops.flushes.inc();
        let cube_key: Arc<str> = Arc::from(cube.name());
        let mut touched: Vec<usize> = Vec::new();
        for (bid, records) in batch.by_bid {
            if let Some(index) = &self.rollback_index {
                index.record(epoch, bid);
            }
            let shard = self.shards.shard_of(bid);
            if !touched.contains(&shard) {
                touched.push(shard);
            }
            let cube = cube.clone();
            let storage = self.dim_storage;
            let cache = self.vis_cache.clone();
            let agg_cache = self.agg_cache.clone();
            let key: BrickKey = (Arc::clone(&cube_key), bid);
            self.shards.submit(shard, move |bricks| {
                let brick = bricks
                    .entry(cube.name().to_owned())
                    .or_default()
                    .entry(bid)
                    .or_insert_with(|| Brick::with_storage(cube.schema(), storage));
                brick.append(epoch, &records);
                // Mutation class: append. Reclaim the brick's cached
                // artifacts eagerly (the generation bump already made
                // them unreachable).
                invalidate_brick(&cache, &agg_cache, &key);
            });
        }
        // Barrier only on the shards we touched.
        for shard in touched {
            self.shards.submit_and_wait(shard, |_| ());
        }
        Ok(())
    }

    /// Begins an explicit RW transaction.
    pub fn begin(&self) -> Txn {
        self.manager.begin_rw()
    }

    /// Appends rows within an explicit transaction. Rejected rows are
    /// returned (the transaction stays usable).
    pub fn append(
        &self,
        cube: &str,
        rows: &[Row],
        txn: &Txn,
    ) -> Result<(usize, usize), CubrickError> {
        let cube = self.cube(cube)?;
        let batch = parse_rows(cube.schema(), cube.layout(), cube.dictionaries(), rows);
        let (accepted, rejected) = (batch.accepted, batch.rejected);
        self.flush_batch(&cube, txn.epoch(), batch)?;
        Ok((accepted, rejected))
    }

    /// Commits an explicit transaction.
    pub fn commit(&self, txn: &Txn) -> Result<(), CubrickError> {
        self.manager.commit(txn)?;
        if let Some(index) = &self.rollback_index {
            index.forget(txn.epoch());
        }
        if self.tier.is_some() {
            self.enforce_tier_budget();
        }
        Ok(())
    }

    /// Rolls an explicit transaction back and physically reclaims its
    /// rows from every brick (Section III-C5: scan every partition,
    /// rebuild, swap).
    pub fn rollback(&self, txn: &Txn) -> Result<u64, CubrickError> {
        self.ops.rollbacks.inc();
        self.manager.rollback(txn)?;
        let removed = self.reclaim_epoch(txn.epoch());
        self.manager.clear_rolled_back(&[txn.epoch()]);
        Ok(removed)
    }

    fn reclaim_epoch(&self, epoch: Epoch) -> u64 {
        // With the (optional) index, visit only the touched bricks;
        // otherwise scan "the epochs vector in every single partition
        // in the system", the paper's default.
        if let Some(index) = &self.rollback_index {
            let bids = index.partitions_of(epoch);
            index.forget(epoch);
            let mut by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
            for bid in bids {
                by_shard
                    .entry(self.shards.shard_of(bid))
                    .or_default()
                    .push(bid);
            }
            let mut removed = 0u64;
            for (shard, bids) in by_shard {
                let cache = self.vis_cache.clone();
                let agg_cache = self.agg_cache.clone();
                removed += self.shards.submit_and_wait(shard, move |bricks| {
                    let mut removed = 0u64;
                    for (cube_name, cube_bricks) in bricks.iter_mut() {
                        for bid in &bids {
                            if let Some(brick) = cube_bricks.get_mut(bid) {
                                removed += brick.rollback(epoch);
                                // Mutation class: rollback.
                                invalidate_brick(
                                    &cache,
                                    &agg_cache,
                                    &(Arc::from(cube_name.as_str()), *bid),
                                );
                            }
                        }
                    }
                    removed
                });
            }
            return removed;
        }
        let removed = self.shards.map_shards(|_| {
            let cache = self.vis_cache.clone();
            let agg_cache = self.agg_cache.clone();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                let mut removed = 0u64;
                for (cube_name, cube_bricks) in bricks.iter_mut() {
                    for (&bid, brick) in cube_bricks.iter_mut() {
                        removed += brick.rollback(epoch);
                        // Mutation class: rollback.
                        invalidate_brick(&cache, &agg_cache, &(Arc::from(cube_name.as_str()), bid));
                    }
                }
                removed
            })
        });
        removed.into_iter().sum()
    }

    /// Runs a query under `mode`.
    pub fn query(
        &self,
        cube: &str,
        query: &Query,
        mode: IsolationMode,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        self.ops.queries.inc();
        match mode {
            IsolationMode::Snapshot => {
                // Register the snapshot so LSE (and purge) cannot pass
                // it mid-scan.
                let guard = self.manager.begin_read();
                let snapshot = guard.snapshot().clone();
                self.execute(&cube, &resolved, Some(snapshot))
            }
            IsolationMode::ReadUncommitted => self.execute(&cube, &resolved, None),
        }
    }

    /// Runs a query inside an explicit transaction (sees its own
    /// uncommitted appends).
    pub fn query_in_txn(
        &self,
        cube: &str,
        query: &Query,
        txn: &Txn,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let guard = self.manager.guard_snapshot(txn.snapshot().clone());
        self.execute(&cube, &resolved, Some(guard.snapshot().clone()))
    }

    /// Time travel: runs a query against the committed snapshot as of
    /// `epoch` — any epoch still inside the readable window
    /// `[LSE, LCE]`. AOSI gets this almost for free: a committed
    /// epoch *is* a consistent snapshot (the LCE rule guarantees
    /// everything at or below it finished), and purge has not yet
    /// merged history above LSE. The read is guarded so LSE cannot
    /// pass it mid-scan.
    pub fn query_as_of(
        &self,
        cube: &str,
        query: &Query,
        epoch: Epoch,
    ) -> Result<QueryResult, CubrickError> {
        // Register the read guard BEFORE validating the window:
        // guard registration and the LSE advance share one lock, so
        // an epoch that passes the check below cannot be purged for
        // the lifetime of the guard. (Checking first and guarding
        // after left a window where a concurrent advance_lse + purge
        // could compact history under an already-validated epoch.)
        let guard = self.manager.guard_snapshot(Snapshot::committed(epoch));
        let (lse, lce) = (self.manager.lse(), self.manager.lce());
        if epoch < lse || epoch > lce {
            return Err(CubrickError::EpochOutOfRange {
                requested: epoch,
                lse,
                lce,
            });
        }
        self.ops.queries.inc();
        self.query_at(cube, query, guard.snapshot())
    }

    /// Runs a query against an externally supplied snapshot (the
    /// distributed engine uses this: one consistent snapshot, many
    /// nodes). The caller is responsible for guarding the snapshot.
    pub fn query_at(
        &self,
        cube: &str,
        query: &Query,
        snapshot: &Snapshot,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        self.execute(&cube, &resolved, Some(snapshot.clone()))
    }

    /// Differential-testing reference: the same result as
    /// [`Engine::query_at`], but forced down the sequential scan path
    /// with the visibility cache bypassed, regardless of the engine's
    /// configuration. The scan-oracle layer compares the default
    /// (parallel + cached) path against this byte-for-byte.
    pub fn query_at_reference(
        &self,
        cube: &str,
        query: &Query,
        snapshot: &Snapshot,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let merged = self.execute_partial_with(
            &cube,
            &resolved,
            Some(snapshot.clone()),
            ScanConfig::sequential_uncached(),
            None,
            None,
            None,
            None,
        )?;
        Ok(QueryResult::finalize(&cube, &resolved, merged))
    }

    /// Runs a query like [`Engine::query_at`], additionally invoking
    /// `on_partial` with a finalized snapshot of the merged-so-far
    /// result each time a scan task's partial lands at the
    /// coordinator. Refinements arrive in the executor's
    /// deterministic merge order; the returned result is the complete
    /// one (identical to what `query_at` would produce). The server's
    /// progressive mode streams these refinements to the client.
    pub fn query_at_with_progress(
        &self,
        cube: &str,
        query: &Query,
        snapshot: &Snapshot,
        mut on_partial: impl FnMut(QueryResult),
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let mut forward = |partial: &PartialResult| {
            on_partial(QueryResult::finalize(&cube, &resolved, partial.clone()));
        };
        let merged = self.execute_partial_with(
            &cube,
            &resolved,
            Some(snapshot.clone()),
            self.scan_config,
            self.vis_cache.clone(),
            self.agg_cache.clone(),
            None,
            Some(&mut forward),
        )?;
        Ok(QueryResult::finalize(&cube, &resolved, merged))
    }

    /// [`Engine::query_as_of`] with progressive refinements: the
    /// same guarded `[LSE, LCE]` window check, but `on_partial`
    /// observes the merged-so-far result after each scan task lands.
    /// The server's progressive `/query` mode is a thin wrapper over
    /// this.
    pub fn query_as_of_with_progress(
        &self,
        cube: &str,
        query: &Query,
        epoch: Epoch,
        on_partial: impl FnMut(QueryResult),
    ) -> Result<QueryResult, CubrickError> {
        // Guard before validating, exactly like `query_as_of`: the
        // guard and the LSE advance share a lock, so a validated
        // epoch cannot be purged mid-stream.
        let guard = self.manager.guard_snapshot(Snapshot::committed(epoch));
        let (lse, lce) = (self.manager.lse(), self.manager.lce());
        if epoch < lse || epoch > lce {
            return Err(CubrickError::EpochOutOfRange {
                requested: epoch,
                lse,
                lce,
            });
        }
        self.ops.queries.inc();
        self.query_at_with_progress(cube, query, guard.snapshot(), on_partial)
    }

    /// Runs the scan fan-out but returns the *per-brick* partials
    /// instead of merging them: one [`PartialResult`] per scanned
    /// brick, ordered by shard then brick id ascending — the same
    /// deterministic order the merge paths fold in.
    /// [`Engine::finalize_partials`] completes the query from any
    /// partitioning of this list; the merge oracle exercises every
    /// other association and ordering against the single-pass
    /// reference.
    pub fn query_brick_partials(
        &self,
        cube: &str,
        query: &Query,
        snapshot: &Snapshot,
    ) -> Result<Vec<PartialResult>, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let cube_key: Arc<str> = Arc::from(cube.name());
        let shape = Arc::new(AggQueryShape::of(&resolved, self.scan_config.kernel));
        let mut per_shard_bids: Vec<Vec<u64>> = self.shards.map_shards(|_| {
            let name = cube.name().to_owned();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                bricks
                    .get(&name)
                    .map(|m| {
                        let mut bids: Vec<u64> = m.keys().copied().collect();
                        bids.sort_unstable();
                        bids
                    })
                    .unwrap_or_default()
            })
        });
        if let Some(tier) = &self.tier {
            let mut resort = false;
            for bid in tier.spilled_bids(cube.name()) {
                let shard = self.shards.shard_of(bid);
                if !per_shard_bids[shard].contains(&bid) {
                    per_shard_bids[shard].push(bid);
                    resort = true;
                }
            }
            if resort {
                for bids in &mut per_shard_bids {
                    bids.sort_unstable();
                }
            }
        }
        let mut out = Vec::new();
        for (shard, bids) in per_shard_bids.into_iter().enumerate() {
            let targets: Vec<u64> = bids
                .into_iter()
                .filter(|&bid| resolved.brick_can_match(&cube, bid))
                .collect();
            if targets.is_empty() {
                continue;
            }
            let task_cube = cube.clone();
            let resolved = resolved.clone();
            let snapshot = snapshot.clone();
            let cache = self.vis_cache.clone();
            let agg_cache = self.agg_cache.clone();
            let cube_key = Arc::clone(&cube_key);
            let shape = Arc::clone(&shape);
            let kernel = self.scan_config.kernel;
            let tier = self.tier.clone();
            let handle = self.shards.submit_handle(shard, move |bricks| {
                let mut partials = Vec::new();
                for &bid in &targets {
                    let key: BrickKey = (Arc::clone(&cube_key), bid);
                    match tier_prepare_brick(
                        tier.as_ref(),
                        &task_cube,
                        bid,
                        &key,
                        Some(&snapshot),
                        agg_cache.as_deref(),
                        &shape,
                        bricks,
                    ) {
                        Ok(TierPrepared::Resident) | Ok(TierPrepared::Reloaded) => {}
                        Ok(TierPrepared::Served(served)) => {
                            partials.push(served);
                            continue;
                        }
                        Err(reason) => return Err((bid, reason)),
                    }
                    let Some(brick) = bricks.get(task_cube.name()).and_then(|m| m.get(&bid)) else {
                        continue;
                    };
                    partials.push(scan_one_brick(
                        brick,
                        &resolved,
                        Some(&snapshot),
                        cache.as_deref(),
                        agg_cache.as_deref(),
                        &key,
                        &shape,
                        kernel,
                    ));
                }
                Ok(partials)
            });
            match handle.join() {
                Ok(Ok(partials)) => out.extend(partials),
                Ok(Err((bid, reason))) => {
                    return Err(CubrickError::TierReloadFailed {
                        cube: cube.name().to_owned(),
                        bid,
                        reason,
                    });
                }
                Err(_) => {
                    return Err(CubrickError::ScanTaskPanicked {
                        cube: cube.name().to_owned(),
                        bid: None,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Merges externally produced brick partials (in the given order,
    /// folding from the identity) and finalizes the query — the other
    /// half of [`Engine::query_brick_partials`]. The merge is
    /// associative and commutative on the workload's exact
    /// arithmetic, so any partitioning of the same brick set
    /// finalizes identically; `oracle::agg` pins that property.
    pub fn finalize_partials(
        &self,
        cube: &str,
        query: &Query,
        partials: impl IntoIterator<Item = PartialResult>,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.cube(cube)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let mut merged = PartialResult::default();
        for partial in partials {
            merged.merge(partial);
        }
        Ok(QueryResult::finalize(&cube, &resolved, merged))
    }

    fn execute(
        &self,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
    ) -> Result<QueryResult, CubrickError> {
        let started = Instant::now();
        let merged = self.execute_partial(cube, resolved, snapshot)?;
        let result = QueryResult::finalize(cube, resolved, merged);
        self.metrics.query_nanos.record_duration(started.elapsed());
        Ok(result)
    }

    /// Shard fan-out producing mergeable partial aggregates; the
    /// distributed engine merges partials across nodes before
    /// finalizing (so `Avg` stays correct).
    pub(crate) fn execute_partial(
        &self,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
    ) -> Result<PartialResult, CubrickError> {
        self.execute_partial_with(
            cube,
            resolved,
            snapshot,
            self.scan_config,
            self.vis_cache.clone(),
            self.agg_cache.clone(),
            None,
            None,
        )
    }

    /// [`Engine::execute_partial`] restricted to bricks `allowed`
    /// admits. The replica-routed distributed scan uses this: each
    /// node scans only the bricks the read router assigned to it, so
    /// a brick replicated on three hosts is counted exactly once.
    pub(crate) fn execute_partial_filtered(
        &self,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
        allowed: &dyn Fn(u64) -> bool,
    ) -> Result<PartialResult, CubrickError> {
        self.execute_partial_with(
            cube,
            resolved,
            snapshot,
            self.scan_config,
            self.vis_cache.clone(),
            self.agg_cache.clone(),
            Some(allowed),
            None,
        )
    }

    /// The scan executor behind every query path.
    ///
    /// Every path works from one deterministic work list — each
    /// shard's bids sorted ascending, pruned at the caller — and
    /// every path merges partials in that order: shard ascending,
    /// brick ascending within the shard. The default
    /// [`MergePath::Shard`] runs one task per involved shard (each
    /// folds its own bricks locally, the coordinator merges the shard
    /// partials in shard order), [`MergePath::Funnel`] funnels one
    /// task per brick through the coordinator, and the sequential
    /// fallback joins each shard task before submitting the next. All
    /// three fold the exact same sequence of brick partials, so every
    /// execution is byte-identical (aggregate sums over the
    /// workload's integer-valued floats are exact and
    /// order-independent; the deterministic order removes even the
    /// merge-order variable).
    ///
    /// `progress`, when supplied, observes the merged-so-far partial
    /// after each coordinator-side merge — the progressive query
    /// protocol's refinement stream.
    ///
    /// Bricks created *after* enumeration are safe to miss: a brick
    /// can only appear via a flush whose transaction either committed
    /// before the snapshot was taken (its bricks already existed) or
    /// is excluded by the snapshot's epoch/deps, so the rows such a
    /// brick holds are invisible to `snapshot` anyway. RU scans have
    /// no snapshot and are best-effort by definition.
    #[allow(clippy::too_many_arguments)]
    fn execute_partial_with(
        &self,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
        config: ScanConfig,
        cache: Option<Arc<VisibilityCache<BrickKey>>>,
        agg_cache: Option<Arc<AggCache>>,
        allowed: Option<&dyn Fn(u64) -> bool>,
        mut progress: Option<&mut dyn FnMut(&PartialResult)>,
    ) -> Result<PartialResult, CubrickError> {
        let shape = Arc::new(AggQueryShape::of(resolved, config.kernel));
        let cube_key: Arc<str> = Arc::from(cube.name());
        let mut per_shard_bids: Vec<Vec<u64>> = self.shards.map_shards(|_| {
            let name = cube.name().to_owned();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                bricks
                    .get(&name)
                    .map(|m| {
                        let mut bids: Vec<u64> = m.keys().copied().collect();
                        bids.sort_unstable();
                        bids
                    })
                    .unwrap_or_default()
            })
        });
        // Evicted bricks are still part of the cube: union them into
        // the work list so the scan tasks fault them in (or serve them
        // from a warm aggregate partial) behind the scan gate.
        if let Some(tier) = &self.tier {
            let mut resort = false;
            for bid in tier.spilled_bids(cube.name()) {
                let shard = self.shards.shard_of(bid);
                if !per_shard_bids[shard].contains(&bid) {
                    per_shard_bids[shard].push(bid);
                    resort = true;
                }
            }
            if resort {
                for bids in &mut per_shard_bids {
                    bids.sort_unstable();
                }
            }
        }
        let mut pruned = 0u64;
        let mut per_shard_targets: Vec<Vec<u64>> = Vec::with_capacity(per_shard_bids.len());
        for bids in per_shard_bids {
            let mut targets = Vec::with_capacity(bids.len());
            for bid in bids {
                // Bricks the read router assigned to another replica
                // are someone else's to scan — not "pruned" (the
                // cluster still reads them, just elsewhere).
                if let Some(allowed) = allowed {
                    if !allowed(bid) {
                        continue;
                    }
                }
                if resolved.brick_can_match(cube, bid) {
                    targets.push(bid);
                } else {
                    pruned += 1;
                }
            }
            per_shard_targets.push(targets);
        }
        let total_targets: usize = per_shard_targets.iter().map(Vec::len).sum();

        let mut merged = PartialResult::default();
        merged.stats.bricks_pruned = pruned;

        if total_targets >= config.parallel_threshold && config.merge == MergePath::Shard {
            // Default parallel path: one task per *involved shard*.
            // Each task folds its own bricks (sorted ascending) into a
            // single local partial, so the coordinator merges one
            // partial per shard instead of funneling every brick's
            // group table through a single thread. Per-brick
            // `catch_unwind` keeps panic attribution exact: the task
            // reports which brick blew up, the shard thread survives,
            // and the query fails with the same typed error the
            // funnel path produces.
            self.metrics.parallel_queries.inc();
            let mut handles = Vec::new();
            for (shard, targets) in per_shard_targets.iter().enumerate() {
                if targets.is_empty() {
                    continue;
                }
                merged.stats.parallel_tasks += 1;
                let task_cube = cube.clone();
                let resolved = resolved.clone();
                let snapshot = snapshot.clone();
                let cache = cache.clone();
                let agg_cache = agg_cache.clone();
                let cube_key = Arc::clone(&cube_key);
                let shape = Arc::clone(&shape);
                let kernel = config.kernel;
                let targets = targets.clone();
                let panic_injected: Vec<u64> = {
                    let set = self.panic_bids.read();
                    targets
                        .iter()
                        .copied()
                        .filter(|b| set.contains(b))
                        .collect()
                };
                let tier = self.tier.clone();
                let handle = self.shards.submit_handle(shard, move |bricks| {
                    let mut partial = PartialResult::default();
                    let mut task_nanos = Vec::new();
                    for &bid in &targets {
                        let key: BrickKey = (Arc::clone(&cube_key), bid);
                        match tier_prepare_brick(
                            tier.as_ref(),
                            &task_cube,
                            bid,
                            &key,
                            snapshot.as_ref(),
                            agg_cache.as_deref(),
                            &shape,
                            bricks,
                        ) {
                            Ok(TierPrepared::Resident) => {}
                            Ok(TierPrepared::Reloaded) => partial.stats.tier_reloads += 1,
                            Ok(TierPrepared::Served(served)) => {
                                partial.merge(served);
                                continue;
                            }
                            Err(reason) => return Err((bid, Some(reason))),
                        }
                        let Some(brick) = bricks.get(task_cube.name()).and_then(|m| m.get(&bid))
                        else {
                            // Dropped between enumeration and scan
                            // (DDL): nothing to see.
                            continue;
                        };
                        let started = Instant::now();
                        let scanned =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if panic_injected.contains(&bid) {
                                    panic!("injected scan panic for brick {bid}");
                                }
                                scan_one_brick(
                                    brick,
                                    &resolved,
                                    snapshot.as_ref(),
                                    cache.as_deref(),
                                    agg_cache.as_deref(),
                                    &key,
                                    &shape,
                                    kernel,
                                )
                            }))
                            .map_err(|_| (bid, None))?;
                        task_nanos.push(started.elapsed().as_nanos() as u64);
                        partial.merge(scanned);
                    }
                    Ok((partial, task_nanos))
                });
                handles.push(handle);
            }
            // Join in shard order: a panicking brick (or a failed
            // tier reload) fails the whole query with a typed error —
            // never a partial result.
            for handle in handles {
                match handle.join() {
                    Ok(Ok((partial, nanos))) => {
                        for n in nanos {
                            self.metrics.scan_task_nanos.record(n);
                        }
                        merged.merge(partial);
                        if let Some(observe) = progress.as_mut() {
                            observe(&merged);
                        }
                    }
                    Ok(Err((bid, None))) => {
                        return Err(CubrickError::ScanTaskPanicked {
                            cube: cube.name().to_owned(),
                            bid: Some(bid),
                        });
                    }
                    Ok(Err((bid, Some(reason)))) => {
                        return Err(CubrickError::TierReloadFailed {
                            cube: cube.name().to_owned(),
                            bid,
                            reason,
                        });
                    }
                    Err(_) => {
                        return Err(CubrickError::ScanTaskPanicked {
                            cube: cube.name().to_owned(),
                            bid: None,
                        });
                    }
                }
            }
        } else if total_targets >= config.parallel_threshold {
            // Funnel path (`MergePath::Funnel`): one task per brick,
            // every brick partial merged by the coordinator thread.
            // Kept as the pre-shard-merge baseline the bench suite
            // compares against.
            self.metrics.parallel_queries.inc();
            merged.stats.parallel_tasks = total_targets as u64;
            let mut handles = Vec::with_capacity(total_targets);
            for targets in &per_shard_targets {
                for &bid in targets {
                    let cube = cube.clone();
                    let resolved = resolved.clone();
                    let snapshot = snapshot.clone();
                    let cache = cache.clone();
                    let agg_cache = agg_cache.clone();
                    let key: BrickKey = (Arc::clone(&cube_key), bid);
                    let shape = Arc::clone(&shape);
                    let kernel = config.kernel;
                    let panic_injected = self.panic_bids.read().contains(&bid);
                    let tier = self.tier.clone();
                    let handle =
                        self.shards
                            .submit_handle(self.shards.shard_of(bid), move |bricks| {
                                if panic_injected {
                                    panic!("injected scan panic for brick {bid}");
                                }
                                let reloaded = match tier_prepare_brick(
                                    tier.as_ref(),
                                    &cube,
                                    bid,
                                    &key,
                                    snapshot.as_ref(),
                                    agg_cache.as_deref(),
                                    &shape,
                                    bricks,
                                )? {
                                    TierPrepared::Served(served) => return Ok((served, 0u64)),
                                    TierPrepared::Resident => false,
                                    TierPrepared::Reloaded => true,
                                };
                                let Some(brick) = bricks.get(cube.name()).and_then(|m| m.get(&bid))
                                else {
                                    // Dropped between enumeration and
                                    // scan (DDL): nothing to see.
                                    return Ok((PartialResult::default(), 0u64));
                                };
                                let started = Instant::now();
                                let mut partial = scan_one_brick(
                                    brick,
                                    &resolved,
                                    snapshot.as_ref(),
                                    cache.as_deref(),
                                    agg_cache.as_deref(),
                                    &key,
                                    &shape,
                                    kernel,
                                );
                                if reloaded {
                                    partial.stats.tier_reloads = 1;
                                }
                                Ok((partial, started.elapsed().as_nanos() as u64))
                            });
                    handles.push((bid, handle));
                }
            }
            // Join in submission order: a panicking task (or failed
            // tier reload) fails the whole query with a typed error —
            // never a partial result.
            for (bid, handle) in handles {
                match handle.join() {
                    Ok(Ok((partial, task_nanos))) => {
                        self.metrics.scan_task_nanos.record(task_nanos);
                        merged.merge(partial);
                        if let Some(observe) = progress.as_mut() {
                            observe(&merged);
                        }
                    }
                    Ok(Err(reason)) => {
                        return Err(CubrickError::TierReloadFailed {
                            cube: cube.name().to_owned(),
                            bid,
                            reason,
                        });
                    }
                    Err(_) => {
                        return Err(CubrickError::ScanTaskPanicked {
                            cube: cube.name().to_owned(),
                            bid: Some(bid),
                        });
                    }
                }
            }
        } else {
            // Sequential fallback: one task per involved shard walks
            // its own bids in sorted order, and each task is joined
            // before the next is submitted — no concurrency at all.
            // Below the threshold the query touches so few bricks
            // that waking every shard thread costs more than it buys;
            // this is also the reference executor's semantics
            // (`query_at_reference`), so "sequential" genuinely means
            // one brick scan at a time.
            self.metrics.sequential_queries.inc();
            for (shard, targets) in per_shard_targets.into_iter().enumerate() {
                if targets.is_empty() {
                    continue;
                }
                let task_cube = cube.clone();
                let resolved = resolved.clone();
                let snapshot = snapshot.clone();
                let cache = cache.clone();
                let agg_cache = agg_cache.clone();
                let cube_key = Arc::clone(&cube_key);
                let shape = Arc::clone(&shape);
                let kernel = config.kernel;
                let panic_injected: Vec<u64> = {
                    let set = self.panic_bids.read();
                    targets
                        .iter()
                        .copied()
                        .filter(|b| set.contains(b))
                        .collect()
                };
                let tier = self.tier.clone();
                let handle = self.shards.submit_handle(shard, move |bricks| {
                    let mut partial = PartialResult::default();
                    let mut task_nanos = Vec::new();
                    for &bid in &targets {
                        if panic_injected.contains(&bid) {
                            panic!("injected scan panic for brick {bid}");
                        }
                        let key: BrickKey = (Arc::clone(&cube_key), bid);
                        match tier_prepare_brick(
                            tier.as_ref(),
                            &task_cube,
                            bid,
                            &key,
                            snapshot.as_ref(),
                            agg_cache.as_deref(),
                            &shape,
                            bricks,
                        ) {
                            Ok(TierPrepared::Resident) => {}
                            Ok(TierPrepared::Reloaded) => partial.stats.tier_reloads += 1,
                            Ok(TierPrepared::Served(served)) => {
                                partial.merge(served);
                                continue;
                            }
                            Err(reason) => return Err((bid, reason)),
                        }
                        let Some(brick) = bricks.get(task_cube.name()).and_then(|m| m.get(&bid))
                        else {
                            continue;
                        };
                        let started = Instant::now();
                        let scanned = scan_one_brick(
                            brick,
                            &resolved,
                            snapshot.as_ref(),
                            cache.as_deref(),
                            agg_cache.as_deref(),
                            &key,
                            &shape,
                            kernel,
                        );
                        task_nanos.push(started.elapsed().as_nanos() as u64);
                        partial.merge(scanned);
                    }
                    Ok((partial, task_nanos))
                });
                match handle.join() {
                    Ok(Ok((partial, nanos))) => {
                        for n in nanos {
                            self.metrics.scan_task_nanos.record(n);
                        }
                        merged.merge(partial);
                        if let Some(observe) = progress.as_mut() {
                            observe(&merged);
                        }
                    }
                    Ok(Err((bid, reason))) => {
                        return Err(CubrickError::TierReloadFailed {
                            cube: cube.name().to_owned(),
                            bid,
                            reason,
                        });
                    }
                    Err(_) => {
                        return Err(CubrickError::ScanTaskPanicked {
                            cube: cube.name().to_owned(),
                            bid: None,
                        });
                    }
                }
            }
        }

        self.metrics
            .visibility_build_nanos
            .add(merged.stats.visibility_build_nanos);
        self.metrics.scan_nanos.add(merged.stats.scan_nanos);
        Ok(merged)
    }

    /// Partition-level delete: marks every brick whose entire
    /// coordinate range is contained in `filters` as deleted, in one
    /// implicit transaction. Empty `filters` deletes every brick of
    /// the cube. Returns the transaction's epoch and the number of
    /// bricks marked.
    ///
    /// Filter values that do not resolve to a coordinate — a string
    /// never seen by the dimension's dictionary, an integer outside
    /// the dimension's declared range, or a value of the wrong type —
    /// **narrow the match** rather than raising an error: they are
    /// dropped from the filter's coordinate set, exactly as the query
    /// path treats them (`encode_filter_value` never mints dictionary
    /// ids). A filter whose values all fail to resolve therefore
    /// matches nothing, and the call succeeds with zero bricks marked
    /// and a committed (empty) delete epoch. Misspelled *column*
    /// names, by contrast, are an [`CubrickError::UnknownColumn`]
    /// error before any brick is touched.
    pub fn delete_where(
        &self,
        cube: &str,
        filters: &[crate::query::DimFilter],
    ) -> Result<(Epoch, u64), CubrickError> {
        let cube = self.cube(cube)?;
        let txn = self.manager.begin_rw();
        let marked = self.mark_delete_where(&cube, filters, txn.epoch())?;
        self.manager.commit(&txn)?;
        self.ops.deletes.inc();
        Ok((txn.epoch(), marked))
    }

    /// Marks matching bricks deleted under an existing transaction
    /// epoch (the distributed delete flow shares one epoch across
    /// nodes). Returns bricks marked on this node.
    pub(crate) fn mark_delete_where(
        &self,
        cube: &Cube,
        filters: &[crate::query::DimFilter],
        epoch: Epoch,
    ) -> Result<u64, CubrickError> {
        // A partition delete walks every brick of the cube, so every
        // spilled brick must be resident first — an evicted brick the
        // walk misses would silently keep its rows.
        self.fault_in_cube(cube.name())?;
        // Resolve filter values to coordinate sets.
        let mut resolved: Vec<(usize, std::collections::HashSet<u32>)> = Vec::new();
        for f in filters {
            let dim = cube
                .schema()
                .dim_index(&f.dim)
                .ok_or_else(|| CubrickError::UnknownColumn(f.dim.clone()))?;
            let coords = f
                .values
                .iter()
                .filter_map(|v| cube.encode_filter_value(dim, v))
                .collect();
            resolved.push((dim, coords));
        }
        let cube_key: Arc<str> = Arc::from(cube.name());
        let marked = self.shards.map_shards(|_| {
            let cube = cube.clone();
            let resolved = resolved.clone();
            let cache = self.vis_cache.clone();
            let agg_cache = self.agg_cache.clone();
            let cube_key = Arc::clone(&cube_key);
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                let mut marked = 0u64;
                let Some(cube_bricks) = bricks.get_mut(cube.name()) else {
                    return marked;
                };
                let layout = cube.layout();
                for (&bid, brick) in cube_bricks.iter_mut() {
                    let ranges = layout.range_indexes_of_bid(bid);
                    let contained = resolved.iter().all(|(dim, coords)| {
                        let (lo, hi) = layout.range_bounds(*dim, ranges[*dim]);
                        (lo..hi).all(|c| coords.contains(&c))
                    });
                    if contained {
                        brick.mark_delete(epoch);
                        marked += 1;
                        // Mutation class: partition delete.
                        invalidate_brick(&cache, &agg_cache, &(Arc::clone(&cube_key), bid));
                    }
                }
                marked
            })
        });
        Ok(marked.into_iter().sum())
    }

    /// Runs one purge cycle at the current LSE over every brick
    /// (Section III-C4).
    pub fn purge(&self) -> PurgeStats {
        self.ops.purges.inc();
        let lse = self.manager.lse();
        let stats = self.shards.map_shards(|_| {
            let cache = self.vis_cache.clone();
            let agg_cache = self.agg_cache.clone();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                let mut stats = PurgeStats::default();
                for (cube_name, cube_bricks) in bricks.iter_mut() {
                    for (&bid, brick) in cube_bricks.iter_mut() {
                        if !brick.needs_purge(lse) {
                            continue;
                        }
                        let (rows, entries) = brick.purge(lse);
                        stats.rows_purged += rows;
                        stats.entries_reclaimed += entries as u64;
                        stats.bricks_changed += 1;
                        // Mutation class: purge / LSE advance.
                        invalidate_brick(&cache, &agg_cache, &(Arc::from(cube_name.as_str()), bid));
                    }
                }
                stats
            })
        });
        let total = stats.into_iter().fold(PurgeStats::default(), |mut a, s| {
            a.rows_purged += s.rows_purged;
            a.entries_reclaimed += s.entries_reclaimed;
            a.bricks_changed += s.bricks_changed;
            a
        });
        self.ops.rows_purged.add(total.rows_purged);
        self.ops.entries_reclaimed.add(total.entries_reclaimed);
        total
    }

    /// Convenience used by the flush machinery and the benches:
    /// advance LSE as far as the manager allows (up to LCE), then
    /// purge. Durability gating belongs to the `wal` crate.
    pub fn advance_lse_and_purge(&self) -> PurgeStats {
        let lce = self.manager.lce();
        let stats = if self.manager.advance_lse(lce).is_ok() {
            self.purge()
        } else {
            PurgeStats::default()
        };
        // An LSE advance is what turns bricks clean-cold, so this is
        // the natural eviction point.
        if self.tier.is_some() {
            self.enforce_tier_budget();
        }
        stats
    }

    /// Drops any cached visibility/aggregate artifacts for one brick
    /// (crate-internal: the handoff install path mutates bricks
    /// outside the flush machinery).
    pub(crate) fn invalidate_brick_caches(&self, cube: &str, bid: u64) {
        invalidate_brick(&self.vis_cache, &self.agg_cache, &(Arc::from(cube), bid));
    }

    /// Brick ids this node currently stores for `cube`, ascending.
    pub(crate) fn brick_bids(&self, cube: &str) -> Vec<u64> {
        let name = cube.to_owned();
        let per_shard: Vec<Vec<u64>> = self.shards.map_shards(|_| {
            let name = name.clone();
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                bricks
                    .get(&name)
                    .map(|m| m.keys().copied().collect())
                    .unwrap_or_default()
            })
        });
        let mut bids: Vec<u64> = per_shard.into_iter().flatten().collect();
        if let Some(tier) = &self.tier {
            for bid in tier.spilled_bids(cube) {
                if !bids.contains(&bid) {
                    bids.push(bid);
                }
            }
        }
        bids.sort_unstable();
        bids
    }

    /// Whether this node stores `bid` of `cube`.
    pub(crate) fn has_brick(&self, cube: &str, bid: u64) -> bool {
        let name = cube.to_owned();
        self.shards
            .map_shards(|shard| {
                let name = name.clone();
                let here = shard == self.shards.shard_of(bid);
                Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                    here && bricks.get(&name).is_some_and(|m| m.contains_key(&bid))
                })
            })
            .into_iter()
            .any(|b| b)
            || self
                .tier
                .as_ref()
                .is_some_and(|tier| tier.is_spilled(cube, bid))
    }

    /// Removes one brick from its shard (rebalance retire / failed
    /// handoff cleanup), invalidating its cached artifacts. Returns
    /// whether the brick existed. The caller owns read-safety: no
    /// query may be routed here for this brick anymore.
    pub(crate) fn remove_brick(&self, cube: &str, bid: u64) -> bool {
        let shard = self.shards.shard_of(bid);
        let name = cube.to_owned();
        let removed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&removed);
        self.shards.submit(shard, move |bricks| {
            if let Some(cube_bricks) = bricks.get_mut(&name) {
                flag.store(
                    cube_bricks.remove(&bid).is_some(),
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        });
        self.shards.submit_and_wait(shard, |_| ());
        invalidate_brick(&self.vis_cache, &self.agg_cache, &(Arc::from(cube), bid));
        let spilled = self
            .tier
            .as_ref()
            .is_some_and(|tier| tier.forget(cube, bid));
        removed.load(std::sync::atomic::Ordering::Relaxed) || spilled
    }

    /// Memory accounting across all bricks of all cubes.
    pub fn memory(&self) -> EngineMemory {
        let per_shard: Vec<CubeMemory> = self.shards.map_shards(|_| {
            Box::new(|bricks: &mut crate::shard::ShardBricks| {
                let mut memory = CubeMemory::default();
                for cube_bricks in bricks.values() {
                    for brick in cube_bricks.values() {
                        let m = brick.memory();
                        memory.data_bytes += m.data_bytes;
                        memory.aosi_bytes += m.aosi_bytes;
                        memory.rows += m.rows;
                        memory.bricks += 1;
                    }
                }
                memory
            })
        });
        let mut total = EngineMemory::default();
        for m in per_shard {
            total.data_bytes += m.data_bytes;
            total.aosi_bytes += m.aosi_bytes;
            total.rows += m.rows;
            total.bricks += m.bricks;
        }
        total.dictionary_bytes = self.cubes.read().values().map(Cube::dictionary_bytes).sum();
        total.mvcc_baseline_bytes = total.rows * 16;
        total
    }
}

/// Drops every cached artifact for one brick — visibility *and*
/// aggregate — after a mutation. Both caches key on the brick's
/// generation counter, so anything left behind is unreachable anyway;
/// this reclaims the memory eagerly and keeps the two caches'
/// invalidation disciplines from drifting apart.
fn invalidate_brick(
    vis: &Option<Arc<VisibilityCache<BrickKey>>>,
    agg: &Option<Arc<AggCache>>,
    key: &BrickKey,
) {
    if let Some(cache) = vis {
        cache.invalidate(key);
    }
    if let Some(cache) = agg {
        cache.invalidate(key);
    }
}

/// What [`tier_prepare_brick`] decided about one work-list brick.
enum TierPrepared {
    /// Nothing tiered to do: the brick is resident (or gone entirely,
    /// which the caller's own map lookup handles).
    Resident,
    /// The brick was evicted and has been faulted back in; scan it.
    Reloaded,
    /// The brick stays on disk: a warm aggregate-cache partial — keyed
    /// on the retained epochs vector, whose generation eviction
    /// preserved — answered for it.
    Served(PartialResult),
}

/// Runs on the owning shard thread before a work-list brick is
/// scanned, when tiered storage is on. Resident bricks get a recency
/// touch (feeding eviction ranking); evicted bricks are either
/// answered from the aggregate cache without touching disk or faulted
/// back in behind the scan gate. `Err` carries the reload failure
/// reason — the query must fail, a partial aggregate missing one
/// brick's rows would be silently wrong.
#[allow(clippy::too_many_arguments)]
fn tier_prepare_brick(
    tier: Option<&Arc<TieredStore>>,
    cube: &Cube,
    bid: u64,
    key: &BrickKey,
    snapshot: Option<&Snapshot>,
    agg_cache: Option<&AggCache>,
    shape: &Arc<AggQueryShape>,
    bricks: &mut crate::shard::ShardBricks,
) -> Result<TierPrepared, String> {
    let Some(tier) = tier else {
        return Ok(TierPrepared::Resident);
    };
    if bricks
        .get(cube.name())
        .is_some_and(|m| m.contains_key(&bid))
    {
        tier.touch(cube.name(), bid);
        return Ok(TierPrepared::Resident);
    }
    if !tier.is_spilled(cube.name(), bid) {
        // Dropped between enumeration and scan (DDL): the caller's
        // map lookup skips it.
        return Ok(TierPrepared::Resident);
    }
    if let (Some(agg_cache), Some(snap)) = (agg_cache, snapshot) {
        if let Some(epochs) = tier.spilled_epochs(cube.name(), bid) {
            if let Some(cached) = agg_cache.peek(key, &epochs, snap, Arc::clone(shape)) {
                tier.note_cache_serve();
                let mut partial = cached.replay();
                partial.stats.tier_cache_serves = 1;
                return Ok(TierPrepared::Served(partial));
            }
        }
    }
    tier.reload_into(cube, bid, bricks)
        .map(|_| TierPrepared::Reloaded)
}

/// Scans one brick, consulting the aggregate cache first: a hit
/// replays the brick's grouped [`crate::AggState`] table without
/// touching the brick's columns (the visibility build is skipped
/// too — the cached partial was keyed on the same generation +
/// snapshot that a fresh build would use). Runs on the shard thread
/// that owns the brick, which is what makes both cache probes
/// race-free.
///
/// RU scans (no snapshot) bypass both caches — there is no snapshot
/// to key on.
#[allow(clippy::too_many_arguments)]
fn scan_one_brick(
    brick: &Brick,
    resolved: &ResolvedQuery,
    snapshot: Option<&Snapshot>,
    cache: Option<&VisibilityCache<BrickKey>>,
    agg_cache: Option<&AggCache>,
    key: &BrickKey,
    shape: &Arc<AggQueryShape>,
    kernel: ScanKernel,
) -> PartialResult {
    let (Some(agg_cache), Some(snap)) = (agg_cache, snapshot) else {
        return scan_one_brick_uncached(brick, resolved, snapshot, cache, key, kernel);
    };
    // On a miss the builder runs the real scan and hands the cache a
    // scrubbed capture, keeping the full partial (live work counters
    // included) for this query's own result.
    let mut fresh: Option<PartialResult> = None;
    let (cached, _hit) =
        agg_cache.get_or_build(key, brick.epochs(), snap, Arc::clone(shape), || {
            let scanned = scan_one_brick_uncached(brick, resolved, snapshot, cache, key, kernel);
            let captured = CachedAgg::capture(&scanned);
            fresh = Some(scanned);
            captured
        });
    match fresh {
        Some(mut scanned) => {
            scanned.stats.agg_cache_misses = 1;
            scanned
        }
        None => cached.replay(),
    }
}

/// Scans one brick under an optional snapshot, consulting the
/// visibility cache when one is configured. Runs on the shard thread
/// that owns the brick, which is what makes the cache probe
/// race-free: the brick cannot mutate underneath the lookup, and any
/// insert lands before the shard applies a later mutation.
///
/// RU scans (no snapshot) bypass the cache — there is no snapshot to
/// key on and the artifact is trivial.
fn scan_one_brick_uncached(
    brick: &Brick,
    resolved: &ResolvedQuery,
    snapshot: Option<&Snapshot>,
    cache: Option<&VisibilityCache<BrickKey>>,
    key: &BrickKey,
    kernel: ScanKernel,
) -> PartialResult {
    let mut hits = 0u64;
    let mut misses = 0u64;
    let vis_started = Instant::now();
    let mut scanned = if resolved.filters.is_empty() {
        // Unfiltered scans never need a bitmap: walk the visible
        // ranges (SI) or the whole brick (RU) directly.
        let ranges: Arc<Vec<std::ops::Range<u64>>> = match snapshot {
            Some(snap) => match cache {
                Some(cache) => {
                    let (ranges, hit) = cache.ranges(key, brick.epochs(), snap);
                    if hit {
                        hits = 1;
                    } else {
                        misses = 1;
                    }
                    ranges
                }
                None => Arc::new(brick.epochs().visible_ranges(snap)),
            },
            #[allow(clippy::single_range_in_vec_init)]
            None => Arc::new(vec![0..brick.row_count()]),
        };
        let vis_nanos = vis_started.elapsed();
        let scan_started = Instant::now();
        let mut scanned = match kernel {
            ScanKernel::Vectorized => {
                crate::query::scan_brick_ranges_vectorized(brick, &ranges, resolved)
            }
            ScanKernel::RowAtATime => crate::query::scan_brick_ranges(brick, &ranges, resolved),
        };
        scanned.stats.scan_nanos = scan_started.elapsed().as_nanos() as u64;
        scanned.stats.visibility_build_nanos = vis_nanos.as_nanos() as u64;
        scanned
    } else {
        let visibility: Arc<Bitmap> = match snapshot {
            Some(snap) => match cache {
                Some(cache) => {
                    let (bitmap, hit) = cache.bitmap(key, brick.epochs(), snap);
                    if hit {
                        hits = 1;
                    } else {
                        misses = 1;
                    }
                    bitmap
                }
                None => Arc::new(brick.visibility(snap)),
            },
            None => Arc::new(brick.all_rows()),
        };
        let vis_nanos = vis_started.elapsed();
        let scan_started = Instant::now();
        let mut scanned = match kernel {
            ScanKernel::Vectorized => {
                crate::query::scan_brick_shared_vectorized(brick, &visibility, resolved)
            }
            ScanKernel::RowAtATime => crate::query::scan_brick_shared(brick, &visibility, resolved),
        };
        scanned.stats.scan_nanos = scan_started.elapsed().as_nanos() as u64;
        scanned.stats.visibility_build_nanos = vis_nanos.as_nanos() as u64;
        scanned
    };
    scanned.stats.vis_cache_hits = hits;
    scanned.stats.vis_cache_misses = misses;
    scanned
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cubes", &self.cubes.read().len())
            .field("shards", &self.shards.num_shards())
            .field("manager", &self.manager)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{Dimension, Metric};
    use crate::query::{AggFn, Aggregation, DimFilter};
    use columnar::Value;

    fn events_schema() -> CubeSchema {
        CubeSchema::new(
            "events",
            vec![
                Dimension::string("region", 8, 2),
                Dimension::int("day", 16, 4),
            ],
            vec![Metric::int("likes"), Metric::float("score")],
        )
        .unwrap()
    }

    fn engine() -> Engine {
        let engine = Engine::new(4);
        engine.create_cube(events_schema()).unwrap();
        engine
    }

    fn row(region: &str, day: i64, likes: i64, score: f64) -> Row {
        vec![
            Value::from(region),
            Value::from(day),
            Value::from(likes),
            Value::from(score),
        ]
    }

    fn sum_likes(engine: &Engine, mode: IsolationMode) -> f64 {
        engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                mode,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0)
    }

    #[test]
    fn load_then_query_roundtrip() {
        let engine = engine();
        let outcome = engine
            .load(
                "events",
                &[
                    row("us", 0, 10, 1.0),
                    row("br", 1, 20, 2.0),
                    row("us", 9, 30, 3.0),
                ],
                0,
            )
            .unwrap();
        assert_eq!(outcome.accepted, 3);
        assert_eq!(outcome.rejected, 0);
        assert!(outcome.bricks_touched >= 2);
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 60.0);
    }

    #[test]
    fn max_rejected_discards_whole_batch() {
        let engine = engine();
        let result = engine.load(
            "events",
            &[row("us", 0, 1, 0.0), row("us", 99, 2, 0.0)], // day 99 invalid
            0,
        );
        assert!(matches!(
            result,
            Err(CubrickError::TooManyRejected { rejected: 1, .. })
        ));
        assert_eq!(sum_likes(&engine, IsolationMode::ReadUncommitted), 0.0);
        // With tolerance, the valid row lands.
        let outcome = engine
            .load("events", &[row("us", 0, 1, 0.0), row("us", 99, 2, 0.0)], 1)
            .unwrap();
        assert_eq!(outcome.accepted, 1);
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 1.0);
    }

    #[test]
    fn uncommitted_txn_invisible_to_si_visible_to_ru() {
        let engine = engine();
        engine.load("events", &[row("us", 0, 5, 0.0)], 0).unwrap();
        let txn = engine.begin();
        engine
            .append("events", &[row("br", 1, 100, 0.0)], &txn)
            .unwrap();
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 5.0);
        assert_eq!(sum_likes(&engine, IsolationMode::ReadUncommitted), 105.0);
        // The transaction itself sees its own append.
        let own = engine
            .query_in_txn(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                &txn,
            )
            .unwrap();
        assert_eq!(own.scalar(), Some(105.0));
        engine.commit(&txn).unwrap();
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 105.0);
    }

    #[test]
    fn rollback_physically_removes_rows() {
        let engine = engine();
        engine.load("events", &[row("us", 0, 5, 0.0)], 0).unwrap();
        let txn = engine.begin();
        engine
            .append(
                "events",
                &[row("br", 1, 100, 0.0), row("mx", 2, 200, 0.0)],
                &txn,
            )
            .unwrap();
        let removed = engine.rollback(&txn).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(sum_likes(&engine, IsolationMode::ReadUncommitted), 5.0);
        assert!(engine.manager().rolled_back_epochs().is_empty());
    }

    #[test]
    fn delete_where_marks_only_contained_bricks() {
        let engine = engine();
        // day ranges are [0,4), [4,8), [8,12), [12,16).
        engine
            .load(
                "events",
                &[
                    row("us", 0, 1, 0.0),
                    row("us", 5, 2, 0.0),
                    row("us", 9, 4, 0.0),
                ],
                0,
            )
            .unwrap();
        // Predicate covering exactly day-range [4,8).
        let (epoch, marked) = engine
            .delete_where(
                "events",
                &[DimFilter::new(
                    "day",
                    (4..8).map(|d| Value::from(d as i64)).collect(),
                )],
            )
            .unwrap();
        assert!(epoch > 0);
        assert_eq!(marked, 1);
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 5.0);
        // A predicate not covering a whole range deletes nothing.
        let (_, marked) = engine
            .delete_where("events", &[DimFilter::new("day", vec![Value::from(0i64)])])
            .unwrap();
        assert_eq!(marked, 0);
    }

    #[test]
    fn delete_everything_then_purge_reclaims() {
        let engine = engine();
        engine
            .load(
                "events",
                &(0..100)
                    .map(|i| row("us", i % 16, i, 0.0))
                    .collect::<Vec<_>>(),
                0,
            )
            .unwrap();
        let (_, marked) = engine.delete_where("events", &[]).unwrap();
        assert!(marked >= 1);
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 0.0);
        let before = engine.memory();
        assert_eq!(before.rows, 100);
        let stats = engine.advance_lse_and_purge();
        assert_eq!(stats.rows_purged, 100);
        let after = engine.memory();
        assert_eq!(after.rows, 0);
    }

    #[test]
    fn purge_compacts_epoch_history() {
        let engine = engine();
        for i in 0..50 {
            engine
                .load("events", &[row("us", i % 16, i, 0.0)], 0)
                .unwrap();
        }
        let before = engine.memory();
        let stats = engine.advance_lse_and_purge();
        assert!(stats.entries_reclaimed > 0);
        let after = engine.memory();
        assert!(after.aosi_bytes <= before.aosi_bytes);
        assert_eq!(after.rows, 50);
        assert_eq!(
            sum_likes(&engine, IsolationMode::Snapshot),
            (0..50).sum::<i64>() as f64
        );
    }

    #[test]
    fn memory_reports_baseline_comparison() {
        let engine = engine();
        engine
            .load(
                "events",
                &(0..1000)
                    .map(|i| row("us", i % 16, i, 0.5))
                    .collect::<Vec<_>>(),
                0,
            )
            .unwrap();
        let m = engine.memory();
        assert_eq!(m.rows, 1000);
        assert_eq!(m.mvcc_baseline_bytes, 16_000);
        assert!(m.aosi_bytes < m.mvcc_baseline_bytes as usize);
        assert!(m.data_bytes > 0);
        assert!(m.dictionary_bytes > 0);
    }

    #[test]
    fn grouped_filtered_query_end_to_end() {
        let engine = engine();
        engine
            .load(
                "events",
                &[
                    row("us", 0, 10, 1.0),
                    row("us", 5, 20, 2.0),
                    row("br", 0, 40, 4.0),
                    row("mx", 0, 80, 8.0),
                ],
                0,
            )
            .unwrap();
        let result = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                    .filter(DimFilter::new(
                        "region",
                        vec![Value::from("us"), Value::from("br")],
                    ))
                    .grouped_by("region"),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.rows.len(), 2);
        let by_key: std::collections::HashMap<String, f64> = result
            .rows
            .iter()
            .map(|(k, v)| (k[0].to_string(), v[0]))
            .collect();
        assert_eq!(by_key["us"], 30.0);
        assert_eq!(by_key["br"], 40.0);
    }

    #[test]
    fn unknown_cube_errors() {
        let engine = engine();
        assert!(matches!(
            engine.load("nope", &[], 0),
            Err(CubrickError::UnknownCube(_))
        ));
        assert!(matches!(
            engine.query("nope", &Query::default(), IsolationMode::Snapshot),
            Err(CubrickError::UnknownCube(_))
        ));
        assert!(matches!(
            engine.create_cube(
                CubeSchema::new("events", vec![Dimension::int("d", 2, 1)], vec![]).unwrap()
            ),
            Err(CubrickError::CubeExists(_))
        ));
    }

    #[test]
    fn rollback_index_produces_identical_results() {
        // Same schedule, with and without the Section III-C5 index:
        // identical visible state, and the indexed engine forgets
        // entries on commit (bounded footprint).
        let plain = engine();
        let indexed = Engine::new(4).with_rollback_index();
        indexed
            .create_cube(
                CubeSchema::new(
                    "events",
                    vec![
                        Dimension::string("region", 8, 2),
                        Dimension::int("day", 16, 4),
                    ],
                    vec![Metric::int("likes"), Metric::float("score")],
                )
                .unwrap(),
            )
            .unwrap();
        for engine in [&plain, &indexed] {
            engine
                .load("events", &[row("us", 0, 5, 0.0), row("br", 9, 7, 0.0)], 0)
                .unwrap();
            let txn = engine.begin();
            engine
                .append("events", &[row("mx", 3, 100, 0.0)], &txn)
                .unwrap();
            assert_eq!(engine.rollback(&txn).unwrap(), 1);
        }
        assert_eq!(
            sum_likes(&plain, IsolationMode::ReadUncommitted),
            sum_likes(&indexed, IsolationMode::ReadUncommitted)
        );
        let index = indexed.rollback_index().unwrap();
        assert!(
            index.is_empty(),
            "commit/rollback must forget index entries"
        );
    }

    #[test]
    fn time_travel_reads_historical_snapshots() {
        let engine = engine();
        engine.load("events", &[row("us", 0, 10, 0.0)], 0).unwrap(); // T1
        engine.load("events", &[row("us", 1, 20, 0.0)], 0).unwrap(); // T2
        engine.delete_where("events", &[]).unwrap(); // T3
        engine.load("events", &[row("us", 2, 40, 0.0)], 0).unwrap(); // T4

        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let at = |epoch| {
            engine
                .query_as_of("events", &q, epoch)
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
        };
        assert_eq!(at(1), 10.0);
        assert_eq!(at(2), 30.0);
        assert_eq!(at(3), 0.0, "the delete is visible at its own epoch");
        assert_eq!(at(4), 40.0);

        // Out of window: above LCE or below LSE.
        assert!(matches!(
            engine.query_as_of("events", &q, 99),
            Err(CubrickError::EpochOutOfRange { .. })
        ));
        engine.manager().advance_lse(3).unwrap();
        engine.purge();
        assert!(matches!(
            engine.query_as_of("events", &q, 2),
            Err(CubrickError::EpochOutOfRange { .. })
        ));
        assert_eq!(at(4), 40.0, "window floor moved, newest still readable");
    }

    #[test]
    fn time_travel_read_blocks_purge_past_it() {
        let engine = engine();
        engine.load("events", &[row("us", 0, 1, 0.0)], 0).unwrap();
        engine.load("events", &[row("us", 1, 2, 0.0)], 0).unwrap();
        // Hold a guard at epoch 1 (simulating a long historical scan).
        let guard = engine
            .manager()
            .guard_snapshot(aosi::Snapshot::committed(1));
        assert!(engine.manager().advance_lse(2).is_err());
        drop(guard);
        engine.manager().advance_lse(2).unwrap();
    }

    #[test]
    fn query_as_of_guards_before_validating() {
        // Regression: query_as_of used to validate the epoch window
        // first and register the read guard after, leaving a window
        // where a concurrent advance_lse + purge could compact
        // history under an already-validated epoch. Race historical
        // reads against a writer marching LSE forward: every read
        // must either fail the window check or see exactly its
        // epoch's data.
        use std::sync::Arc;
        let engine = Arc::new(engine());
        for i in 0..60i64 {
            engine
                .load("events", &[row("us", i % 16, 1, 0.0)], 0)
                .unwrap();
        }
        let writer = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for e in 1..=60 {
                    if engine.manager().advance_lse(e).is_ok() {
                        engine.purge();
                    }
                }
            })
        };
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let mut ok_reads = 0u32;
        for e in (1..=60u64).rev().chain(1..=60) {
            match engine.query_as_of("events", &q, e) {
                Ok(result) => {
                    ok_reads += 1;
                    assert_eq!(
                        result.scalar().unwrap_or(0.0),
                        e as f64,
                        "as-of epoch {e} must see exactly the first {e} loads"
                    );
                }
                Err(CubrickError::EpochOutOfRange { .. }) => {}
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        writer.join().unwrap();
        assert!(ok_reads > 0, "some historical reads must land");
        // The window floor moved, but the newest epoch stays readable.
        let newest = engine.query_as_of("events", &q, 60).unwrap();
        assert_eq!(newest.scalar(), Some(60.0));
    }

    #[test]
    fn query_results_carry_populated_stats() {
        let engine = engine();
        engine
            .load(
                "events",
                &[
                    row("us", 0, 10, 1.0),
                    row("br", 5, 20, 2.0),
                    row("us", 9, 30, 3.0),
                ],
                0,
            )
            .unwrap();
        // Unfiltered: the visible-ranges fast path on every brick.
        let unfiltered = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert!(unfiltered.stats.bricks_scanned >= 2);
        assert_eq!(
            unfiltered.stats.range_scans,
            unfiltered.stats.bricks_scanned
        );
        assert_eq!(unfiltered.stats.bitmap_scans, 0);
        assert_eq!(unfiltered.stats.rows_visible, 3);
        // Filtered: materialized visibility bitmaps.
        let filtered = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                    .filter(DimFilter::new("region", vec![Value::from("us")])),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert!(filtered.stats.bitmap_scans >= 1);
        assert_eq!(filtered.stats.range_scans, 0);
        assert!(
            filtered.stats.visibility_build_nanos + filtered.stats.scan_nanos > 0,
            "wall time must be recorded"
        );
        assert!(
            filtered.stats.scan_time() + filtered.stats.visibility_build_time() > Duration::ZERO
        );
    }

    #[test]
    fn metrics_report_covers_all_sections() {
        let engine = engine();
        engine.load("events", &[row("us", 0, 1, 0.0)], 0).unwrap();
        engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap();
        engine.advance_lse_and_purge();
        let report = engine.metrics_report();
        for needle in [
            "[aosi]",
            "[engine]",
            "[shards]",
            "loads = 1",
            "flushes = 1",
            "queries = 1",
            "purges = 1",
            "query_nanos.count = 1",
            "load_nanos.count = 1",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn concurrent_loads_and_queries() {
        use std::sync::Arc;
        let engine = Arc::new(engine());
        let mut handles = Vec::new();
        for client in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    engine
                        .load("events", &[row("us", (client * 50 + i) % 16, 1, 0.0)], 0)
                        .unwrap();
                }
            }));
        }
        let reader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let v = sum_likes(&engine, IsolationMode::Snapshot);
                    assert!((0.0..=200.0).contains(&v));
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 200.0);
    }

    /// Byte-identical comparison of two query results (f64 compared
    /// through `to_bits` so NaN/−0.0 differences cannot hide).
    fn assert_rows_identical(a: &QueryResult, b: &QueryResult) {
        assert_eq!(a.rows.len(), b.rows.len(), "row count differs");
        for ((ka, va), (kb, vb)) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ka, kb, "group keys differ");
            let va: Vec<u64> = va.iter().map(|v| v.to_bits()).collect();
            let vb: Vec<u64> = vb.iter().map(|v| v.to_bits()).collect();
            assert_eq!(va, vb, "aggregate bytes differ");
        }
    }

    fn spread_load(engine: &Engine) {
        // Rows landing in several bricks so the parallel path engages
        // (threshold 2), with repeats so epochs vectors grow.
        for round in 0..4 {
            let rows: Vec<Row> = (0..16)
                .map(|i| row(["us", "br", "mx", "de"][i % 4], i as i64, i as i64, 0.5))
                .collect();
            engine.load("events", &rows, 0).unwrap();
            let _ = round;
        }
    }

    #[test]
    fn parallel_cached_path_matches_sequential_reference_byte_for_byte() {
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(1024));
        spread_load(&engine);
        let snapshot = Snapshot::committed(engine.manager().lce());
        let queries = vec![
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "likes"),
                Aggregation::new(AggFn::Avg, "score"),
            ]),
            Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
                .filter(DimFilter::new(
                    "region",
                    vec![Value::from("us"), Value::from("mx")],
                ))
                .grouped_by("region"),
            Query::aggregate(vec![
                Aggregation::new(AggFn::Min, "likes"),
                Aggregation::new(AggFn::Max, "likes"),
            ])
            .grouped_by("day"),
        ];
        for query in &queries {
            let fast = engine.query_at("events", query, &snapshot).unwrap();
            let reference = engine
                .query_at_reference("events", query, &snapshot)
                .unwrap();
            assert!(fast.stats.parallel_tasks > 0, "parallel path not taken");
            assert_eq!(reference.stats.parallel_tasks, 0);
            assert_rows_identical(&fast, &reference);
            // Warm repeat: brick partials served straight from the
            // aggregate cache (one level above visibility), still
            // identical.
            let warm = engine.query_at("events", query, &snapshot).unwrap();
            assert!(
                warm.stats.agg_cache_hits > 0,
                "warm run should hit the aggregate cache"
            );
            assert_eq!(warm.stats.vis_cache_hits, 0);
            assert_rows_identical(&warm, &reference);
        }
    }

    #[test]
    fn sequential_threshold_keeps_small_scans_off_the_pool() {
        let engine = engine().with_scan_config(ScanConfig {
            parallel_threshold: usize::MAX,
            cache_capacity: 64,
            ..ScanConfig::default()
        });
        spread_load(&engine);
        let result = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.stats.parallel_tasks, 0);
        let report = engine.metrics_report();
        assert!(report.contains("sequential_queries = 1"), "{report}");
    }

    #[test]
    fn panicking_scan_task_fails_the_query_with_a_typed_error() {
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(64));
        spread_load(&engine);
        // The bid space for this schema is tiny; poisoning every
        // possible bid guarantees at least one live brick's task
        // panics without reaching into brick-map internals.
        for bid in 0..64 {
            engine.inject_scan_panic_for_test(bid);
        }
        let err = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap_err();
        match err {
            CubrickError::ScanTaskPanicked { cube, bid } => {
                assert_eq!(cube, "events");
                assert!(bid.is_some(), "parallel path attributes the brick");
            }
            other => panic!("expected ScanTaskPanicked, got {other:?}"),
        }
        // The shard threads survive the panic: clearing the injection
        // makes the very same engine answer correctly again.
        engine.clear_scan_panics_for_test();
        let sum = sum_likes(&engine, IsolationMode::Snapshot);
        assert_eq!(sum, 4.0 * (0..16).sum::<i64>() as f64);
    }

    #[test]
    fn cache_stats_trace_hits_and_mutation_invalidation() {
        // Aggregate cache off so the warm run actually re-probes the
        // visibility cache (with it on, warm bricks replay cached
        // partials and never reach the visibility layer).
        let engine = engine().with_scan_config(ScanConfig {
            agg_cache_capacity: 0,
            ..ScanConfig::parallel_cached(256)
        });
        spread_load(&engine);
        let filtered = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .filter(DimFilter::new("region", vec![Value::from("us")]));
        let snapshot = Snapshot::committed(engine.manager().lce());
        let cold = engine.query_at("events", &filtered, &snapshot).unwrap();
        assert!(cold.stats.vis_cache_misses > 0);
        assert_eq!(cold.stats.vis_cache_hits, 0);
        let warm = engine.query_at("events", &filtered, &snapshot).unwrap();
        assert_eq!(warm.stats.vis_cache_misses, 0);
        assert_eq!(warm.stats.vis_cache_hits, cold.stats.vis_cache_misses);
        let before = engine.visibility_cache_stats().unwrap();
        assert!(before.hits > 0 && before.entries > 0);
        // A load mutates bricks: their cached artifacts must go.
        engine.load("events", &[row("us", 0, 1, 0.0)], 0).unwrap();
        let after = engine.visibility_cache_stats().unwrap();
        assert!(
            after.invalidations > before.invalidations,
            "append must invalidate cached visibility"
        );
        // Old snapshot still answers correctly after invalidation.
        let replay = engine.query_at("events", &filtered, &snapshot).unwrap();
        assert_rows_identical(&replay, &cold);
        let report = engine.metrics_report();
        assert!(report.contains("vis_cache"), "{report}");
    }

    #[test]
    fn zero_capacity_scan_config_disables_the_cache() {
        let engine = engine().with_scan_config(ScanConfig::sequential_uncached());
        assert!(engine.visibility_cache_stats().is_none());
        spread_load(&engine);
        let result = engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
                    .filter(DimFilter::new("region", vec![Value::from("br")])),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.stats.vis_cache_hits, 0);
        assert_eq!(result.stats.vis_cache_misses, 0);
        assert_eq!(result.rows[0].1[0], 16.0);
    }

    #[test]
    fn agg_cache_heals_after_invalidation() {
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(256));
        spread_load(&engine);
        let query = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .filter(DimFilter::new("region", vec![Value::from("us")]))
            .grouped_by("day");
        let snapshot = Snapshot::committed(engine.manager().lce());
        let cold = engine.query_at("events", &query, &snapshot).unwrap();
        assert!(cold.stats.agg_cache_misses > 0);
        assert_eq!(cold.stats.agg_cache_hits, 0);
        let warm = engine.query_at("events", &query, &snapshot).unwrap();
        assert_eq!(warm.stats.agg_cache_misses, 0);
        assert_eq!(warm.stats.agg_cache_hits, cold.stats.agg_cache_misses);
        assert_rows_identical(&warm, &cold);
        let before = engine.agg_cache_stats().unwrap();
        assert!(before.hits > 0 && before.entries > 0);
        // A load mutates bricks: cached partials must be dropped, and
        // the rebuilt entries must serve the old snapshot correctly.
        engine.load("events", &[row("us", 0, 1, 0.0)], 0).unwrap();
        let after = engine.agg_cache_stats().unwrap();
        assert!(
            after.invalidations > before.invalidations,
            "append must invalidate cached aggregate partials"
        );
        let healed = engine.query_at("events", &query, &snapshot).unwrap();
        assert!(healed.stats.agg_cache_misses > 0, "rebuild, not stale hit");
        assert_rows_identical(&healed, &cold);
        // And the rebuilt entries are warm again.
        let rewarmed = engine.query_at("events", &query, &snapshot).unwrap();
        assert!(rewarmed.stats.agg_cache_hits > 0);
        assert_rows_identical(&rewarmed, &cold);
        let report = engine.metrics_report();
        assert!(report.contains("agg_cache"), "{report}");
    }

    #[test]
    fn corrupted_agg_cache_partial_is_observable() {
        // The corruption hook exists so the oracle can prove a stale
        // or bit-flipped cached partial would be *caught* by the
        // reference diff — if corruption were invisible here, that
        // meta-test would be vacuous.
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(256));
        spread_load(&engine);
        let query = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let snapshot = Snapshot::committed(engine.manager().lce());
        let honest = engine.query_at("events", &query, &snapshot).unwrap();
        engine.corrupt_agg_cache_for_test();
        let poisoned = engine.query_at("events", &query, &snapshot).unwrap();
        assert!(poisoned.stats.agg_cache_hits > 0, "must replay the cache");
        assert_ne!(
            poisoned.rows[0].1[0], honest.rows[0].1[0],
            "corrupted partial must change the answer"
        );
        let reference = engine
            .query_at_reference("events", &query, &snapshot)
            .unwrap();
        assert_eq!(reference.rows[0].1[0], honest.rows[0].1[0]);
    }

    #[test]
    fn funnel_and_shard_merge_paths_are_bit_identical() {
        let shard_engine = engine().with_scan_config(ScanConfig::parallel_cached(256));
        let funnel_engine = engine().with_scan_config(ScanConfig {
            merge: MergePath::Funnel,
            ..ScanConfig::parallel_cached(256)
        });
        spread_load(&shard_engine);
        spread_load(&funnel_engine);
        let queries = vec![
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "likes"),
                Aggregation::new(AggFn::Avg, "score"),
                Aggregation::new(AggFn::Count, "likes"),
            ]),
            Query::aggregate(vec![
                Aggregation::new(AggFn::Min, "likes"),
                Aggregation::new(AggFn::Max, "score"),
            ])
            .grouped_by("region")
            .grouped_by("day"),
        ];
        for query in &queries {
            let a = shard_engine
                .query("events", query, IsolationMode::Snapshot)
                .unwrap();
            let b = funnel_engine
                .query("events", query, IsolationMode::Snapshot)
                .unwrap();
            assert_rows_identical(&a, &b);
            // Shard merge dispatches one task per involved shard;
            // the funnel dispatches one per brick.
            assert!(a.stats.parallel_tasks > 0);
            assert!(b.stats.parallel_tasks >= a.stats.parallel_tasks);
        }
    }

    #[test]
    fn brick_partials_roundtrip_through_finalize() {
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(256));
        spread_load(&engine);
        let query = Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Avg, "score"),
        ])
        .grouped_by("region");
        let snapshot = Snapshot::committed(engine.manager().lce());
        let direct = engine.query_at("events", &query, &snapshot).unwrap();
        let partials = engine
            .query_brick_partials("events", &query, &snapshot)
            .unwrap();
        assert!(partials.len() > 1, "load must spread across bricks");
        // Forward order reproduces the query; so does reverse — the
        // merge is commutative on this workload's exact arithmetic.
        let forward = engine
            .finalize_partials("events", &query, partials.clone())
            .unwrap();
        assert_rows_identical(&forward, &direct);
        let backward = engine
            .finalize_partials("events", &query, partials.into_iter().rev())
            .unwrap();
        assert_rows_identical(&backward, &direct);
    }

    #[test]
    fn progressive_refinements_end_at_the_complete_result() {
        let engine = engine().with_scan_config(ScanConfig::parallel_cached(256));
        spread_load(&engine);
        let query =
            Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]).grouped_by("region");
        let snapshot = Snapshot::committed(engine.manager().lce());
        let mut refinements: Vec<QueryResult> = Vec::new();
        let complete = engine
            .query_at_with_progress("events", &query, &snapshot, |r| refinements.push(r))
            .unwrap();
        assert!(!refinements.is_empty(), "at least one refinement lands");
        // Refinements only grow (each merge folds more bricks in) and
        // the last one is exactly the complete result.
        for pair in refinements.windows(2) {
            assert!(pair[0].stats.bricks_scanned <= pair[1].stats.bricks_scanned);
        }
        let last = refinements.last().unwrap();
        assert_rows_identical(last, &complete);
        assert_eq!(last.stats.bricks_scanned, complete.stats.bricks_scanned);
        let reference = engine
            .query_at_reference("events", &query, &snapshot)
            .unwrap();
        assert_rows_identical(&complete, &reference);
    }

    // ---------------------------------------------------------------
    // Cold-tier integration (the tier's own registry mechanics are
    // unit-tested in `crate::tier`; these drive eviction and reload
    // through the engine's public surface).
    // ---------------------------------------------------------------

    fn tiered_engine(budget_bytes: usize) -> Engine {
        let engine = Engine::new(4)
            .with_tiered_storage(Box::new(crate::tier::MemStore::new()), budget_bytes);
        engine.create_cube(events_schema()).unwrap();
        engine
    }

    #[test]
    fn evicted_bricks_answer_queries_bit_identically() {
        let tiered = tiered_engine(1); // evict every clean brick
        let plain = engine();
        spread_load(&tiered);
        spread_load(&plain);
        tiered.advance_lse_and_purge();
        plain.advance_lse_and_purge();
        let stats = tiered.tier_stats().unwrap();
        assert!(stats.spills > 0, "a 1-byte budget must evict");
        assert!(stats.spilled_bricks > 0);
        let snapshot = Snapshot::committed(tiered.manager().lce());
        let queries = vec![
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "likes"),
                Aggregation::new(AggFn::Avg, "score"),
            ]),
            Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
                .filter(DimFilter::new(
                    "region",
                    vec![Value::from("us"), Value::from("mx")],
                ))
                .grouped_by("region"),
            Query::aggregate(vec![Aggregation::new(AggFn::Max, "likes")]).grouped_by("day"),
        ];
        for query in &queries {
            let cold = tiered.query_at("events", query, &snapshot).unwrap();
            let warm = plain.query_at("events", query, &snapshot).unwrap();
            assert_rows_identical(&cold, &warm);
        }
        assert!(
            tiered.tier_stats().unwrap().reloads > 0,
            "scans faulted the evicted bricks back in"
        );
    }

    #[test]
    fn a_write_faults_the_spilled_brick_back_in() {
        let engine = tiered_engine(1);
        engine.load("events", &[row("us", 0, 10, 1.0)], 0).unwrap();
        engine.advance_lse_and_purge();
        assert!(engine.tier_stats().unwrap().spilled_bricks >= 1);
        // Appending into a fresh empty brick would shadow the spilled
        // rows: the load must reload first, then land on top.
        engine.load("events", &[row("us", 0, 5, 1.0)], 0).unwrap();
        let stats = engine.tier_stats().unwrap();
        assert!(stats.reloads >= 1, "the append faulted the brick in");
        assert_eq!(sum_likes(&engine, IsolationMode::Snapshot), 15.0);
    }

    #[test]
    fn warm_agg_cache_serves_a_spilled_brick_without_touching_the_store() {
        let engine = Engine::new(4)
            .with_scan_config(ScanConfig::parallel_cached(256))
            .with_tiered_storage(Box::new(crate::tier::MemStore::new()), 1);
        engine.create_cube(events_schema()).unwrap();
        spread_load(&engine);
        let query =
            Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]).grouped_by("region");
        let snapshot = Snapshot::committed(engine.manager().lce());
        let warm = engine.query_at("events", &query, &snapshot).unwrap();
        // Advance the LSE without purging: purge rewrites epochs
        // vectors (a generation bump), which would invalidate the
        // warm partials this test wants served.
        engine.manager().advance_lse(engine.manager().lce()).unwrap();
        engine.enforce_tier_budget();
        let before = engine.tier_stats().unwrap();
        assert!(before.spilled_bricks > 0);
        let cold = engine.query_at("events", &query, &snapshot).unwrap();
        assert_rows_identical(&cold, &warm);
        let after = engine.tier_stats().unwrap();
        assert!(
            after.cache_serves > before.cache_serves,
            "the cached partials answered for the evicted bricks"
        );
        assert_eq!(
            after.reloads, before.reloads,
            "a cache serve must not touch the store"
        );
        assert!(cold.stats.tier_cache_serves > 0);
    }

    #[test]
    fn dirty_bricks_stay_resident_until_the_lse_catches_up() {
        let engine = tiered_engine(1);
        spread_load(&engine);
        // Everything committed is newer than the LSE (0): nothing is
        // clean-cold, nothing may spill — the WAL does not hold these
        // rows yet.
        let sweep = engine.enforce_tier_budget();
        assert_eq!(sweep.evicted, 0);
        assert_eq!(engine.tier_stats().unwrap().spilled_bricks, 0);
        engine.advance_lse_and_purge();
        assert!(engine.tier_stats().unwrap().spilled_bricks > 0);
    }

    #[test]
    fn enforcement_stops_at_the_budget() {
        // Measure the workload's resident footprint on a throwaway
        // engine, then give the real one half that.
        let probe = tiered_engine(usize::MAX);
        spread_load(&probe);
        let total = probe.enforce_tier_budget().resident_bytes_before;
        assert!(total > 0);

        let engine = tiered_engine((total / 2) as usize);
        spread_load(&engine);
        engine.advance_lse_and_purge();
        let stats = engine.tier_stats().unwrap();
        assert!(stats.spilled_bricks > 0, "over budget: must evict");
        assert!(
            stats.resident_bytes <= total / 2,
            "resident {} exceeds the budget {}",
            stats.resident_bytes,
            total / 2
        );
        assert!(
            stats.resident_bytes > 0,
            "half the footprint should keep the warmer half resident"
        );
    }
}
