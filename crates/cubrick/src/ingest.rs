//! The ingestion pipeline's parse step (Section V-B).
//!
//! "During the parsing phase, input records are extracted and
//! validated regarding number of columns, metric data types,
//! dimensional cardinality and string to id encoding. Records that do
//! not comply to these criteria are rejected and skipped. After all
//! valid input records are extracted, based on each input record's
//! coordinates the target bid … [is] computed."
//!
//! Parsing is a CPU-only step that can run on any node; the output is
//! a batch of per-bid record groups ready to forward to the owning
//! nodes/shards.

use std::collections::HashMap;
use std::sync::Arc;

use columnar::{Dictionary, Row, Value};
use parking_lot::Mutex;

use crate::bid::BidLayout;
use crate::ddl::{CubeSchema, MetricType};

/// A validated, encoded record: coordinates plus metric payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRecord {
    /// Target brick.
    pub bid: u64,
    /// One encoded coordinate per dimension.
    pub coords: Vec<u32>,
    /// Metric values, in schema order.
    pub metrics: Vec<Value>,
}

/// The outcome of parsing one input buffer.
#[derive(Debug, Default)]
pub struct ParsedBatch {
    /// Accepted records, grouped by target brick.
    pub by_bid: HashMap<u64, Vec<ParsedRecord>>,
    /// Records accepted.
    pub accepted: usize,
    /// Records rejected (bad arity, type, cardinality).
    pub rejected: usize,
}

impl ParsedBatch {
    /// Total bricks touched.
    pub fn bricks_touched(&self) -> usize {
        self.by_bid.len()
    }
}

/// Parses `rows` against `schema`, encoding string dimensions through
/// the cube's shared `dictionaries` (one slot per dimension, `None`
/// for integer dimensions).
///
/// Invalid records are counted in [`ParsedBatch::rejected`] and
/// skipped — enforcement of `max_rejected` happens at the request
/// level, where the whole batch can still be discarded.
pub fn parse_rows(
    schema: &CubeSchema,
    layout: &BidLayout,
    dictionaries: &[Option<Arc<Mutex<Dictionary>>>],
    rows: &[Row],
) -> ParsedBatch {
    debug_assert_eq!(dictionaries.len(), schema.dimensions.len());
    let mut batch = ParsedBatch::default();
    let num_dims = schema.dimensions.len();
    'rows: for row in rows {
        if row.len() != schema.arity() {
            batch.rejected += 1;
            continue;
        }
        let mut coords = Vec::with_capacity(num_dims);
        // Dimensions whose string is unseen: minting their ids is
        // deferred until the whole row validates, so a record rejected
        // by a later dimension or metric check never leaves a phantom
        // entry in the shared dictionary (which would otherwise be
        // persisted by every following flush round and permanently
        // burn an id below the cardinality cap).
        let mut pending: Vec<usize> = Vec::new();
        for (idx, dim) in schema.dimensions.iter().enumerate() {
            let coord = match (&row[idx], &dictionaries[idx]) {
                (Value::Str(s), Some(dict)) => {
                    let dict = dict.lock();
                    match dict.lookup(s) {
                        // Ids beyond the declared cardinality are
                        // rejected, matching the paper's "dimensional
                        // cardinality" validation.
                        Some(id) if id < dim.cardinality => id,
                        Some(_) => {
                            batch.rejected += 1;
                            continue 'rows;
                        }
                        // Unseen: viable only while id capacity
                        // remains; the mint itself waits for full-row
                        // validation (placeholder coordinate for now).
                        None if (dict.len() as u64) < u64::from(dim.cardinality) => {
                            pending.push(idx);
                            0
                        }
                        None => {
                            batch.rejected += 1;
                            continue 'rows;
                        }
                    }
                }
                (Value::I64(v), None) => {
                    if *v < 0 || *v >= dim.cardinality as i64 {
                        batch.rejected += 1;
                        continue 'rows;
                    }
                    *v as u32
                }
                _ => {
                    batch.rejected += 1;
                    continue 'rows;
                }
            };
            coords.push(coord);
        }
        let mut metrics = Vec::with_capacity(schema.metrics.len());
        for (metric, value) in schema.metrics.iter().zip(&row[num_dims..]) {
            match (metric.metric_type, value) {
                (MetricType::I64, Value::I64(_)) | (MetricType::F64, Value::F64(_)) => {
                    metrics.push(value.clone());
                }
                _ => {
                    batch.rejected += 1;
                    continue 'rows;
                }
            }
        }
        // The row is fully valid: mint the deferred ids. Capacity is
        // re-checked under the lock — a concurrent parser may have
        // minted other strings since the first pass.
        for &idx in &pending {
            let dim = &schema.dimensions[idx];
            let s = row[idx].as_str().expect("pending dimensions hold strings");
            let mut dict = dictionaries[idx]
                .as_ref()
                .expect("pending dimensions have dictionaries")
                .lock();
            let id = match dict.lookup(s) {
                Some(id) => id,
                None if (dict.len() as u64) < u64::from(dim.cardinality) => dict.encode(s),
                None => {
                    batch.rejected += 1;
                    continue 'rows;
                }
            };
            if id >= dim.cardinality {
                batch.rejected += 1;
                continue 'rows;
            }
            coords[idx] = id;
        }
        let bid = layout.bid_for_coords(&coords);
        batch.by_bid.entry(bid).or_default().push(ParsedRecord {
            bid,
            coords,
            metrics,
        });
        batch.accepted += 1;
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{Dimension, Metric};

    fn schema() -> CubeSchema {
        CubeSchema::new(
            "t",
            vec![
                Dimension::string("region", 4, 2),
                Dimension::int("day", 8, 4),
            ],
            vec![Metric::int("likes")],
        )
        .unwrap()
    }

    fn dicts(schema: &CubeSchema) -> Vec<Option<Arc<Mutex<Dictionary>>>> {
        schema
            .dimensions
            .iter()
            .map(|d| d.is_string.then(|| Arc::new(Mutex::new(Dictionary::new()))))
            .collect()
    }

    #[test]
    fn valid_rows_are_grouped_by_bid() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let rows = vec![
            vec![Value::from("us"), Value::from(0i64), Value::from(10i64)],
            vec![Value::from("br"), Value::from(1i64), Value::from(20i64)],
            vec![Value::from("us"), Value::from(5i64), Value::from(30i64)],
        ];
        let batch = parse_rows(&schema, &layout, &dicts, &rows);
        assert_eq!(batch.accepted, 3);
        assert_eq!(batch.rejected, 0);
        // us(0) day0 and br(1) day1 share region-range 0 / day-range 0;
        // us day5 lands in day-range 1.
        assert_eq!(batch.bricks_touched(), 2);
        let total: usize = batch.by_bid.values().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn arity_and_type_violations_reject() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let rows = vec![
            vec![Value::from("us"), Value::from(0i64)], // short
            vec![Value::from(1i64), Value::from(0i64), Value::from(1i64)], // int for string dim
            vec![Value::from("us"), Value::from("x"), Value::from(1i64)], // string for int dim
            vec![Value::from("us"), Value::from(0i64), Value::from(0.5f64)], // float for int metric
        ];
        let batch = parse_rows(&schema, &layout, &dicts, &rows);
        assert_eq!(batch.accepted, 0);
        assert_eq!(batch.rejected, 4);
    }

    #[test]
    fn cardinality_violations_reject() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let rows = vec![
            vec![Value::from("a"), Value::from(0i64), Value::from(1i64)],
            vec![Value::from("b"), Value::from(0i64), Value::from(1i64)],
            vec![Value::from("c"), Value::from(0i64), Value::from(1i64)],
            vec![Value::from("d"), Value::from(0i64), Value::from(1i64)],
            vec![Value::from("e"), Value::from(0i64), Value::from(1i64)], // 5th > card 4
            vec![Value::from("a"), Value::from(8i64), Value::from(1i64)], // day out of range
            vec![Value::from("a"), Value::from(-1i64), Value::from(1i64)],
        ];
        let batch = parse_rows(&schema, &layout, &dicts, &rows);
        assert_eq!(batch.accepted, 4);
        assert_eq!(batch.rejected, 3);
    }

    /// Regression: a rejected record must not leave its strings in
    /// the shared dictionary. Before the lookup-before-encode fix,
    /// `encode` minted the id first and the cardinality check ran
    /// after — every rejected string permanently burned an id (and
    /// was persisted by each later flush round).
    #[test]
    fn rejected_rows_do_not_pollute_the_dictionary() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let bad_rows = vec![
            // New string, but the integer dimension is out of range.
            vec![Value::from("us"), Value::from(99i64), Value::from(1i64)],
            // New string, but the metric has the wrong type.
            vec![Value::from("br"), Value::from(0i64), Value::from(0.5f64)],
        ];
        let batch = parse_rows(&schema, &layout, &dicts, &bad_rows);
        assert_eq!(batch.accepted, 0);
        assert_eq!(batch.rejected, 2);
        let dict = dicts[0].as_ref().unwrap().lock();
        assert!(
            dict.is_empty(),
            "rejected rows minted ids: {:?}",
            dict.entries_from(0)
        );
        drop(dict);
        // Reject-then-accept ordering: the same strings must now
        // encode cleanly, getting the ids the rejects would have
        // stolen.
        let good_rows = vec![
            vec![Value::from("us"), Value::from(0i64), Value::from(1i64)],
            vec![Value::from("br"), Value::from(1i64), Value::from(2i64)],
        ];
        let batch = parse_rows(&schema, &layout, &dicts, &good_rows);
        assert_eq!(batch.accepted, 2);
        let dict = dicts[0].as_ref().unwrap().lock();
        assert_eq!(dict.lookup("us"), Some(0));
        assert_eq!(dict.lookup("br"), Some(1));
        assert_eq!(dict.len(), 2);
    }

    /// Regression: strings beyond the cardinality cap are rejected
    /// without growing the dictionary, so the cap stays exact — a
    /// fifth distinct string must not block a sixth row reusing one
    /// of the four legitimate entries, and repeated over-cap strings
    /// must not grow the dictionary without bound.
    #[test]
    fn over_cardinality_strings_never_mint_ids() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let mut rows: Vec<Row> = ["a", "b", "c", "d", "e", "f", "e"]
            .iter()
            .map(|s| vec![Value::from(*s), Value::from(0i64), Value::from(1i64)])
            .collect();
        rows.push(vec![Value::from("a"), Value::from(1i64), Value::from(1i64)]);
        let batch = parse_rows(&schema, &layout, &dicts, &rows);
        assert_eq!(batch.accepted, 5, "four distinct strings plus the reuse");
        assert_eq!(batch.rejected, 3);
        let dict = dicts[0].as_ref().unwrap().lock();
        assert_eq!(dict.len(), 4, "dictionary holds exactly the cap");
        assert_eq!(dict.lookup("e"), None);
        assert_eq!(dict.lookup("f"), None);
    }

    #[test]
    fn shared_dictionary_keeps_ids_stable_across_batches() {
        let schema = schema();
        let layout = BidLayout::new(&schema);
        let dicts = dicts(&schema);
        let rows1 = vec![vec![
            Value::from("us"),
            Value::from(0i64),
            Value::from(1i64),
        ]];
        let rows2 = vec![vec![
            Value::from("us"),
            Value::from(0i64),
            Value::from(2i64),
        ]];
        let b1 = parse_rows(&schema, &layout, &dicts, &rows1);
        let b2 = parse_rows(&schema, &layout, &dicts, &rows2);
        let c1 = b1.by_bid.values().next().unwrap()[0].coords[0];
        let c2 = b2.by_bid.values().next().unwrap()[0].coords[0];
        assert_eq!(c1, c2);
    }
}
