//! Delta export/import: the engine half of persistence.
//!
//! Flush rounds move the rows of epochs in `(LSE, LSE']` to disk
//! (Section III-D): "data on this range can be identified by
//! analyzing the epochs vectors". [`Engine::export_delta`] walks
//! every brick's epochs vector and extracts exactly those runs — in
//! epochs-vector order, which is what preserves delete-point
//! semantics — and [`Engine::import_delta`] replays them during
//! recovery. Serialization itself lives in the `wal` crate.

use aosi::Epoch;
use columnar::Value;

use crate::engine::Engine;
use crate::ingest::ParsedRecord;

/// One run of a brick's epochs vector, with its row payload.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaRun {
    /// Rows appended by `epoch`.
    Insert {
        /// Appending transaction.
        epoch: Epoch,
        /// The run's rows.
        records: Vec<ParsedRecord>,
    },
    /// A partition-delete marker by `epoch`.
    Delete {
        /// Deleting transaction.
        epoch: Epoch,
    },
}

impl DeltaRun {
    /// The run's epoch.
    pub fn epoch(&self) -> Epoch {
        match self {
            DeltaRun::Insert { epoch, .. } | DeltaRun::Delete { epoch } => *epoch,
        }
    }
}

/// Everything one flush round persists for one brick.
#[derive(Clone, Debug, PartialEq)]
pub struct BrickDelta {
    /// Cube name.
    pub cube: String,
    /// Brick id.
    pub bid: u64,
    /// Runs with epochs in the flushed range, in epochs-vector order.
    pub runs: Vec<DeltaRun>,
}

impl Engine {
    /// Extracts every run whose epoch lies in `(lse, lse_prime]`,
    /// across all bricks of all cubes, preserving epochs-vector order
    /// within each brick.
    pub fn export_delta(&self, lse: Epoch, lse_prime: Epoch) -> Vec<BrickDelta> {
        // Evicted bricks never overlap a *flush* window — eviction
        // requires every epoch at or below the LSE, and the LSE only
        // advances. A caller asking for a wider window (recovery
        // verification, tests) must see those rows, so fault any
        // overlapping brick back in; the retained epochs vectors
        // answer the overlap check without touching disk.
        if let Some(tier) = self.tier() {
            for (cube, bid) in tier.spilled_in_window(lse, lse_prime) {
                self.fault_in_brick(&cube, bid)
                    .expect("spilled brick overlapping an export window failed to reload");
            }
        }
        let per_shard = self.shards().map_shards(|_| {
            Box::new(move |bricks: &mut crate::shard::ShardBricks| {
                let mut deltas = Vec::new();
                for (cube_name, cube_bricks) in bricks.iter() {
                    for (&bid, brick) in cube_bricks {
                        let mut runs = Vec::new();
                        let mut start = 0u64;
                        for entry in brick.epochs().entries() {
                            if entry.is_delete() {
                                if entry.epoch() > lse && entry.epoch() <= lse_prime {
                                    runs.push(DeltaRun::Delete {
                                        epoch: entry.epoch(),
                                    });
                                }
                                continue;
                            }
                            let end = entry.end();
                            if entry.epoch() > lse && entry.epoch() <= lse_prime {
                                let records = (start..end)
                                    .map(|row| {
                                        let row = row as usize;
                                        let coords = (0..brick_num_dims(brick))
                                            .map(|d| brick.dim_value(d, row))
                                            .collect();
                                        let metrics = (0..brick_num_metrics(brick))
                                            .map(|m| metric_value(brick, m, row))
                                            .collect();
                                        ParsedRecord {
                                            bid,
                                            coords,
                                            metrics,
                                        }
                                    })
                                    .collect();
                                runs.push(DeltaRun::Insert {
                                    epoch: entry.epoch(),
                                    records,
                                });
                            }
                            start = end;
                        }
                        if !runs.is_empty() {
                            deltas.push(BrickDelta {
                                cube: cube_name.clone(),
                                bid,
                                runs,
                            });
                        }
                    }
                }
                deltas
            })
        });
        per_shard.into_iter().flatten().collect()
    }

    /// Extracts **every** run of one brick, in epochs-vector order —
    /// the payload a rebalance handoff streams to the brick's new
    /// host. Returns an empty vector when the brick does not exist
    /// here (the legitimate empty-brick handoff edge); a shard task
    /// that panics mid-capture is a typed error, never an empty
    /// capture — streaming one would retire the source copy and lose
    /// the brick.
    pub(crate) fn export_brick(
        &self,
        cube: &str,
        bid: u64,
    ) -> Result<Vec<DeltaRun>, crate::error::CubrickError> {
        self.fault_in_brick(cube, bid)?;
        let shard = self.shards().shard_of(bid);
        let name = cube.to_owned();
        let panic_injected = self.export_panic_injected(bid);
        let handle = self.shards().submit_handle(shard, move |bricks| {
            if panic_injected {
                panic!("injected export panic for brick {bid}");
            }
            let brick = bricks.get(&name).and_then(|m| m.get(&bid))?;
            let mut runs = Vec::new();
            let mut start = 0u64;
            for entry in brick.epochs().entries() {
                if entry.is_delete() {
                    runs.push(DeltaRun::Delete {
                        epoch: entry.epoch(),
                    });
                    continue;
                }
                let end = entry.end();
                let records = (start..end)
                    .map(|row| {
                        let row = row as usize;
                        let coords = (0..brick_num_dims(brick))
                            .map(|d| brick.dim_value(d, row))
                            .collect();
                        let metrics = (0..brick_num_metrics(brick))
                            .map(|m| metric_value(brick, m, row))
                            .collect();
                        ParsedRecord {
                            bid,
                            coords,
                            metrics,
                        }
                    })
                    .collect();
                runs.push(DeltaRun::Insert {
                    epoch: entry.epoch(),
                    records,
                });
                start = end;
            }
            Some(runs)
        });
        match handle.join() {
            Ok(runs) => Ok(runs.unwrap_or_default()),
            Err(_) => Err(crate::error::CubrickError::BrickExportFailed {
                cube: cube.to_owned(),
                bid,
            }),
        }
    }

    /// Installs handoff runs into one brick, **idempotently by
    /// epoch**: a run whose `(epoch, kind)` the brick already holds is
    /// skipped. This is what makes the handoff protocol safe under
    /// duplicated chunks and under writes that fanned out to the
    /// pending host while the stream was in flight — each epoch's data
    /// lands exactly once no matter which path delivered it first.
    pub(crate) fn install_brick_runs(
        &self,
        cube: &crate::cube::Cube,
        bid: u64,
        runs: Vec<DeltaRun>,
    ) -> Result<(), crate::error::CubrickError> {
        // A spilled destination brick must be resident before runs
        // dedup against its epochs vector — installing into a fresh
        // empty brick would shadow the spilled rows.
        self.fault_in_brick(cube.name(), bid)?;
        let shard = self.shards().shard_of(bid);
        let cube_name = cube.name().to_owned();
        let cube = cube.clone();
        let storage = self.dim_storage();
        self.shards().submit(shard, move |bricks| {
            let brick = bricks
                .entry(cube.name().to_owned())
                .or_default()
                .entry(bid)
                .or_insert_with(|| crate::brick::Brick::with_storage(cube.schema(), storage));
            let existing: std::collections::HashSet<(Epoch, bool)> = brick
                .epochs()
                .entries()
                .iter()
                .map(|e| (e.epoch(), e.is_delete()))
                .collect();
            for run in runs {
                match run {
                    DeltaRun::Insert { epoch, records } => {
                        if !existing.contains(&(epoch, false)) {
                            brick.append(epoch, &records);
                        }
                    }
                    DeltaRun::Delete { epoch } => {
                        if !existing.contains(&(epoch, true)) {
                            brick.mark_delete(epoch);
                        }
                    }
                }
            }
        });
        self.shards().submit_and_wait(shard, |_| ());
        self.invalidate_brick_caches(&cube_name, bid);
        Ok(())
    }

    /// Replays exported deltas (recovery). Rounds must be imported in
    /// flush order so that each brick's runs reassemble in their
    /// original relative order.
    ///
    /// Returns the number of deltas that were **dropped** because
    /// their cube is not registered — flushed rows a caller with
    /// incomplete DDL replay would otherwise lose without a trace.
    /// Recovery surfaces this count in its report.
    pub fn import_delta(&self, deltas: Vec<BrickDelta>) -> usize {
        let mut unknown_cube_deltas = 0;
        for delta in deltas {
            let Ok(cube) = self.cube(&delta.cube) else {
                unknown_cube_deltas += 1;
                continue;
            };
            // Recovery into a tiered engine: the target brick may
            // already have been evicted by an earlier enforcement
            // sweep mid-replay.
            self.fault_in_brick(&delta.cube, delta.bid)
                .expect("spilled brick failed to reload during delta import");
            let shard = self.shards().shard_of(delta.bid);
            let bid = delta.bid;
            let storage = self.dim_storage();
            self.shards().submit(shard, move |bricks| {
                let brick = bricks
                    .entry(cube.name().to_owned())
                    .or_default()
                    .entry(bid)
                    .or_insert_with(|| crate::brick::Brick::with_storage(cube.schema(), storage));
                for run in delta.runs {
                    match run {
                        DeltaRun::Insert { epoch, records } => brick.append(epoch, &records),
                        DeltaRun::Delete { epoch } => brick.mark_delete(epoch),
                    }
                }
            });
        }
        self.shards().drain();
        unknown_cube_deltas
    }
}

fn brick_num_dims(brick: &crate::brick::Brick) -> usize {
    brick.num_dims()
}

fn brick_num_metrics(brick: &crate::brick::Brick) -> usize {
    brick.num_metrics()
}

fn metric_value(brick: &crate::brick::Brick, metric: usize, row: usize) -> Value {
    let col = brick.metric_column(metric);
    match col {
        columnar::Column::I64(_) => Value::I64(col.get_i64(row).expect("row in range")),
        columnar::Column::F64(_) => Value::F64(col.get_f64(row).expect("row in range")),
        columnar::Column::Str(_) => unreachable!("metrics are numeric"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};
    use crate::engine::IsolationMode;
    use crate::query::{AggFn, Aggregation, Query};
    use columnar::Row;

    fn engine() -> Engine {
        let engine = Engine::new(2);
        engine
            .create_cube(
                CubeSchema::new(
                    "events",
                    vec![Dimension::int("day", 16, 4)],
                    vec![Metric::int("likes"), Metric::float("score")],
                )
                .unwrap(),
            )
            .unwrap();
        engine
    }

    fn row(day: i64, likes: i64, score: f64) -> Row {
        vec![Value::from(day), Value::from(likes), Value::from(score)]
    }

    fn sum_likes(engine: &Engine) -> f64 {
        engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0)
    }

    #[test]
    fn export_covers_only_the_epoch_window() {
        let engine = engine();
        engine.load("events", &[row(0, 1, 0.1)], 0).unwrap(); // T1
        engine.load("events", &[row(1, 2, 0.2)], 0).unwrap(); // T2
        engine.load("events", &[row(2, 4, 0.4)], 0).unwrap(); // T3
        let delta = engine.export_delta(1, 2);
        let epochs: Vec<Epoch> = delta
            .iter()
            .flat_map(|d| d.runs.iter().map(DeltaRun::epoch))
            .collect();
        assert_eq!(epochs, vec![2], "only T2 is in (1, 2]");
    }

    #[test]
    fn export_import_roundtrip_restores_visibility() {
        let source = engine();
        source
            .load(
                "events",
                &(0..50)
                    .map(|i| row(i % 16, i, i as f64))
                    .collect::<Vec<_>>(),
                0,
            )
            .unwrap();
        source.delete_where("events", &[]).unwrap();
        source.load("events", &[row(0, 1000, 0.0)], 0).unwrap();
        let lce = source.manager().lce();
        let deltas = source.export_delta(0, lce);

        let restored = engine();
        restored.import_delta(deltas);
        // Fast-forward the restored node's clock past the recovered
        // epochs so new reads see them.
        restored.manager().clock().observe(lce);
        let t = restored.manager().begin_rw();
        restored.manager().commit(&t).unwrap();
        assert_eq!(sum_likes(&restored), sum_likes(&source));
        assert_eq!(sum_likes(&restored), 1000.0, "delete replayed too");
    }

    #[test]
    fn import_preserves_metric_values_and_types() {
        let source = engine();
        source
            .load("events", &[row(3, 7, 2.5), row(4, -7, -2.5)], 0)
            .unwrap();
        let deltas = source.export_delta(0, source.manager().lce());
        let restored = engine();
        restored.import_delta(deltas);
        restored.manager().clock().observe(source.manager().lce());
        let t = restored.manager().begin_rw();
        restored.manager().commit(&t).unwrap();
        let result = restored
            .query(
                "events",
                &Query::aggregate(vec![
                    Aggregation::new(AggFn::Sum, "likes"),
                    Aggregation::new(AggFn::Min, "score"),
                    Aggregation::new(AggFn::Max, "score"),
                ]),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.rows[0].1, vec![0.0, -2.5, 2.5]);
    }

    #[test]
    fn incremental_rounds_reassemble_in_order() {
        let source = engine();
        source.load("events", &[row(0, 1, 0.0)], 0).unwrap(); // T1
        source.load("events", &[row(0, 2, 0.0)], 0).unwrap(); // T2
        let round1 = source.export_delta(0, 2);
        source.delete_where("events", &[]).unwrap(); // T3 delete
        source.load("events", &[row(0, 8, 0.0)], 0).unwrap(); // T4
        let round2 = source.export_delta(2, 4);

        let restored = engine();
        restored.import_delta(round1);
        restored.import_delta(round2);
        restored.manager().clock().observe(4);
        let t = restored.manager().begin_rw();
        restored.manager().commit(&t).unwrap();
        assert_eq!(sum_likes(&restored), 8.0);
    }

    #[test]
    fn unknown_cube_deltas_are_counted_not_silently_skipped() {
        let restored = engine();
        let dropped = restored.import_delta(vec![
            BrickDelta {
                cube: "nope".into(),
                bid: 0,
                runs: vec![DeltaRun::Delete { epoch: 1 }],
            },
            BrickDelta {
                cube: "events".into(),
                bid: 0,
                runs: vec![DeltaRun::Delete { epoch: 1 }],
            },
        ]);
        assert_eq!(dropped, 1, "exactly the unknown-cube delta is dropped");
        assert_eq!(restored.memory().bricks, 1, "the known cube still lands");
        let clean = restored.import_delta(vec![BrickDelta {
            cube: "events".into(),
            bid: 0,
            runs: vec![DeltaRun::Delete { epoch: 2 }],
        }]);
        assert_eq!(clean, 0);
    }

    #[test]
    fn export_panic_is_a_typed_error_not_an_empty_capture() {
        let engine = engine();
        engine.load("events", &[row(0, 5, 0.5)], 0).unwrap();
        let bid = engine.brick_bids("events")[0];
        // Before the fix, a panicking export task fell through
        // `Arc::try_unwrap(..).unwrap_or_default()` and handed the
        // caller an empty run list — indistinguishable from a
        // legitimately empty brick, which a rebalance would then
        // happily stream, retire the source, and lose the rows.
        engine.inject_scan_panic_for_test(bid);
        let err = engine.export_brick("events", bid).unwrap_err();
        assert_eq!(
            err,
            crate::error::CubrickError::BrickExportFailed {
                cube: "events".into(),
                bid
            }
        );
        engine.clear_scan_panics_for_test();
        let runs = engine.export_brick("events", bid).unwrap();
        assert!(!runs.is_empty(), "the real capture has the loaded run");
        // A brick that simply does not exist here is still the
        // legitimate empty handoff.
        assert_eq!(engine.export_brick("events", 13).unwrap(), Vec::new());
    }
}
