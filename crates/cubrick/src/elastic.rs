//! Elastic membership: brick handoff, join/leave, heal, rebalance.
//!
//! A membership change (join, leave, crash-recovery) changes what the
//! [`Topology`](cluster::Topology) *wants* — which nodes should hold
//! each brick — while the directory records what the cluster
//! *has*. [`DistributedEngine::rebalance`] closes the gap with the
//! **handoff protocol**, one brick at a time:
//!
//! 1. **Subscribe + capture** — under the exclusive write gate, the
//!    destination is added to the brick's `pending` host list (every
//!    later write fans out to it) and the source's complete brick
//!    state is exported. The two happen atomically with respect to
//!    loads, so no epoch can fall between the captured state and the
//!    subscription.
//! 2. **Stream** — the capture crosses the simulated wire in chunks
//!    ([`MsgKind::HandoffChunk`]); drops are retried a bounded number
//!    of times, duplicates are harmless (installation dedups by
//!    `(epoch, kind)`), delays only defer installation.
//! 3. **Ack + install** — the destination acknowledges
//!    ([`MsgKind::HandoffAck`]), installs the runs, and the directory
//!    flips it from `pending` to `readable`. Reads may now route to
//!    it.
//! 4. **Retire** (move only) — the source leaves the directory first,
//!    then waits out in-flight scans (exclusive scan gate) before
//!    physically dropping its copy.
//!
//! Any failure before the ack leaves the source fully intact and
//! merely unsubscribes the destination: a crashed handoff can neither
//! lose a brick nor duplicate its ownership.

use std::collections::BTreeSet;

use cluster::{Fate, MsgKind, NodeId};

use crate::distributed::DistributedEngine;
use crate::engine::IsolationMode;
use crate::error::CubrickError;
use crate::persist::DeltaRun;
use crate::query::{Query, QueryResult, ResolvedQuery};
use aosi::{ReadGuard, Snapshot};

/// Per-chunk send attempts before a handoff gives up.
const HANDOFF_RETRIES: u32 = 4;
/// Runs per [`MsgKind::HandoffChunk`] message.
const RUNS_PER_CHUNK: usize = 4;

/// Deliberate handoff sabotage, enabled only by meta-tests that prove
/// the chaos suite detects broken handoff implementations.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandoffBreak {
    /// Drop the final insert run before installing at the
    /// destination: the new copy silently misses rows.
    InstallIncomplete,
    /// Treat a failed stream as success: retire the source anyway and
    /// mark the (empty) destination readable — the brick is lost.
    RetireDespiteFailure,
    /// Crash the receiving node after the first chunk lands.
    CrashReceiverMidStream,
}

impl DistributedEngine {
    /// Arms (or clears) a deliberate handoff defect. Meta-tests use
    /// this to prove the elastic suite catches broken handoffs; it
    /// has no other purpose.
    #[doc(hidden)]
    pub fn set_handoff_break(&self, b: Option<HandoffBreak>) {
        *self.handoff_break.lock() = b;
    }

    fn armed_break(&self) -> Option<HandoffBreak> {
        *self.handoff_break.lock()
    }

    /// **Copies** brick `bid` of `cube` from `from` onto `to`
    /// (replicate — the source keeps its copy). On success `to` is a
    /// readable host. On failure the directory is exactly as before.
    pub fn copy_brick(
        &self,
        cube_name: &str,
        bid: u64,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), CubrickError> {
        self.rebal.handoffs_started.inc();
        let fail = |this: &Self| {
            this.rebal.handoffs_failed.inc();
            Err(CubrickError::HandoffFailed {
                cube: cube_name.to_owned(),
                bid,
                from,
                to,
            })
        };
        let cube = self.engine(to).cube(cube_name)?;
        let key = (cube_name.to_owned(), bid);

        // 1. Subscribe + capture, atomically w.r.t. writes.
        let runs = {
            let _wg = self.write_gate.write();
            let mut dir = self.directory.write();
            let Some(entry) = dir.get_mut(&key) else {
                return fail(self);
            };
            if entry.readable.contains(&to) {
                // Already a host: nothing to move.
                self.rebal.handoffs_completed.inc();
                return Ok(());
            }
            if !entry.readable.contains(&from) {
                return fail(self);
            }
            if !entry.pending.contains(&to) {
                entry.pending.push(to);
            }
            drop(dir);
            self.engine(from).export_brick(cube_name, bid)
        };
        // A failed capture (the export task panicked, or a spilled
        // brick could not be reloaded) aborts the handoff before
        // anything streams: unsubscribe the destination and fail —
        // treating it as an empty brick would stream nothing, mark
        // the copy readable, and retire the source.
        let runs = match runs {
            Ok(runs) => runs,
            Err(_) => {
                let mut dir = self.directory.write();
                if let Some(entry) = dir.get_mut(&key) {
                    entry.pending.retain(|&n| n != to);
                }
                return fail(self);
            }
        };

        // 2. Stream the capture in chunks over the simulated wire.
        let sabotage = self.armed_break();
        let mut streamed = true;
        for (i, chunk) in runs.chunks(RUNS_PER_CHUNK.max(1)).enumerate() {
            let bytes: usize = 64 + chunk.iter().map(run_bytes).sum::<usize>();
            if !self.send_with_retry(MsgKind::HandoffChunk, from, to, bytes) {
                streamed = false;
                break;
            }
            self.rebal.handoff_chunks.inc();
            if i == 0 && sabotage == Some(HandoffBreak::CrashReceiverMidStream) {
                // The receiver dies with the stream half landed.
                self.crash_node(to);
            }
        }
        // Handle the empty-brick edge (no runs): still do the ack
        // roundtrip so ownership only transfers over a live link.
        // 3. Ack roundtrip from the destination.
        let acked = streamed && self.send_with_retry(MsgKind::HandoffAck, to, from, 32);

        if !acked {
            if sabotage == Some(HandoffBreak::RetireDespiteFailure) {
                // BROKEN ON PURPOSE: pretend it worked. The meta-test
                // proves the suite notices the lost brick.
                let mut dir = self.directory.write();
                if let Some(entry) = dir.get_mut(&key) {
                    entry.pending.retain(|&n| n != to);
                    entry.readable.push(to);
                }
                return Ok(());
            }
            // Clean failure: unsubscribe; nothing was installed, the
            // source copy is untouched.
            let mut dir = self.directory.write();
            if let Some(entry) = dir.get_mut(&key) {
                entry.pending.retain(|&n| n != to);
            }
            return fail(self);
        }

        // 4. Install at the destination. Writes that fanned out to
        // the pending subscription while we streamed are already
        // there; install dedups by (epoch, kind) so the overlap
        // between capture and subscription applies once.
        let mut install = runs;
        if sabotage == Some(HandoffBreak::InstallIncomplete) {
            // BROKEN ON PURPOSE: drop the last insert run.
            if let Some(pos) = install
                .iter()
                .rposition(|r| matches!(r, DeltaRun::Insert { .. }))
            {
                install.remove(pos);
            }
        }
        if self.engine(to).install_brick_runs(&cube, bid, install).is_err() {
            // The destination could not fault its spilled copy back
            // in: nothing was installed, so unsubscribe and fail —
            // the source keeps the brick.
            let mut dir = self.directory.write();
            if let Some(entry) = dir.get_mut(&key) {
                entry.pending.retain(|&n| n != to);
            }
            return fail(self);
        }

        // Flip: pending → readable.
        {
            let mut dir = self.directory.write();
            if let Some(entry) = dir.get_mut(&key) {
                entry.pending.retain(|&n| n != to);
                if !entry.readable.contains(&to) {
                    entry.readable.push(to);
                }
            }
        }
        self.rebal.handoffs_completed.inc();
        Ok(())
    }

    /// Drops `host`'s copy of the brick: out of the directory first,
    /// then past the scan gate (no in-flight read loses the brick),
    /// then physically. Refuses to retire the last readable copy.
    pub fn retire_copy(&self, cube_name: &str, bid: u64, host: NodeId) -> bool {
        let key = (cube_name.to_owned(), bid);
        {
            let mut dir = self.directory.write();
            let Some(entry) = dir.get_mut(&key) else {
                return false;
            };
            if !entry.readable.contains(&host) || entry.readable.len() == 1 {
                return false;
            }
            entry.readable.retain(|&n| n != host);
        }
        // Exclusive scan gate: every fan-out that might have routed a
        // read to this copy finishes before the rows vanish.
        let _sg = self.scan_gate.write();
        self.engine(host).remove_brick(cube_name, bid);
        true
    }

    /// **Moves** brick `bid` from `from` to `to`: copy, then retire
    /// the source copy. On failure the source keeps the brick.
    pub fn transfer_brick(
        &self,
        cube_name: &str,
        bid: u64,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), CubrickError> {
        self.copy_brick(cube_name, bid, from, to)?;
        self.retire_copy(cube_name, bid, from);
        self.rebal.bricks_moved.inc();
        Ok(())
    }

    /// Drives the directory toward what the topology wants: streams
    /// missing replicas onto their assigned nodes, then retires
    /// copies on nodes the ring no longer maps the brick to. Returns
    /// the number of brick copies created. Idempotent — a failed run
    /// (e.g. destination crashed mid-stream) can simply be retried.
    pub fn rebalance(&self) -> Result<usize, CubrickError> {
        let keys: Vec<(String, u64)> = self.directory.read().keys().cloned().collect();
        let mut copies = 0usize;
        let mut first_err: Option<CubrickError> = None;
        for (cube_name, bid) in keys {
            let desired = self.topology.replicas(bid);
            let current: Vec<NodeId> = {
                let dir = self.directory.read();
                match dir.get(&(cube_name.clone(), bid)) {
                    Some(entry) => entry.readable.clone(),
                    None => continue,
                }
            };
            // Add missing copies first.
            for &want in &desired {
                if current.contains(&want) || self.is_node_down(want) {
                    continue;
                }
                let Some(src) = self
                    .prefer(bid, &current)
                    .into_iter()
                    .find(|&n| !self.is_node_down(n))
                else {
                    continue;
                };
                match self.copy_brick(&cube_name, bid, src, want) {
                    Ok(()) => copies += 1,
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        continue;
                    }
                }
            }
            // Only shed extras once every desired replica has a copy:
            // a half-converged brick keeps all its old homes.
            let now: Vec<NodeId> = {
                let dir = self.directory.read();
                dir.get(&(cube_name.clone(), bid))
                    .map(|e| e.readable.clone())
                    .unwrap_or_default()
            };
            if desired.iter().all(|n| now.contains(n)) {
                for &host in &now {
                    if !desired.contains(&host) && self.retire_copy(&cube_name, bid, host) {
                        self.rebal.bricks_moved.inc();
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(copies),
        }
    }

    /// Activates slot `node` and folds it into the ring: the joiner's
    /// clock catches up, the topology reassigns its ring share, and
    /// [`DistributedEngine::rebalance`] streams exactly those bricks
    /// onto it. Returns the number of brick copies it received.
    pub fn join_node(&self, node: NodeId) -> Result<usize, CubrickError> {
        self.protocol.activate(node);
        self.tracker.add_node(node, 0);
        self.topology.add_node(node);
        let moves = self.rebalance()?;
        // The joiner now holds a complete copy of every brick the
        // ring maps to it; raise its watermark to the cluster
        // frontier so the purge floor is not pinned at zero.
        self.tracker.heal(node, self.frontier());
        Ok(moves)
    }

    /// Gracefully removes `node`: its ring share moves to the
    /// successors, its bricks stream off it, then it leaves the
    /// member set. Returns the number of brick copies streamed off.
    pub fn leave_node(&self, node: NodeId) -> Result<usize, CubrickError> {
        self.topology.remove_node(node);
        let moves = self.rebalance()?;
        self.protocol.deactivate(node);
        self.tracker.remove_node(node);
        Ok(moves)
    }

    /// Recovers a restarted member: stale brick copies it was demoted
    /// from while dark are dropped, the ring's assignment is
    /// re-streamed onto it, and its durability watermark is healed to
    /// the cluster frontier. Returns the number of copies streamed.
    pub fn heal_node(&self, node: NodeId) -> Result<usize, CubrickError> {
        self.restart_node(node);
        // Drop copies the directory demoted while the node was dark —
        // they are missing epochs and must be re-streamed whole.
        let keys: Vec<(String, u64)> = self.directory.read().keys().cloned().collect();
        for (cube_name, bid) in keys {
            let readable = self
                .directory
                .read()
                .get(&(cube_name.clone(), bid))
                .map(|e| e.readable.clone())
                .unwrap_or_default();
            if !readable.contains(&node) && self.engine(node).has_brick(&cube_name, bid) {
                let _sg = self.scan_gate.write();
                self.engine(node).remove_brick(&cube_name, bid);
            }
        }
        let moves = self.rebalance()?;
        self.tracker.heal(node, self.frontier());
        Ok(moves)
    }

    /// The cluster's committed-epoch frontier: max LCE over members.
    fn frontier(&self) -> aosi::Epoch {
        self.protocol
            .active_nodes()
            .into_iter()
            .map(|n| self.engine(n).manager().lce())
            .max()
            .unwrap_or(0)
    }

    /// Sends one protocol message with bounded retries, treating a
    /// duplicate as one delivery and a delay as a (late) delivery.
    fn send_with_retry(&self, kind: MsgKind, from: NodeId, to: NodeId, bytes: usize) -> bool {
        for _ in 0..HANDOFF_RETRIES {
            match self.network().transmit_checked(kind, from, to, bytes, 0, 0) {
                Fate::Deliver { .. } | Fate::Delay { .. } => return true,
                Fate::Drop => self.rebal.handoff_chunk_retries.inc(),
            }
        }
        false
    }

    /// Every readable replica of every brick answers `query` at
    /// `snapshot` **independently** and returns its fingerprinted
    /// result: `(bid, node, fingerprint)` triples for the
    /// replica-divergence checker. Two replicas of the same brick
    /// disagreeing at the same snapshot is a replication bug.
    pub fn replica_fingerprints(
        &self,
        cube_name: &str,
        query: &Query,
        snapshot: Snapshot,
    ) -> Result<Vec<(u64, NodeId, String)>, CubrickError> {
        let _sg = self.scan_gate.read();
        let coordinator = self.protocol.active_nodes()[0];
        let cube = self.engine(coordinator).cube(cube_name)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let _guards: Vec<ReadGuard> = self
            .engines
            .iter()
            .map(|e| e.manager().guard_snapshot(snapshot.clone()))
            .collect();
        let pairs: Vec<(u64, NodeId)> = {
            let dir = self.directory.read();
            let mut pairs: Vec<(u64, NodeId)> = dir
                .iter()
                .filter(|((c, _), _)| c == cube_name)
                .flat_map(|((_, bid), hosts)| {
                    hosts
                        .readable
                        .iter()
                        .filter(|&&n| !self.is_node_down(n))
                        .map(|&n| (*bid, n))
                        .collect::<Vec<_>>()
                })
                .collect();
            pairs.sort_unstable();
            pairs
        };
        let mut out = Vec::with_capacity(pairs.len());
        for (bid, node) in pairs {
            let allow = |b: u64| b == bid;
            let partial = self.engine(node).execute_partial_filtered(
                &cube,
                &resolved,
                Some(snapshot.clone()),
                &allow,
            )?;
            let result = QueryResult::finalize(&cube, &resolved, partial);
            out.push((bid, node, fingerprint(&result)));
        }
        Ok(out)
    }

    /// Sums a metric per brick copy and checks copies agree; a
    /// convenience wrapper used by the chaos tests.
    pub fn check_replica_divergence(
        &self,
        cube_name: &str,
        metric: &str,
        snapshot: Snapshot,
    ) -> Result<(), String> {
        let query = Query::aggregate(vec![crate::query::Aggregation::new(
            crate::query::AggFn::Sum,
            metric,
        )]);
        let triples = self
            .replica_fingerprints(cube_name, &query, snapshot)
            .map_err(|e| e.to_string())?;
        let mut checker = checker::ReplicaDivergenceChecker::new();
        for (bid, node, fp) in triples {
            checker.observe(cube_name, bid, node, &fp);
        }
        checker.finish()
    }

    /// The set of `(node, bid)` pairs physically holding a brick of
    /// `cube`, straight from the engines (not the directory). Tests
    /// use the two views to assert no brick is orphaned (stored but
    /// unreachable) or owned twice inconsistently.
    pub fn physical_bricks(&self, cube: &str) -> BTreeSet<(NodeId, u64)> {
        let mut out = BTreeSet::new();
        for node in 1..=self.num_nodes() {
            for bid in self.engine(node).brick_bids(cube) {
                out.insert((node, bid));
            }
        }
        out
    }

    /// Directory view of ownership: `(node, bid)` for every readable
    /// copy of `cube`'s bricks.
    pub fn directory_bricks(&self, cube: &str) -> BTreeSet<(NodeId, u64)> {
        let dir = self.directory.read();
        let mut out = BTreeSet::new();
        for ((c, bid), hosts) in dir.iter() {
            if c == cube {
                for &n in &hosts.readable {
                    out.insert((n, *bid));
                }
            }
        }
        out
    }

    /// Convenience: a snapshot-isolated total of `metric` over `cube`
    /// from `origin` — the chaos tests' canonical committed read.
    pub fn committed_total(
        &self,
        origin: NodeId,
        cube: &str,
        metric: &str,
    ) -> Result<f64, CubrickError> {
        let query = Query::aggregate(vec![crate::query::Aggregation::new(
            crate::query::AggFn::Sum,
            metric,
        )]);
        Ok(self
            .query(origin, cube, &query, IsolationMode::Snapshot)?
            .scalar()
            .unwrap_or(0.0))
    }
}

/// Stable textual fingerprint of a query result: sorted rows, exact
/// float bits. Two replicas of one brick must produce identical
/// fingerprints at the same snapshot.
fn fingerprint(result: &QueryResult) -> String {
    let mut rows: Vec<String> = result
        .rows
        .iter()
        .map(|(keys, vals)| {
            let k: Vec<String> = keys.iter().map(|v| v.to_string()).collect();
            let v: Vec<String> = vals
                .iter()
                .map(|x| format!("{:016x}", x.to_bits()))
                .collect();
            format!("{}|{}", k.join(","), v.join(","))
        })
        .collect();
    rows.sort_unstable();
    rows.join(";")
}

/// Rough wire size of one delta run for traffic accounting.
fn run_bytes(run: &DeltaRun) -> usize {
    match run {
        DeltaRun::Insert { records, .. } => 16 + records.len() * 24,
        DeltaRun::Delete { .. } => 16,
    }
}
