//! Cube metadata: schema, bid layout, and shared dictionaries.
//!
//! The bricks themselves live inside the shard pool (each brick is
//! owned by exactly one shard thread — Section V-B); a `Cube` is the
//! metadata needed to parse, route, and decode: the schema, the
//! precomputed bid layout, and one dictionary per string dimension.
//!
//! Dictionaries are shared `Arc`s: in a cluster, every node holds the
//! same dictionary objects, modelling Cubrick's cube metadata being
//! distributed at DDL time so that string coordinates are globally
//! consistent (see DESIGN.md, substitutions).

use std::sync::Arc;

use columnar::Dictionary;
use parking_lot::Mutex;

use crate::bid::BidLayout;
use crate::ddl::CubeSchema;

/// Aggregated memory accounting for one cube on one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CubeMemory {
    /// Bytes of record payload across all bricks.
    pub data_bytes: usize,
    /// Bytes of AOSI metadata across all bricks.
    pub aosi_bytes: usize,
    /// Bytes of dictionary encodings.
    pub dictionary_bytes: usize,
    /// Rows stored.
    pub rows: u64,
    /// Bricks materialized.
    pub bricks: usize,
}

/// Cube metadata, cheap to clone and share across nodes.
#[derive(Clone)]
pub struct Cube {
    schema: Arc<CubeSchema>,
    layout: Arc<BidLayout>,
    dictionaries: Arc<Vec<Option<Arc<Mutex<Dictionary>>>>>,
}

impl Cube {
    /// Builds the metadata for `schema`.
    pub fn new(schema: CubeSchema) -> Self {
        let layout = BidLayout::new(&schema);
        let dictionaries = schema
            .dimensions
            .iter()
            .map(|d| d.is_string.then(|| Arc::new(Mutex::new(Dictionary::new()))))
            .collect();
        Cube {
            schema: Arc::new(schema),
            layout: Arc::new(layout),
            dictionaries: Arc::new(dictionaries),
        }
    }

    /// The cube's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// The schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The bid layout.
    pub fn layout(&self) -> &BidLayout {
        &self.layout
    }

    /// Per-dimension dictionaries (`None` for integer dimensions).
    pub fn dictionaries(&self) -> &[Option<Arc<Mutex<Dictionary>>>] {
        &self.dictionaries
    }

    /// Encodes a filter value for dimension `dim` without minting new
    /// dictionary ids. Returns `None` when the value cannot match any
    /// stored row.
    pub fn encode_filter_value(&self, dim: usize, value: &columnar::Value) -> Option<u32> {
        match (value, &self.dictionaries[dim]) {
            (columnar::Value::Str(s), Some(dict)) => dict.lock().lookup(s),
            (columnar::Value::I64(v), None) => {
                let card = self.schema.dimensions[dim].cardinality;
                (*v >= 0 && *v < card as i64).then_some(*v as u32)
            }
            _ => None,
        }
    }

    /// Decodes coordinate `coord` of dimension `dim` for result
    /// presentation.
    pub fn decode_coord(&self, dim: usize, coord: u32) -> columnar::Value {
        match &self.dictionaries[dim] {
            Some(dict) => match dict.lock().decode(coord) {
                Some(s) => columnar::Value::Str(s.to_owned()),
                None => columnar::Value::I64(coord as i64),
            },
            None => columnar::Value::I64(coord as i64),
        }
    }

    /// Bytes held by this cube's dictionaries.
    pub fn dictionary_bytes(&self) -> usize {
        self.dictionaries
            .iter()
            .flatten()
            .map(|d| d.lock().heap_bytes())
            .sum()
    }
}

impl std::fmt::Debug for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cube")
            .field("name", &self.schema.name)
            .field("dimensions", &self.schema.dimensions.len())
            .field("metrics", &self.schema.metrics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{Dimension, Metric};
    use columnar::Value;

    fn cube() -> Cube {
        Cube::new(
            CubeSchema::new(
                "c",
                vec![
                    Dimension::string("region", 4, 2),
                    Dimension::int("day", 8, 4),
                ],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
    }

    #[test]
    fn encode_filter_value_never_mints_ids() {
        let c = cube();
        assert_eq!(c.encode_filter_value(0, &Value::from("us")), None);
        c.dictionaries()[0].as_ref().unwrap().lock().encode("us");
        assert_eq!(c.encode_filter_value(0, &Value::from("us")), Some(0));
        assert_eq!(c.encode_filter_value(0, &Value::from("br")), None);
    }

    #[test]
    fn encode_filter_value_validates_int_dims() {
        let c = cube();
        assert_eq!(c.encode_filter_value(1, &Value::from(3i64)), Some(3));
        assert_eq!(c.encode_filter_value(1, &Value::from(8i64)), None);
        assert_eq!(c.encode_filter_value(1, &Value::from(-1i64)), None);
        assert_eq!(c.encode_filter_value(1, &Value::from("x")), None);
    }

    #[test]
    fn decode_roundtrips_strings() {
        let c = cube();
        let id = c.dictionaries()[0].as_ref().unwrap().lock().encode("mx");
        assert_eq!(c.decode_coord(0, id), Value::Str("mx".into()));
        assert_eq!(c.decode_coord(1, 5), Value::I64(5));
    }

    #[test]
    fn clones_share_dictionaries() {
        let c = cube();
        let c2 = c.clone();
        c.dictionaries()[0].as_ref().unwrap().lock().encode("us");
        assert_eq!(c2.encode_filter_value(0, &Value::from("us")), Some(0));
    }
}
