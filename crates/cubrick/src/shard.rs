//! Bid-sharded single-writer execution (Section V-B, "Flushing").
//!
//! "In order to avoid synchronization when multiple parallel
//! transactions are required to append records to the same bricks,
//! all bricks are sharded based on bid … Each shard has an input
//! queue where all brick operations should be placed, such as
//! queries, insertions, deletions and purges, and a single thread
//! consumes and applies the operations to the in-memory objects.
//! Furthermore, since all operations on a brick (shard) are applied
//! by a single thread, no low-level locking is required."
//!
//! A [`ShardPool`] is exactly that: N worker threads, each owning the
//! bricks whose `bid % N` equals its index, fed through an unbounded
//! channel of boxed operations. Scans parallelize naturally across
//! shards; appends to one brick serialize in queue order, which is
//! also what gives the transaction manager its ordering assumption.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{Counter, ReportBuilder};

use crate::brick::Brick;

/// The bricks owned by one shard thread: `cube name -> bid -> brick`.
pub type ShardBricks = HashMap<String, HashMap<u64, Brick>>;

type Task = Box<dyn FnOnce(&mut ShardBricks) + Send>;

/// Per-pool lock-free counters (shared with the worker threads).
#[derive(Debug)]
struct PoolMetrics {
    /// Tasks executed, per shard.
    tasks: Vec<Counter>,
    /// Task panics caught (the shard survives each one).
    panics: Counter,
}

/// A pool of single-writer shard threads.
///
/// Workers are panic-safe: a panicking task is caught, counted, and
/// the shard keeps consuming its queue — one poisoned operation must
/// not take down the single thread that owns a slice of every cube's
/// bricks. Waited tasks ([`ShardPool::submit_and_wait`] /
/// [`ShardPool::map_shards`]) re-raise the panic on the calling
/// thread instead. A panicking task may leave its own partial writes
/// behind (same as before the catch — there is no rollback here);
/// isolation of such writes is the transaction layer's job.
pub struct ShardPool {
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<PoolMetrics>,
}

impl ShardPool {
    /// Spawns `num_shards` worker threads.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let metrics = Arc::new(PoolMetrics {
            tasks: (0..num_shards).map(|_| Counter::new()).collect(),
            panics: Counter::new(),
        });
        let mut senders = Vec::with_capacity(num_shards);
        let mut handles = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let (tx, rx) = unbounded::<Task>();
            senders.push(tx);
            let metrics = Arc::clone(&metrics);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cubrick-shard-{shard}"))
                    .spawn(move || {
                        let mut bricks = ShardBricks::new();
                        // Channel closure (all senders dropped) ends
                        // the shard.
                        while let Ok(task) = rx.recv() {
                            metrics.tasks[shard].inc();
                            if catch_unwind(AssertUnwindSafe(|| task(&mut bricks))).is_err() {
                                metrics.panics.inc();
                            }
                        }
                    })
                    .expect("spawn shard thread"),
            );
        }
        ShardPool {
            senders,
            handles,
            metrics,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard owning `bid`.
    pub fn shard_of(&self, bid: u64) -> usize {
        (bid % self.senders.len() as u64) as usize
    }

    /// Enqueues `task` on `shard` without waiting (loads use this:
    /// the flush step is asynchronous within a request).
    pub fn submit(&self, shard: usize, task: impl FnOnce(&mut ShardBricks) + Send + 'static) {
        self.senders[shard]
            .send(Box::new(task))
            .expect("shard thread alive");
    }

    /// Runs `task` on `shard` and waits for its result. If the task
    /// panics, the panic is re-raised here (the shard itself stays
    /// alive).
    pub fn submit_and_wait<R: Send + 'static>(
        &self,
        shard: usize,
        task: impl FnOnce(&mut ShardBricks) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = unbounded();
        self.submit(shard, move |bricks| {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| task(bricks))));
        });
        self.unwrap_waited(rx.recv().expect("shard thread alive"))
    }

    /// Enqueues `task` on `shard` and returns a [`TaskHandle`] that
    /// yields the task's outcome on [`TaskHandle::join`].
    ///
    /// Unlike [`ShardPool::submit_and_wait`], a panicking task is
    /// surfaced as `Err(payload)` at the join instead of being
    /// re-raised — the caller decides what a failed task means. The
    /// panic is still counted by the pool and the shard stays alive.
    ///
    /// Handles joined in submission order yield deterministic merges
    /// regardless of which shard finishes first — this is how the
    /// engine keeps parallel per-brick scans byte-identical to the
    /// sequential path.
    pub fn submit_handle<R: Send + 'static>(
        &self,
        shard: usize,
        task: impl FnOnce(&mut ShardBricks) -> R + Send + 'static,
    ) -> TaskHandle<R> {
        let (tx, rx) = unbounded();
        let metrics = Arc::clone(&self.metrics);
        self.submit(shard, move |bricks| {
            let outcome = catch_unwind(AssertUnwindSafe(|| task(bricks)));
            if outcome.is_err() {
                metrics.panics.inc();
            }
            let _ = tx.send(outcome);
        });
        TaskHandle { rx }
    }

    /// Runs `make_task(shard)` on every shard concurrently and
    /// collects the results in shard order. This is how scans fan
    /// out: each shard walks its own bricks in parallel.
    pub fn map_shards<R, F>(&self, make_task: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> Box<dyn FnOnce(&mut ShardBricks) -> R + Send>,
    {
        let mut receivers = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let task = make_task(shard);
            let (tx, rx) = unbounded();
            self.submit(shard, move |bricks| {
                let _ = tx.send(catch_unwind(AssertUnwindSafe(|| task(bricks))));
            });
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .map(|rx| self.unwrap_waited(rx.recv().expect("shard thread alive")))
            .collect()
    }

    /// Unwraps a waited task's outcome, counting and re-raising a
    /// caught panic on the calling thread.
    fn unwrap_waited<R>(&self, outcome: std::thread::Result<R>) -> R {
        match outcome {
            Ok(r) => r,
            Err(payload) => {
                self.metrics.panics.inc();
                resume_unwind(payload)
            }
        }
    }

    /// Task panics caught so far (fire-and-forget and waited).
    pub fn panics_caught(&self) -> u64 {
        self.metrics.panics.get()
    }

    /// Writes the shard-pool report section: pool totals plus
    /// per-shard executed-task counts and instantaneous queue depths.
    pub(crate) fn report_as(&self, report: &mut ReportBuilder, section: &str) {
        let queue_depth: usize = self.senders.iter().map(Sender::len).sum();
        let tasks: u64 = self.metrics.tasks.iter().map(Counter::get).sum();
        report
            .section(section)
            .metric("shards", self.senders.len())
            .metric("tasks", tasks)
            .metric("queue_depth", queue_depth)
            .counter("panics_caught", &self.metrics.panics);
        for (shard, sender) in self.senders.iter().enumerate() {
            report
                .metric(
                    &format!("shard{shard}.tasks"),
                    self.metrics.tasks[shard].get(),
                )
                .metric(&format!("shard{shard}.queue_depth"), sender.len());
        }
    }

    /// Blocks until every operation enqueued before this call has
    /// been applied (a queue barrier across all shards).
    pub fn drain(&self) {
        for shard in 0..self.senders.len() {
            self.submit_and_wait(shard, |_| ());
        }
    }
}

/// A pending tracked submission (see [`ShardPool::submit_handle`]).
pub struct TaskHandle<R> {
    rx: Receiver<std::thread::Result<R>>,
}

impl<R> TaskHandle<R> {
    /// Waits for the task's outcome. `Err` carries the payload of a
    /// task that panicked (already counted by the pool).
    pub fn join(self) -> std::thread::Result<R> {
        self.rx.recv().expect("shard thread alive")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};
    use crate::ingest::ParsedRecord;
    use columnar::Value;

    fn schema() -> CubeSchema {
        CubeSchema::new(
            "t",
            vec![Dimension::int("d", 16, 1)],
            vec![Metric::int("m")],
        )
        .unwrap()
    }

    #[test]
    fn shard_of_partitions_bids() {
        let pool = ShardPool::new(4);
        assert_eq!(pool.shard_of(0), 0);
        assert_eq!(pool.shard_of(5), 1);
        assert_eq!(pool.shard_of(7), 3);
        assert_eq!(pool.num_shards(), 4);
    }

    #[test]
    fn submit_and_wait_roundtrips() {
        let pool = ShardPool::new(2);
        let answer = pool.submit_and_wait(1, |_| 42);
        assert_eq!(answer, 42);
    }

    #[test]
    fn operations_on_one_shard_apply_in_order() {
        let pool = ShardPool::new(1);
        let schema = schema();
        for i in 0..100i64 {
            let schema = schema.clone();
            pool.submit(0, move |bricks| {
                let brick = bricks
                    .entry("t".into())
                    .or_default()
                    .entry(0)
                    .or_insert_with(|| Brick::new(&schema));
                brick.append(
                    1,
                    &[ParsedRecord {
                        bid: 0,
                        coords: vec![(i % 16) as u32],
                        metrics: vec![Value::I64(i)],
                    }],
                );
            });
        }
        let values = pool.submit_and_wait(0, |bricks| {
            let brick = &bricks["t"][&0];
            (0..brick.row_count() as usize)
                .map(|r| brick.metric_column(0).get_i64(r).unwrap())
                .collect::<Vec<_>>()
        });
        assert_eq!(values, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn map_shards_collects_from_all() {
        let pool = ShardPool::new(3);
        let ids = pool.map_shards(|shard| Box::new(move |_: &mut ShardBricks| shard * 10));
        assert_eq!(ids, vec![0, 10, 20]);
    }

    #[test]
    fn drain_flushes_pending_work() {
        let pool = ShardPool::new(2);
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for shard in 0..2 {
            let flag = std::sync::Arc::clone(&flag);
            pool.submit(shard, move |_| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = ShardPool::new(4);
        pool.submit(0, |_| ());
        drop(pool);
    }

    #[test]
    fn panicking_task_does_not_kill_the_shard() {
        let pool = ShardPool::new(2);
        // Fire-and-forget panic: the worker catches it and keeps
        // consuming its queue.
        pool.submit(0, |_| panic!("boom"));
        assert_eq!(pool.submit_and_wait(0, |_| 7), 7);
        assert_eq!(pool.panics_caught(), 1);

        // Waited panic: re-raised on the caller, shard still alive.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.submit_and_wait(0, |_| -> usize { panic!("waited boom") })
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        assert_eq!(pool.submit_and_wait(0, |_| 9), 9);

        // map_shards re-raises too, and the whole pool survives.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_shards(|shard| {
                Box::new(move |_: &mut ShardBricks| {
                    if shard == 1 {
                        panic!("shard 1 boom");
                    }
                    shard
                })
            })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.panics_caught(), 3);
        let ids = pool.map_shards(|shard| Box::new(move |_: &mut ShardBricks| shard));
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn submit_handle_joins_in_submission_order_and_surfaces_panics() {
        let pool = ShardPool::new(2);
        // Submit out of shard order; joining the handles in submission
        // order must return results in submission order even though
        // the two shards race.
        let handles: Vec<_> = (0..10u64)
            .map(|i| {
                pool.submit_handle(pool.shard_of(i), move |_| {
                    if i % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                })
            })
            .collect();
        let joined: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(joined, (0..10).collect::<Vec<_>>());

        // A panicking task is an Err at the join — not a re-raise —
        // and is counted; the shard survives.
        let h = pool.submit_handle(0, |_| -> u64 { panic!("handle boom") });
        assert!(h.join().is_err());
        assert_eq!(pool.panics_caught(), 1);
        assert_eq!(pool.submit_and_wait(0, |_| 3), 3);
    }

    #[test]
    fn report_covers_tasks_and_queues() {
        let pool = ShardPool::new(2);
        pool.submit_and_wait(0, |_| ());
        pool.submit_and_wait(1, |_| ());
        let mut report = ReportBuilder::new();
        pool.report_as(&mut report, "shards");
        let text = report.finish();
        assert!(text.contains("[shards]"), "report:\n{text}");
        assert!(text.contains("shards = 2"), "report:\n{text}");
        assert!(text.contains("tasks = 2"), "report:\n{text}");
        assert!(text.contains("shard0.tasks = 1"), "report:\n{text}");
        assert!(text.contains("queue_depth = 0"), "report:\n{text}");
        assert!(text.contains("panics_caught = 0"), "report:\n{text}");
    }
}
