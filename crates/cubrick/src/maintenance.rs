//! Background maintenance: the periodic purge procedure.
//!
//! "The proper data removal is conducted by a background procedure
//! (purge) at a later time when all prior transactions have already
//! finished" (Section III-C2). [`PurgeDaemon`] runs that loop: on a
//! fixed cadence it purges every brick at the node's current LSE —
//! and, for standalone in-memory deployments with no flush/replica
//! gating, it can also advance LSE to LCE first.
//!
//! Durable deployments keep `advance_lse` **off** and let the
//! `wal::FlushController` own LSE (Section III-D's replica gating);
//! the daemon then only reclaims what the flush machinery has already
//! declared safe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, PurgeStats};

/// Handle to a running background purge loop. Dropping it stops the
/// loop and joins the thread.
pub struct PurgeDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    cycles: Arc<AtomicU64>,
    rows_purged: Arc<AtomicU64>,
    entries_reclaimed: Arc<AtomicU64>,
}

impl PurgeDaemon {
    /// Spawns a purge loop over `engine` with the given cadence.
    /// `advance_lse` selects standalone mode (LSE chases LCE) vs.
    /// durable mode (LSE owned by the flush machinery).
    pub fn spawn(engine: Arc<Engine>, interval: Duration, advance_lse: bool) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let rows_purged = Arc::new(AtomicU64::new(0));
        let entries_reclaimed = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let cycles = Arc::clone(&cycles);
            let rows_purged = Arc::clone(&rows_purged);
            let entries_reclaimed = Arc::clone(&entries_reclaimed);
            std::thread::Builder::new()
                .name("cubrick-purge".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let stats = if advance_lse {
                            engine.advance_lse_and_purge()
                        } else {
                            engine.purge()
                        };
                        cycles.fetch_add(1, Ordering::Relaxed);
                        rows_purged.fetch_add(stats.rows_purged, Ordering::Relaxed);
                        entries_reclaimed.fetch_add(stats.entries_reclaimed, Ordering::Relaxed);
                        // Sleep in small slices so drop() is prompt.
                        let mut remaining = interval;
                        while !stop.load(Ordering::Relaxed) && !remaining.is_zero() {
                            let nap = remaining.min(Duration::from_millis(10));
                            std::thread::sleep(nap);
                            remaining = remaining.saturating_sub(nap);
                        }
                    }
                })
                .expect("spawn purge daemon")
        };
        PurgeDaemon {
            stop,
            handle: Some(handle),
            cycles,
            rows_purged,
            entries_reclaimed,
        }
    }

    /// Totals reclaimed so far.
    pub fn stats(&self) -> PurgeStats {
        PurgeStats {
            rows_purged: self.rows_purged.load(Ordering::Relaxed),
            entries_reclaimed: self.entries_reclaimed.load(Ordering::Relaxed),
            bricks_changed: 0,
        }
    }

    /// Purge cycles completed.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PurgeDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};
    use crate::engine::IsolationMode;
    use crate::query::{AggFn, Aggregation, Query};
    use columnar::Value;

    fn engine() -> Arc<Engine> {
        let engine = Engine::new(2);
        engine
            .create_cube(
                CubeSchema::new(
                    "t",
                    vec![Dimension::int("k", 16, 4)],
                    vec![Metric::int("m")],
                )
                .unwrap(),
            )
            .unwrap();
        Arc::new(engine)
    }

    fn count(engine: &Engine) -> u64 {
        engine
            .query(
                "t",
                &Query::aggregate(vec![Aggregation::new(AggFn::Count, "m")]),
                IsolationMode::Snapshot,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0) as u64
    }

    #[test]
    fn daemon_reclaims_deleted_data_in_the_background() {
        let engine = engine();
        let daemon = PurgeDaemon::spawn(Arc::clone(&engine), Duration::from_millis(5), true);
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::I64(i % 16), Value::I64(1)])
            .collect();
        engine.load("t", &rows, 0).unwrap();
        engine.delete_where("t", &[]).unwrap();
        // The daemon should reclaim the tombstoned rows shortly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.memory().rows > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never purged; memory = {:?}",
                engine.memory()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(count(&engine), 0);
        assert!(daemon.cycles() >= 1);
        assert_eq!(daemon.stats().rows_purged, 200);
        daemon.stop();
        // The engine keeps working after the daemon is gone.
        engine.load("t", &rows[..10], 0).unwrap();
        assert_eq!(count(&engine), 10);
    }

    #[test]
    fn daemon_without_lse_advance_respects_the_flush_gate() {
        let engine = engine();
        let daemon = PurgeDaemon::spawn(Arc::clone(&engine), Duration::from_millis(5), false);
        engine
            .load("t", &[vec![Value::I64(0), Value::I64(1)]], 0)
            .unwrap();
        engine.delete_where("t", &[]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // LSE never moved (no flush machinery ran): nothing reclaimed.
        assert_eq!(engine.memory().rows, 1, "purge must not outrun LSE");
        // Simulate the flush machinery advancing LSE; the daemon then
        // reclaims on its next cycle.
        engine
            .manager()
            .advance_lse(engine.manager().lce())
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.memory().rows > 0 {
            assert!(std::time::Instant::now() < deadline, "daemon never purged");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(daemon);
    }
}
