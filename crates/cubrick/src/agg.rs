//! Mergeable aggregation states — the algebra behind partial
//! aggregation.
//!
//! Every aggregate is a first-class [`AggState`] with the lifecycle
//! `init → accumulate (observe / accumulate_batch) → merge →
//! finalize`. The states form a commutative monoid under [`merge`]:
//! [`AggState::init`] is the identity, merging is associative, and —
//! because the engine's workloads keep metric sums exact (see
//! `Engine::execute_partial_with`) — any partition of the input rows
//! into chunks, merged in any order and association, finalizes
//! bit-identically to a single sequential pass. That algebra is what
//! legalizes per-brick partial aggregation inside shard tasks, the
//! snapshot-keyed aggregate cache, progressive refinement streaming,
//! and the distributed per-node merge: they are all the same `merge`
//! called at different levels. `oracle::agg` property-tests the laws
//! on real engine-produced partials.
//!
//! Each variant carries exactly the fields its finalization reads
//! (`Sum` is one f64, `Avg` is the `(sum, count)` pair — **never** an
//! averaged double, which would make merge weight chunks incorrectly)
//! and the f64 operations on those fields happen in ascending row
//! order in every kernel, so the vectorized, dense-table, and
//! row-at-a-time paths finalize bit-identically.
//!
//! [`merge`]: AggState::merge

use columnar::Column;

use crate::brick::Brick;
use crate::query::AggFn;

/// One mergeable aggregation state. See the module docs for the
/// algebraic contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggState {
    /// `COUNT`: rows observed (metric payload irrelevant).
    Count {
        /// Rows observed.
        count: u64,
    },
    /// `SUM` over numeric cells.
    Sum {
        /// Running sum (`0.0` identity).
        sum: f64,
    },
    /// `MIN` over numeric cells.
    Min {
        /// Running minimum (`+inf` identity).
        min: f64,
        /// Whether any numeric value was folded in. The `+inf`
        /// identity must never escape finalization: zero
        /// observations finalize to NaN (SQL NULL).
        seen: bool,
    },
    /// `MAX` over numeric cells.
    Max {
        /// Running maximum (`-inf` identity).
        max: f64,
        /// See [`AggState::Min::seen`].
        seen: bool,
    },
    /// `AVG` as the mergeable `(sum, count)` pair. Finalization — the
    /// only division — happens once, at the top of the merge tree;
    /// merging averaged doubles instead would weight every chunk
    /// equally regardless of its row count (mean-of-means).
    Avg {
        /// Running sum of observed values.
        sum: f64,
        /// Observed-value count.
        count: u64,
    },
}

impl AggState {
    /// The identity state for `func`: merging it into any state is a
    /// no-op, and finalizing it yields the function's empty-input
    /// result (0 / 0.0 / NaN).
    pub fn init(func: AggFn) -> Self {
        match func {
            AggFn::Count => AggState::Count { count: 0 },
            AggFn::Sum => AggState::Sum { sum: 0.0 },
            AggFn::Min => AggState::Min {
                min: f64::INFINITY,
                seen: false,
            },
            AggFn::Max => AggState::Max {
                max: f64::NEG_INFINITY,
                seen: false,
            },
            AggFn::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// The aggregation function this state computes.
    pub fn func(&self) -> AggFn {
        match self {
            AggState::Count { .. } => AggFn::Count,
            AggState::Sum { .. } => AggFn::Sum,
            AggState::Min { .. } => AggFn::Min,
            AggState::Max { .. } => AggFn::Max,
            AggState::Avg { .. } => AggFn::Avg,
        }
    }

    /// Folds one observed value in (row-at-a-time reference path).
    /// `Count` ignores the payload.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        match self {
            AggState::Count { count } => *count += 1,
            AggState::Sum { sum } => *sum += v,
            AggState::Min { min, seen } => {
                *min = min.min(v);
                *seen = true;
            }
            AggState::Max { max, seen } => {
                *max = max.max(v);
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
        }
    }

    /// Merges `other` (a partial over disjoint rows) into `self`.
    ///
    /// # Panics
    ///
    /// If the variants disagree — partials of the same query always
    /// carry the same aggregation list, so a mismatch is a merge-tree
    /// construction bug, never data-dependent.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count { count }, AggState::Count { count: o }) => *count += o,
            (AggState::Sum { sum }, AggState::Sum { sum: o }) => *sum += o,
            (AggState::Min { min, seen }, AggState::Min { min: om, seen: os }) => {
                *min = min.min(*om);
                *seen |= os;
            }
            (AggState::Max { max, seen }, AggState::Max { max: om, seen: os }) => {
                *max = max.max(*om);
                *seen |= os;
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: os, count: oc }) => {
                *sum += os;
                *count += oc;
            }
            (mine, other) => panic!(
                "AggState::merge variant mismatch: {:?} vs {:?}",
                mine.func(),
                other.func()
            ),
        }
    }

    /// Evaluates the state to its SQL result. Empty-input
    /// `Min`/`Max`/`Avg` finalize to NaN (SQL NULL) — the infinity
    /// fold identities and `0/0` never escape.
    pub fn finalize(&self) -> f64 {
        match self {
            AggState::Count { count } => *count as f64,
            AggState::Sum { sum } => *sum,
            AggState::Min { min, seen } => {
                if *seen {
                    *min
                } else {
                    f64::NAN
                }
            }
            AggState::Max { max, seen } => {
                if *seen {
                    *max
                } else {
                    f64::NAN
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    f64::NAN
                } else {
                    *sum / *count as f64
                }
            }
        }
    }

    /// Fused filter+aggregate kernel: folds the selected rows of one
    /// metric column into `self` with a type-specialized loop
    /// (vectorized path).
    ///
    /// The f64 operations happen in the same ascending-row order as
    /// the reference kernel's [`AggState::observe`] calls, so
    /// finalized results are bit-identical. `Count` counts rows
    /// regardless of metric payload and never dereferences the metric
    /// column (`COUNT(*)` resolves with a placeholder index); other
    /// functions skip non-numeric cells, mirroring the reference's
    /// `get_numeric` miss.
    pub(crate) fn accumulate_batch(&mut self, brick: &Brick, metric: usize, sel: &[u32]) {
        if sel.is_empty() {
            return;
        }
        if let AggState::Count { count } = self {
            *count += sel.len() as u64;
            return;
        }
        match (self, brick.metric_column(metric)) {
            (AggState::Sum { sum }, Column::I64(v)) => {
                let mut s = *sum;
                for &row in sel {
                    s += v[row as usize] as f64;
                }
                *sum = s;
            }
            (AggState::Sum { sum }, Column::F64(v)) => {
                let mut s = *sum;
                for &row in sel {
                    s += v[row as usize];
                }
                *sum = s;
            }
            (AggState::Avg { sum, count }, Column::I64(v)) => {
                let mut s = *sum;
                for &row in sel {
                    s += v[row as usize] as f64;
                }
                *sum = s;
                *count += sel.len() as u64;
            }
            (AggState::Avg { sum, count }, Column::F64(v)) => {
                let mut s = *sum;
                for &row in sel {
                    s += v[row as usize];
                }
                *sum = s;
                *count += sel.len() as u64;
            }
            (AggState::Min { min, seen }, Column::I64(v)) => {
                let mut m = *min;
                for &row in sel {
                    m = m.min(v[row as usize] as f64);
                }
                *min = m;
                *seen = true;
            }
            (AggState::Min { min, seen }, Column::F64(v)) => {
                let mut m = *min;
                for &row in sel {
                    m = m.min(v[row as usize]);
                }
                *min = m;
                *seen = true;
            }
            (AggState::Max { max, seen }, Column::I64(v)) => {
                let mut m = *max;
                for &row in sel {
                    m = m.max(v[row as usize] as f64);
                }
                *max = m;
                *seen = true;
            }
            (AggState::Max { max, seen }, Column::F64(v)) => {
                let mut m = *max;
                for &row in sel {
                    m = m.max(v[row as usize]);
                }
                *max = m;
                *seen = true;
            }
            // Non-numeric cells are skipped — the vectorized twin of
            // the reference kernel's `get_numeric` miss.
            (_, Column::Str(_)) => {}
            (AggState::Count { .. }, _) => unreachable!("handled above"),
        }
    }
}

/// One initial state per requested aggregation (the per-group row of
/// accumulators every kernel starts from).
pub(crate) fn init_states(aggs: &[(AggFn, usize)]) -> Vec<AggState> {
    aggs.iter().map(|&(func, _)| AggState::init(func)).collect()
}

/// Dense-table twin of [`AggState::accumulate_batch`]: folds the
/// selected rows of one metric column into per-group states addressed
/// as `dense[key * num_aggs + agg_idx]`. Row order within each group
/// is ascending — the same f64 operation sequence as the reference
/// kernel — because `sel`/`keys` are ascending and groups only ever
/// take updates from their own rows. The per-row `if let` always hits
/// its variant (the table is laid out by `agg_idx`), so the branch
/// predicts perfectly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_batch_dense(
    brick: &Brick,
    func: AggFn,
    metric: usize,
    agg_idx: usize,
    num_aggs: usize,
    sel: &[u32],
    keys: &[u64],
    dense: &mut [AggState],
) {
    let slot = |key: u64| key as usize * num_aggs + agg_idx;
    if func == AggFn::Count {
        for &key in keys {
            if let AggState::Count { count } = &mut dense[slot(key)] {
                *count += 1;
            }
        }
        return;
    }
    match (func, brick.metric_column(metric)) {
        (AggFn::Sum, Column::I64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Sum { sum } = &mut dense[slot(key)] {
                    *sum += v[row as usize] as f64;
                }
            }
        }
        (AggFn::Sum, Column::F64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Sum { sum } = &mut dense[slot(key)] {
                    *sum += v[row as usize];
                }
            }
        }
        (AggFn::Avg, Column::I64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Avg { sum, count } = &mut dense[slot(key)] {
                    *sum += v[row as usize] as f64;
                    *count += 1;
                }
            }
        }
        (AggFn::Avg, Column::F64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Avg { sum, count } = &mut dense[slot(key)] {
                    *sum += v[row as usize];
                    *count += 1;
                }
            }
        }
        (AggFn::Min, Column::I64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Min { min, seen } = &mut dense[slot(key)] {
                    *min = min.min(v[row as usize] as f64);
                    *seen = true;
                }
            }
        }
        (AggFn::Min, Column::F64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Min { min, seen } = &mut dense[slot(key)] {
                    *min = min.min(v[row as usize]);
                    *seen = true;
                }
            }
        }
        (AggFn::Max, Column::I64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Max { max, seen } = &mut dense[slot(key)] {
                    *max = max.max(v[row as usize] as f64);
                    *seen = true;
                }
            }
        }
        (AggFn::Max, Column::F64(v)) => {
            for (&row, &key) in sel.iter().zip(keys) {
                if let AggState::Max { max, seen } = &mut dense[slot(key)] {
                    *max = max.max(v[row as usize]);
                    *seen = true;
                }
            }
        }
        // Non-numeric cells are skipped (Count above still counted).
        (_, Column::Str(_)) => {}
        (AggFn::Count, _) => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUNCS: [AggFn; 5] = [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg];

    #[test]
    fn init_is_the_merge_identity() {
        for func in FUNCS {
            let mut state = AggState::init(func);
            for v in [3.0, -7.5, 0.25] {
                state.observe(v);
            }
            let before = state;
            state.merge(&AggState::init(func));
            assert_eq!(state, before, "{func:?}: merging init must be a no-op");
            let mut identity = AggState::init(func);
            identity.merge(&before);
            assert_eq!(identity, before, "{func:?}: init absorbs any state");
        }
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let values = [4.0, -1.0, 0.5, 12.0, -3.25, 8.0, 8.0];
        for func in FUNCS {
            for split in 0..=values.len() {
                let mut left = AggState::init(func);
                let mut right = AggState::init(func);
                for &v in &values[..split] {
                    left.observe(v);
                }
                for &v in &values[split..] {
                    right.observe(v);
                }
                left.merge(&right);
                let mut sequential = AggState::init(func);
                for &v in &values {
                    sequential.observe(v);
                }
                assert_eq!(
                    left.finalize().to_bits(),
                    sequential.finalize().to_bits(),
                    "{func:?} split at {split}"
                );
            }
        }
    }

    /// Regression: AVG must merge `(sum, count)` pairs. A naive
    /// implementation that merges finalized doubles — mean-of-means —
    /// weights both chunks equally regardless of row count and gets
    /// this two-chunk case wrong.
    #[test]
    fn avg_merge_combines_sum_count_not_means() {
        // Chunk A: three zeros (avg 0.0). Chunk B: one 3.0 (avg 3.0).
        let mut a = AggState::init(AggFn::Avg);
        for _ in 0..3 {
            a.observe(0.0);
        }
        let mut b = AggState::init(AggFn::Avg);
        b.observe(3.0);
        let mean_of_means = (a.finalize() + b.finalize()) / 2.0;
        a.merge(&b);
        assert_eq!(a.finalize(), 0.75, "true average over all four rows");
        assert_eq!(mean_of_means, 1.5, "what the naive merge would report");
        assert_ne!(a.finalize(), mean_of_means);
        // The merged state still carries the exact pair.
        assert_eq!(a, AggState::Avg { sum: 3.0, count: 4 });
    }

    #[test]
    fn merge_is_associative_and_commutative_on_exact_inputs() {
        // Integer-valued floats: sums are exact, so every
        // association/order finalizes bit-identically (the engine's
        // workload convention — see the module docs).
        let chunks: [&[f64]; 3] = [&[1.0, 2.0], &[-5.0], &[10.0, 3.0, 3.0]];
        for func in FUNCS {
            let state_of = |vals: &[f64]| {
                let mut s = AggState::init(func);
                for &v in vals {
                    s.observe(v);
                }
                s
            };
            let [a, b, c] = [
                state_of(chunks[0]),
                state_of(chunks[1]),
                state_of(chunks[2]),
            ];
            // (a · b) · c
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            // a · (b · c)
            let mut right_tail = b;
            right_tail.merge(&c);
            let mut right = a;
            right.merge(&right_tail);
            assert_eq!(left, right, "{func:?}: associativity");
            // c · b · a (commuted)
            let mut rev = c;
            rev.merge(&b);
            rev.merge(&a);
            assert_eq!(
                rev.finalize().to_bits(),
                left.finalize().to_bits(),
                "{func:?}: commutativity"
            );
        }
    }

    #[test]
    #[should_panic(expected = "variant mismatch")]
    fn mismatched_merge_panics() {
        let mut sum = AggState::init(AggFn::Sum);
        sum.merge(&AggState::init(AggFn::Count));
    }

    #[test]
    fn empty_states_finalize_to_sql_null_semantics() {
        assert_eq!(AggState::init(AggFn::Count).finalize(), 0.0);
        assert_eq!(AggState::init(AggFn::Sum).finalize(), 0.0);
        assert!(AggState::init(AggFn::Min).finalize().is_nan());
        assert!(AggState::init(AggFn::Max).finalize().is_nan());
        assert!(AggState::init(AggFn::Avg).finalize().is_nan());
    }
}
