//! The multi-node Cubrick cluster (Sections IV and V-B).
//!
//! One [`Engine`] per node, one shared [`ProtocolCluster`] for the
//! transaction traffic, one consistent-hashing [`Ring`] assigning
//! bricks to nodes, and one [`SimulatedNetwork`] accounting every
//! hop. The load pipeline is the paper's:
//!
//! 1. **Parse** on the node that received the buffer (any node).
//! 2. **Validate & forward**: check `max_rejected`; create the
//!    transaction; forward per-bid record groups to the owning nodes,
//!    piggybacking the begin broadcast (pending sets + clocks) on the
//!    same messages.
//! 3. **Flush**: each owning node applies the appends on its shard
//!    threads.
//!
//! Commit is a single roundtrip: "all remote nodes are required to
//! commit the transaction and no consensus protocol is required".
//!
//! Distributed queries take one snapshot at the coordinator, register
//! it as an active reader on *every* node (so no node's purge can
//! disturb the scan), fan out, and merge partial aggregates before
//! finalizing.

use std::collections::HashMap;
use std::time::Instant;

use aosi::{ReadGuard, Snapshot};
use cluster::{MsgKind, NodeId, ProtocolCluster, Ring, SimulatedNetwork};
use columnar::Row;
use obs::ReportBuilder;

use crate::cube::Cube;
use crate::ddl::CubeSchema;
use crate::engine::{Engine, EngineMemory, IsolationMode, LoadStageTimings, PurgeStats};
use crate::error::CubrickError;
use crate::ingest::{parse_rows, ParsedBatch};
use crate::query::{PartialResult, Query, QueryResult, ResolvedQuery};

/// Result of a distributed load request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistributedLoadOutcome {
    /// The transaction's epoch.
    pub epoch: aosi::Epoch,
    /// Records stored.
    pub accepted: usize,
    /// Records rejected during parsing.
    pub rejected: usize,
    /// Nodes that received data.
    pub nodes_touched: usize,
    /// Stage latencies (parse / forward / flush / total).
    pub timings: LoadStageTimings,
}

/// An N-node Cubrick cluster in one process.
pub struct DistributedEngine {
    protocol: ProtocolCluster,
    engines: Vec<Engine>,
    ring: Ring,
}

impl DistributedEngine {
    /// Builds a cluster of `num_nodes` nodes, each with
    /// `shards_per_node` shard threads, over `network`.
    pub fn new(num_nodes: u64, shards_per_node: usize, network: SimulatedNetwork) -> Self {
        let protocol = ProtocolCluster::new(num_nodes, network);
        let engines = (1..=num_nodes)
            .map(|node| Engine::with_manager(protocol.manager(node).clone(), shards_per_node))
            .collect();
        DistributedEngine {
            protocol,
            engines,
            ring: Ring::new(num_nodes, 64),
        }
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> u64 {
        self.engines.len() as u64
    }

    /// The engine running on `node` (1-based).
    pub fn engine(&self, node: NodeId) -> &Engine {
        &self.engines[(node - 1) as usize]
    }

    /// The shared network (traffic stats).
    pub fn network(&self) -> &SimulatedNetwork {
        self.protocol.network()
    }

    /// The protocol cluster (clock/pending inspection).
    pub fn protocol(&self) -> &ProtocolCluster {
        &self.protocol
    }

    /// Cluster DDL: creates the cube on every node with shared
    /// metadata (schema + dictionaries distributed at DDL time).
    pub fn create_cube(&self, schema: CubeSchema) -> Result<Cube, CubrickError> {
        let cube = Cube::new(schema);
        for engine in &self.engines {
            engine.register_cube(cube.clone())?;
        }
        Ok(cube)
    }

    /// Loads `rows` through coordinator `origin` in one implicit
    /// distributed transaction.
    pub fn load(
        &self,
        origin: NodeId,
        cube_name: &str,
        rows: &[Row],
        max_rejected: usize,
    ) -> Result<DistributedLoadOutcome, CubrickError> {
        let started = Instant::now();
        let cube = self.engine(origin).cube(cube_name)?;

        // 1. Parse at the receiving node.
        let parse_started = Instant::now();
        let batch = parse_rows(cube.schema(), cube.layout(), cube.dictionaries(), rows);
        let parse = parse_started.elapsed();
        if batch.rejected > max_rejected {
            return Err(CubrickError::TooManyRejected {
                rejected: batch.rejected,
                max_rejected,
            });
        }
        let (accepted, rejected) = (batch.accepted, batch.rejected);

        // 2. Validate & forward: transaction + routing.
        let mut txn = self.protocol.begin_rw(origin);
        let forward_started = Instant::now();
        // The begin broadcast rides on the data fan-out. If a remote
        // stays unreachable through the retry budget the load cannot
        // take an SI-consistent snapshot of the cluster, so it rolls
        // back (nothing was flushed yet) instead of half-starting.
        if let Err(e) = self.protocol.broadcast_begin(&mut txn, 0) {
            let _ = self.protocol.rollback(&txn);
            return Err(e.into());
        }
        let mut per_node: HashMap<NodeId, ParsedBatch> = HashMap::new();
        for (bid, records) in batch.by_bid {
            let node = self.ring.node_for(bid);
            let target = per_node.entry(node).or_default();
            target.accepted += records.len();
            target.by_bid.insert(bid, records);
        }
        let nodes_touched = per_node.len();
        // Forward the record groups (records that stay on the origin
        // do not cross the wire). The forwards carry the origin's
        // clock like any operation fan-out; an undeliverable forward
        // aborts the load before anything flushes.
        for (&node, node_batch) in &per_node {
            if node != origin {
                let bytes: usize = node_batch
                    .by_bid
                    .values()
                    .map(|recs| recs.len() * approx_record_bytes(&cube))
                    .sum();
                if let Err(e) = self.protocol.forward_op(&txn, &[node], bytes) {
                    let _ = self.protocol.rollback(&txn);
                    return Err(e.into());
                }
            }
        }
        let forward = forward_started.elapsed();

        // 3. Flush on each owning node.
        let flush_started = Instant::now();
        std::thread::scope(|scope| {
            for (node, node_batch) in per_node {
                let engine = self.engine(node);
                let cube = cube.clone();
                let epoch = txn.epoch;
                scope.spawn(move || engine.flush_batch(&cube, epoch, node_batch));
            }
        });
        let flush = flush_started.elapsed();

        self.protocol.commit(&txn)?;
        Ok(DistributedLoadOutcome {
            epoch: txn.epoch,
            accepted,
            rejected,
            nodes_touched,
            timings: LoadStageTimings {
                parse,
                forward,
                flush,
                total: started.elapsed(),
            },
        })
    }

    /// Runs a query from coordinator `origin` under `mode`, fanning
    /// out to every node and merging partial aggregates.
    pub fn query(
        &self,
        origin: NodeId,
        cube_name: &str,
        query: &Query,
        mode: IsolationMode,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.engine(origin).cube(cube_name)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let (snapshot, _guards): (Option<Snapshot>, Vec<ReadGuard>) = match mode {
            IsolationMode::Snapshot => {
                let snapshot = self.protocol.begin_ro(origin);
                // Pin the snapshot on every node for the scan's
                // lifetime: no purge anywhere may pass it.
                let guards = self
                    .engines
                    .iter()
                    .map(|e| e.manager().guard_snapshot(snapshot.clone()))
                    .collect();
                (Some(snapshot), guards)
            }
            IsolationMode::ReadUncommitted => (None, Vec::new()),
        };
        self.fan_out_query(origin, &cube, &resolved, snapshot)
    }

    /// Runs a query from coordinator `origin` at an **explicit**
    /// snapshot instead of the node's current LCE. This is how a
    /// reader replays a historical view — and how the chaos suite
    /// probes that committed reads stay stable while faults are
    /// being injected: the same `(query, snapshot)` pair must return
    /// the same result no matter what the network does in between.
    pub fn query_at(
        &self,
        origin: NodeId,
        cube_name: &str,
        query: &Query,
        snapshot: Snapshot,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.engine(origin).cube(cube_name)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        // Pin the snapshot cluster-wide, exactly like a live query.
        let _guards: Vec<ReadGuard> = self
            .engines
            .iter()
            .map(|e| e.manager().guard_snapshot(snapshot.clone()))
            .collect();
        self.fan_out_query(origin, &cube, &resolved, Some(snapshot))
    }

    fn fan_out_query(
        &self,
        origin: NodeId,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
    ) -> Result<QueryResult, CubrickError> {
        let mut merged = PartialResult::default();
        // Partials are joined in node order so the merge is
        // deterministic; a scan failure on any node fails the whole
        // distributed query.
        let partials: Vec<Result<PartialResult, CubrickError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter()
                .enumerate()
                .map(|(idx, engine)| {
                    let node = idx as u64 + 1;
                    if node != origin {
                        // Query shipping + result return.
                        self.network().transmit_typed(MsgKind::Forward, 128, 0, 0);
                    }
                    let cube = cube.clone();
                    let resolved = resolved.clone();
                    let snapshot = snapshot.clone();
                    scope.spawn(move || engine.execute_partial(&cube, &resolved, snapshot))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for partial in partials {
            merged.merge(partial?);
        }
        Ok(QueryResult::finalize(cube, resolved, merged))
    }

    /// Distributed partition delete from coordinator `origin`
    /// (Section IV: "delete operations must test the user's
    /// predicates against each partition on every node").
    pub fn delete_where(
        &self,
        origin: NodeId,
        cube_name: &str,
        filters: &[crate::query::DimFilter],
    ) -> Result<(aosi::Epoch, u64), CubrickError> {
        // The engine-level delete runs its own local implicit
        // transaction; the distributed version needs one shared
        // epoch, so it drives the brick marking directly.
        let cube = self.engine(origin).cube(cube_name)?;
        let mut txn = self.protocol.begin_rw(origin);
        if let Err(e) = self.protocol.broadcast_begin(&mut txn, 64) {
            let _ = self.protocol.rollback(&txn);
            return Err(e.into());
        }
        // Ship the predicate everywhere before marking anything, so
        // an unreachable node aborts the delete while it is still
        // side-effect free.
        for node in 1..=self.num_nodes() {
            if node != origin {
                if let Err(e) = self.protocol.forward_op(&txn, &[node], 64) {
                    let _ = self.protocol.rollback(&txn);
                    return Err(e.into());
                }
            }
        }
        let mut marked_total = 0u64;
        for engine in &self.engines {
            marked_total += engine.mark_delete_where(&cube, filters, txn.epoch)?;
        }
        self.protocol.commit(&txn)?;
        Ok((txn.epoch, marked_total))
    }

    /// Advances LSE to LCE and purges on every node. Returns the
    /// aggregate stats.
    pub fn purge_all(&self) -> PurgeStats {
        self.engines.iter().map(Engine::advance_lse_and_purge).fold(
            PurgeStats::default(),
            |mut a, s| {
                a.rows_purged += s.rows_purged;
                a.entries_reclaimed += s.entries_reclaimed;
                a.bricks_changed += s.bricks_changed;
                a
            },
        )
    }

    /// Renders the cluster-wide metrics report: the `[cluster]`
    /// network section (per-type message counts, piggybacked
    /// pendingTxs/clock bytes) followed by every node's `[aosi]`,
    /// `[engine]`, and `[shards]` sections prefixed `node{n}.`.
    pub fn metrics_report(&self) -> String {
        let mut report = ReportBuilder::new();
        self.network().report(&mut report);
        self.protocol.report(&mut report);
        for (idx, engine) in self.engines.iter().enumerate() {
            engine.report_into(&mut report, &format!("node{}.", idx + 1));
        }
        report.finish()
    }

    /// Aggregate memory accounting across nodes.
    pub fn memory(&self) -> EngineMemory {
        let mut total = EngineMemory::default();
        for engine in &self.engines {
            let m = engine.memory();
            total.data_bytes += m.data_bytes;
            total.aosi_bytes += m.aosi_bytes;
            total.rows += m.rows;
            total.bricks += m.bricks;
        }
        // Dictionaries are shared cluster-wide: count them once.
        total.dictionary_bytes = self.engines[0].memory().dictionary_bytes;
        total.mvcc_baseline_bytes = total.rows * 16;
        total
    }
}

/// Rough wire size of one parsed record for traffic accounting.
fn approx_record_bytes(cube: &Cube) -> usize {
    cube.schema().dimensions.len() * 4 + cube.schema().metrics.len() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{Dimension, Metric};
    use crate::query::{AggFn, Aggregation, DimFilter};
    use columnar::Value;

    fn cluster(nodes: u64) -> DistributedEngine {
        let d = DistributedEngine::new(nodes, 2, SimulatedNetwork::instant());
        d.create_cube(
            CubeSchema::new(
                "events",
                vec![
                    Dimension::string("region", 8, 1),
                    Dimension::int("day", 32, 4),
                ],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    fn row(region: &str, day: i64, likes: i64) -> Row {
        vec![Value::from(region), Value::from(day), Value::from(likes)]
    }

    fn total_likes(d: &DistributedEngine, origin: NodeId, mode: IsolationMode) -> f64 {
        d.query(
            origin,
            "events",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
            mode,
        )
        .unwrap()
        .scalar()
        .unwrap_or(0.0)
    }

    #[test]
    fn load_spreads_data_across_nodes() {
        let d = cluster(4);
        let rows: Vec<Row> = (0..256)
            .map(|i| row(["us", "br", "mx", "ca"][i % 4], (i % 32) as i64, 1))
            .collect();
        let outcome = d.load(1, "events", &rows, 0).unwrap();
        assert_eq!(outcome.accepted, 256);
        assert!(outcome.nodes_touched >= 2, "data should spread");
        // Every node's engine holds some subset; the union is all.
        let stored: u64 = (1..=4).map(|n| d.engine(n).memory().rows).sum();
        assert_eq!(stored, 256);
        assert_eq!(total_likes(&d, 2, IsolationMode::Snapshot), 256.0);
    }

    #[test]
    fn query_from_any_coordinator_sees_committed_data() {
        let d = cluster(3);
        d.load(1, "events", &[row("us", 0, 10)], 0).unwrap();
        d.load(2, "events", &[row("br", 1, 20)], 0).unwrap();
        for origin in 1..=3 {
            assert_eq!(
                total_likes(&d, origin, IsolationMode::Snapshot),
                30.0,
                "coordinator {origin}"
            );
        }
    }

    #[test]
    fn grouped_query_merges_across_nodes() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..60)
            .map(|i| row(["us", "br"][i % 2], (i % 32) as i64, (i % 2) as i64 + 1))
            .collect();
        d.load(1, "events", &rows, 0).unwrap();
        let result = d
            .query(
                2,
                "events",
                &Query::aggregate(vec![
                    Aggregation::new(AggFn::Sum, "likes"),
                    Aggregation::new(AggFn::Avg, "likes"),
                ])
                .grouped_by("region"),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.rows.len(), 2);
        let by_key: std::collections::HashMap<String, Vec<f64>> = result
            .rows
            .iter()
            .map(|(k, v)| (k[0].to_string(), v.clone()))
            .collect();
        assert_eq!(by_key["us"], vec![30.0, 1.0], "30 rows of 1");
        assert_eq!(by_key["br"], vec![60.0, 2.0], "30 rows of 2");
    }

    #[test]
    fn distributed_delete_marks_everywhere() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..64).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let (_, marked) = d.delete_where(2, "events", &[]).unwrap();
        assert!(marked >= 1);
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 0.0);
        let stats = d.purge_all();
        assert_eq!(stats.rows_purged, 64);
        assert_eq!(d.memory().rows, 0);
    }

    #[test]
    fn ru_sees_uncommitted_distributed_load() {
        let d = cluster(2);
        // Build a distributed txn manually: begin, flush, don't commit.
        let cube = d.engine(1).cube("events").unwrap();
        let mut txn = d.protocol().begin_rw(1);
        d.protocol().broadcast_begin(&mut txn, 0).unwrap();
        let batch = parse_rows(
            cube.schema(),
            cube.layout(),
            cube.dictionaries(),
            &[row("us", 0, 7)],
        );
        let node = d.ring.node_for(*batch.by_bid.keys().next().unwrap());
        d.engine(node).flush_batch(&cube, txn.epoch, batch);
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 0.0);
        assert_eq!(total_likes(&d, 1, IsolationMode::ReadUncommitted), 7.0);
        d.protocol().commit(&txn).unwrap();
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 7.0);
    }

    #[test]
    fn filtered_delete_respects_containment() {
        let d = cluster(2);
        let rows: Vec<Row> = (0..32).map(|i| row("us", i as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let (_, marked) = d
            .delete_where(
                1,
                "events",
                &[DimFilter::new(
                    "day",
                    (0..4).map(|v| Value::from(v as i64)).collect(),
                )],
            )
            .unwrap();
        assert!(marked >= 1);
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 28.0);
    }

    #[test]
    fn network_traffic_is_accounted() {
        let d = cluster(4);
        let before = d.network().stats();
        let rows: Vec<Row> = (0..100).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let after_load = d.network().stats();
        assert!(after_load.messages > before.messages);
        assert!(after_load.bytes > before.bytes);
        let _ = total_likes(&d, 1, IsolationMode::Snapshot);
        assert!(d.network().stats().messages > after_load.messages);
    }

    #[test]
    fn metrics_report_covers_every_node() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..64).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let _ = total_likes(&d, 2, IsolationMode::Snapshot);
        let report = d.metrics_report();
        assert!(report.contains("[cluster]"), "report:\n{report}");
        assert!(
            report.contains("messages.begin_request"),
            "report:\n{report}"
        );
        for node in 1..=3 {
            for section in ["aosi", "engine", "shards"] {
                let needle = format!("[node{node}.{section}]");
                assert!(report.contains(&needle), "missing {needle}:\n{report}");
            }
        }
        // The coordinator's load and everyone's scans show up.
        assert!(report.contains("node1.engine]"), "report:\n{report}");
        assert!(report.contains("flushes = 1"), "report:\n{report}");
        assert!(report.contains("queries = 0"), "report:\n{report}");
    }

    #[test]
    fn memory_aggregates_cluster_wide() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..300).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let m = d.memory();
        assert_eq!(m.rows, 300);
        assert_eq!(m.mvcc_baseline_bytes, 4800);
        assert!(m.aosi_bytes > 0);
    }
}
