//! The multi-node Cubrick cluster (Sections IV and V-B), elastic.
//!
//! One [`Engine`] per node, one shared [`ProtocolCluster`] for the
//! transaction traffic, a [`Topology`] (consistent-hash ring +
//! membership) placing brick replicas on nodes, and one
//! [`SimulatedNetwork`] accounting every hop. The load pipeline is
//! the paper's:
//!
//! 1. **Parse** on the node that received the buffer (any node).
//! 2. **Validate & forward**: check `max_rejected`; create the
//!    transaction; forward per-bid record groups to **every replica**
//!    of the owning arc, piggybacking the begin broadcast (pending
//!    sets + clocks) on the same messages.
//! 3. **Flush**: each replica applies the appends on its shard
//!    threads.
//!
//! Commit is a single roundtrip: "all remote nodes are required to
//! commit the transaction and no consensus protocol is required".
//!
//! ## Replica reads and the cluster-wide LSE gate (§III-D)
//!
//! The **brick directory** records which nodes hold a complete,
//! readable copy of each brick. A distributed query routes every
//! brick to the first *live* host in its replica preference order and
//! scans it exactly once cluster-wide; when the preferred replica is
//! dark the read falls back to the next copy, and only when no live
//! copy exists does the read fail ([`CubrickError::NoReplicaAvailable`]).
//!
//! Writes degrade rather than block: a replica that is down when a
//! load commits is *demoted* — dropped from the brick's readable set
//! and recorded as having **missed** the epoch in the
//! [`ReplicationTracker`], which caps its durability watermark below
//! the hole. [`DistributedEngine::purge_all`] then enforces the
//! paper's rule cluster-wide: the purge floor is the tracker's safe
//! epoch — the minimum over every replica's acked watermark, withheld
//! entirely while any node is offline — so "LSE needs to be prevented
//! from advancing if data is not safely stored on all replicas or if
//! any replica is offline".
//!
//! Node join/leave and the brick handoff protocol live in the
//! `elastic` module ([`DistributedEngine::join_node`] /
//! [`DistributedEngine::leave_node`] / [`DistributedEngine::transfer_brick`]).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use aosi::{ReadGuard, Snapshot};
use cluster::{
    MsgKind, NodeId, ProtocolCluster, ReplicationTracker, RetryPolicy, SimulatedNetwork, Topology,
};
use columnar::Row;
use obs::{Counter, ReportBuilder};
use parking_lot::{Mutex, RwLock};

use crate::cube::Cube;
use crate::ddl::CubeSchema;
use crate::elastic::HandoffBreak;
use crate::engine::{Engine, EngineMemory, IsolationMode, LoadStageTimings, PurgeStats};
use crate::error::CubrickError;
use crate::ingest::{parse_rows, ParsedBatch};
use crate::query::{PartialResult, Query, QueryResult, ResolvedQuery};

/// Read-routing plan: which bricks each node answers for, plus the
/// set of directory-known bids (bricks outside the directory fall
/// back to whichever node stores them).
type ReadRouting = (HashMap<NodeId, HashSet<u64>>, HashSet<u64>);

/// Result of a distributed load request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistributedLoadOutcome {
    /// The transaction's epoch.
    pub epoch: aosi::Epoch,
    /// Records stored.
    pub accepted: usize,
    /// Records rejected during parsing.
    pub rejected: usize,
    /// Nodes that received data.
    pub nodes_touched: usize,
    /// Stage latencies (parse / forward / flush / total).
    pub timings: LoadStageTimings,
}

/// Configuration for an elastic cluster
/// ([`DistributedEngine::elastic`]).
#[derive(Clone, Debug)]
pub struct ElasticConfig {
    /// Provisioned node slots (`1..=capacity`). Fixes the epoch
    /// stride for the cluster's lifetime; joins can only activate
    /// slots within capacity.
    pub capacity: u64,
    /// Initially active members.
    pub active: Vec<NodeId>,
    /// Shard threads per node.
    pub shards_per_node: usize,
    /// Copies of every brick (1 = no redundancy).
    pub replication: usize,
    /// Protocol retry budget.
    pub retry: RetryPolicy,
}

/// Which nodes host one brick.
#[derive(Clone, Debug, Default)]
pub(crate) struct BrickHosts {
    /// Nodes holding a complete, readable copy.
    pub(crate) readable: Vec<NodeId>,
    /// Nodes mid-handoff: writes fan out to them, reads skip them.
    pub(crate) pending: Vec<NodeId>,
}

/// `[cluster.rebalance]` counters.
#[derive(Debug, Default)]
pub(crate) struct RebalanceMetrics {
    pub(crate) replica_reads: Counter,
    pub(crate) fallback_reads: Counter,
    pub(crate) unanswered_reads: Counter,
    pub(crate) degraded_writes: Counter,
    pub(crate) handoffs_started: Counter,
    pub(crate) handoffs_completed: Counter,
    pub(crate) handoffs_failed: Counter,
    pub(crate) handoff_chunks: Counter,
    pub(crate) handoff_chunk_retries: Counter,
    pub(crate) bricks_moved: Counter,
}

/// An N-node Cubrick cluster in one process.
pub struct DistributedEngine {
    pub(crate) protocol: ProtocolCluster,
    pub(crate) engines: Vec<Engine>,
    pub(crate) topology: Topology,
    pub(crate) tracker: ReplicationTracker,
    /// `(cube, bid)` → hosts. The single source of truth for which
    /// node answers a brick read and which nodes receive its writes.
    pub(crate) directory: RwLock<HashMap<(String, u64), BrickHosts>>,
    /// Loads hold this shared for their route+flush window; a handoff
    /// capture holds it exclusively, so every write either lands in
    /// the captured state or fans out to the subscribed pending host.
    pub(crate) write_gate: RwLock<()>,
    /// Queries hold this shared for their fan-out; a brick retire
    /// holds it exclusively so no in-flight scan loses a brick.
    pub(crate) scan_gate: RwLock<()>,
    pub(crate) rebal: RebalanceMetrics,
    /// Deliberate handoff sabotage for meta-tests (see
    /// [`DistributedEngine::set_handoff_break`]).
    pub(crate) handoff_break: Mutex<Option<HandoffBreak>>,
}

impl DistributedEngine {
    /// Builds a fixed cluster of `num_nodes` nodes (all active,
    /// replication factor 1), each with `shards_per_node` shard
    /// threads, over `network`.
    pub fn new(num_nodes: u64, shards_per_node: usize, network: SimulatedNetwork) -> Self {
        Self::elastic(
            ElasticConfig {
                capacity: num_nodes,
                active: (1..=num_nodes).collect(),
                shards_per_node,
                replication: 1,
                retry: RetryPolicy::default(),
            },
            network,
        )
    }

    /// Builds an elastic cluster: `capacity` provisioned slots,
    /// `config.active` initially members, `config.replication` copies
    /// per brick.
    pub fn elastic(config: ElasticConfig, network: SimulatedNetwork) -> Self {
        let protocol =
            ProtocolCluster::with_capacity(config.capacity, &config.active, network, config.retry);
        let engines: Vec<Engine> = (1..=config.capacity)
            .map(|node| {
                Engine::with_manager(protocol.manager(node).clone(), config.shards_per_node)
            })
            .collect();
        let topology = Topology::new(&config.active, 64, config.replication);
        let tracker = ReplicationTracker::default();
        for &node in &config.active {
            tracker.add_node(node, 0);
        }
        DistributedEngine {
            protocol,
            engines,
            topology,
            tracker,
            directory: RwLock::new(HashMap::new()),
            write_gate: RwLock::new(()),
            scan_gate: RwLock::new(()),
            rebal: RebalanceMetrics::default(),
            handoff_break: Mutex::new(None),
        }
    }

    /// Provisioned cluster capacity (slots, active or not).
    pub fn num_nodes(&self) -> u64 {
        self.engines.len() as u64
    }

    /// Currently active members, ascending.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.protocol.active_nodes()
    }

    /// The engine running on `node` (1-based).
    pub fn engine(&self, node: NodeId) -> &Engine {
        &self.engines[(node - 1) as usize]
    }

    /// The shared network (traffic stats).
    pub fn network(&self) -> &SimulatedNetwork {
        self.protocol.network()
    }

    /// The protocol cluster (clock/pending inspection).
    pub fn protocol(&self) -> &ProtocolCluster {
        &self.protocol
    }

    /// The replica durability tracker (§III-D gate).
    pub fn tracker(&self) -> &ReplicationTracker {
        &self.tracker
    }

    /// The placement topology (membership + ring).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Read-routing tallies: `(replica_reads, fallback_reads,
    /// unanswered_reads)` — bricks answered by their preferred
    /// replica, bricks re-routed to a surviving copy, and bricks no
    /// live replica could serve (the chaos suites require the last to
    /// stay zero).
    pub fn read_routing_stats(&self) -> (u64, u64, u64) {
        (
            self.rebal.replica_reads.get(),
            self.rebal.fallback_reads.get(),
            self.rebal.unanswered_reads.get(),
        )
    }

    /// The brick's primary (arc owner) under the current topology.
    pub fn primary(&self, bid: u64) -> NodeId {
        self.topology.primary(bid)
    }

    /// The nodes currently serving readable copies of `bid`, replica
    /// preference order. Empty for a brick the cluster has never seen.
    pub fn brick_hosts(&self, cube: &str, bid: u64) -> Vec<NodeId> {
        let dir = self.directory.read();
        match dir.get(&(cube.to_owned(), bid)) {
            Some(entry) => self.prefer(bid, &entry.readable),
            None => Vec::new(),
        }
    }

    /// Every brick the directory tracks for `cube`, ascending.
    pub fn known_bricks(&self, cube: &str) -> Vec<u64> {
        let mut bids: Vec<u64> = self
            .directory
            .read()
            .keys()
            .filter(|(c, _)| c == cube)
            .map(|&(_, bid)| bid)
            .collect();
        bids.sort_unstable();
        bids
    }

    /// Marks `node` unreachable: network messages to/from it drop and
    /// the durability tracker withholds the cluster purge floor
    /// (§III-D: any replica offline ⇒ LSE frozen).
    pub fn crash_node(&self, node: NodeId) {
        self.network().crash_node(node);
        self.tracker.mark_offline(node);
    }

    /// Brings a crashed node back (its state survived — fail-stutter
    /// model). The node may still be missing epochs written while it
    /// was dark; [`DistributedEngine::heal_node`] re-streams those.
    pub fn restart_node(&self, node: NodeId) {
        self.network().restart_node(node);
        self.tracker.mark_online(node);
    }

    /// Whether `node` is currently unreachable (manual crash, planned
    /// crash window, or tracker-known outage).
    pub(crate) fn is_node_down(&self, node: NodeId) -> bool {
        self.network().is_down(node) || self.tracker.is_offline(node)
    }

    /// Orders `hosts` by the brick's replica preference (ring order
    /// first, then any remaining hosts ascending — e.g. copies not
    /// yet rebalanced off after a membership change).
    pub(crate) fn prefer(&self, bid: u64, hosts: &[NodeId]) -> Vec<NodeId> {
        let ring_order = self.topology.replicas(bid);
        let mut out: Vec<NodeId> = ring_order
            .iter()
            .copied()
            .filter(|n| hosts.contains(n))
            .collect();
        let mut rest: Vec<NodeId> = hosts.iter().copied().filter(|n| !out.contains(n)).collect();
        rest.sort_unstable();
        out.extend(rest);
        out
    }

    /// Cluster DDL: creates the cube on every slot (dormant ones too,
    /// so a later join already holds the metadata) with shared schema
    /// and dictionaries.
    pub fn create_cube(&self, schema: CubeSchema) -> Result<Cube, CubrickError> {
        let cube = Cube::new(schema);
        for engine in &self.engines {
            engine.register_cube(cube.clone())?;
        }
        Ok(cube)
    }

    /// Loads `rows` through coordinator `origin` in one implicit
    /// distributed transaction, fanning each brick's records to every
    /// live replica. Replicas known to be down are skipped (degraded
    /// write): they are demoted from the affected bricks' readable
    /// sets and their missed epoch recorded, holding the cluster
    /// purge floor down until they heal. A brick with **no** live
    /// replica aborts the load.
    pub fn load(
        &self,
        origin: NodeId,
        cube_name: &str,
        rows: &[Row],
        max_rejected: usize,
    ) -> Result<DistributedLoadOutcome, CubrickError> {
        let started = Instant::now();
        let cube = self.engine(origin).cube(cube_name)?;

        // 1. Parse at the receiving node.
        let parse_started = Instant::now();
        let batch = parse_rows(cube.schema(), cube.layout(), cube.dictionaries(), rows);
        let parse = parse_started.elapsed();
        if batch.rejected > max_rejected {
            return Err(CubrickError::TooManyRejected {
                rejected: batch.rejected,
                max_rejected,
            });
        }
        let (accepted, rejected) = (batch.accepted, batch.rejected);

        // Route + flush under the write gate so a handoff capture is
        // atomic with respect to this load: either our runs are in
        // the captured brick state, or we saw the subscribed pending
        // host and fanned out to it.
        let _wg = self.write_gate.read();
        let active = self.protocol.active_nodes();
        let down: BTreeSet<NodeId> = active
            .iter()
            .copied()
            .filter(|&n| self.is_node_down(n))
            .collect();

        // 2. Validate & forward: transaction + routing.
        let mut txn = self.protocol.begin_rw(origin);
        let forward_started = Instant::now();
        // The begin broadcast rides on the data fan-out, skipping
        // known-dark nodes entirely (they missed the epoch; the
        // tracker records it below). A *surprise* unreachable remote
        // still aborts: the load cannot take an SI-consistent
        // snapshot of nodes it cannot reach but believed alive.
        if let Err(e) = self.protocol.broadcast_begin_excluding(&mut txn, 0, &down) {
            let _ = self.protocol.rollback(&txn);
            return Err(e.into());
        }

        // Route every brick to all its live replicas; demote dark
        // readable hosts.
        let mut per_node: HashMap<NodeId, ParsedBatch> = HashMap::new();
        let mut demoted: Vec<(String, u64, NodeId)> = Vec::new();
        {
            let mut dir = self.directory.write();
            for (bid, records) in batch.by_bid {
                let key = (cube_name.to_owned(), bid);
                let entry = dir.entry(key.clone()).or_insert_with(|| BrickHosts {
                    readable: self
                        .topology
                        .replicas(bid)
                        .into_iter()
                        .filter(|n| !down.contains(n))
                        .collect(),
                    pending: Vec::new(),
                });
                let dark: Vec<NodeId> = entry
                    .readable
                    .iter()
                    .copied()
                    .filter(|n| down.contains(n))
                    .collect();
                for node in dark {
                    entry.readable.retain(|&n| n != node);
                    demoted.push((key.0.clone(), bid, node));
                }
                let targets: Vec<NodeId> = entry
                    .readable
                    .iter()
                    .chain(entry.pending.iter())
                    .copied()
                    .filter(|n| !down.contains(n))
                    .collect();
                if targets.is_empty() {
                    // Revert nothing: the rollback below unwinds the
                    // txn, and demotions are conservative (re-adding
                    // a host requires a re-stream anyway).
                    drop(dir);
                    let _ = self.protocol.rollback(&txn);
                    return Err(CubrickError::NoReplicaAvailable {
                        cube: cube_name.to_owned(),
                        bid,
                    });
                }
                for &node in &targets {
                    let target = per_node.entry(node).or_default();
                    target.accepted += records.len();
                    target.by_bid.insert(bid, records.clone());
                }
            }
        }
        let nodes_touched = per_node.len();
        // Forward the record groups (records that stay on the origin
        // do not cross the wire). An undeliverable forward aborts the
        // load before anything flushes.
        for (&node, node_batch) in &per_node {
            if node != origin {
                let bytes: usize = node_batch
                    .by_bid
                    .values()
                    .map(|recs| recs.len() * approx_record_bytes(&cube))
                    .sum();
                if let Err(e) = self.protocol.forward_op(&txn, &[node], bytes) {
                    let _ = self.protocol.rollback(&txn);
                    return Err(e.into());
                }
            }
        }
        let forward = forward_started.elapsed();

        // 3. Flush on every live replica.
        let flush_started = Instant::now();
        std::thread::scope(|scope| {
            for (node, node_batch) in per_node {
                let engine = self.engine(node);
                let cube = cube.clone();
                let epoch = txn.epoch;
                scope.spawn(move || {
                    // Only a failed tier fault-in can error, and the
                    // distributed nodes do not run tiered storage; if
                    // that ever changes, crashing beats losing rows.
                    engine
                        .flush_batch(&cube, epoch, node_batch)
                        .expect("distributed flush failed");
                });
            }
        });
        let flush = flush_started.elapsed();

        self.protocol.commit(&txn)?;
        // Durability acks: every reachable member acked the epoch;
        // the dark ones missed it, capping the purge floor (§III-D).
        for &node in &active {
            if down.contains(&node) {
                self.tracker.mark_missed(node, txn.epoch);
            } else {
                self.tracker.mark_flushed(node, txn.epoch);
            }
        }
        if !down.is_empty() || !demoted.is_empty() {
            self.rebal.degraded_writes.inc();
        }
        Ok(DistributedLoadOutcome {
            epoch: txn.epoch,
            accepted,
            rejected,
            nodes_touched,
            timings: LoadStageTimings {
                parse,
                forward,
                flush,
                total: started.elapsed(),
            },
        })
    }

    /// Runs a query from coordinator `origin` under `mode`, routing
    /// every brick to one live replica and merging partial
    /// aggregates.
    pub fn query(
        &self,
        origin: NodeId,
        cube_name: &str,
        query: &Query,
        mode: IsolationMode,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.engine(origin).cube(cube_name)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        let (snapshot, _guards): (Option<Snapshot>, Vec<ReadGuard>) = match mode {
            IsolationMode::Snapshot => {
                let snapshot = self.protocol.begin_ro(origin);
                // Pin the snapshot on every node for the scan's
                // lifetime: no purge anywhere may pass it.
                let guards = self
                    .engines
                    .iter()
                    .map(|e| e.manager().guard_snapshot(snapshot.clone()))
                    .collect();
                (Some(snapshot), guards)
            }
            IsolationMode::ReadUncommitted => (None, Vec::new()),
        };
        self.fan_out_query(origin, &cube, &resolved, snapshot)
    }

    /// Runs a query from coordinator `origin` at an **explicit**
    /// snapshot instead of the node's current LCE. This is how a
    /// reader replays a historical view — and how the chaos suite
    /// probes that committed reads stay stable while faults are
    /// being injected: the same `(query, snapshot)` pair must return
    /// the same result no matter what the network does in between.
    pub fn query_at(
        &self,
        origin: NodeId,
        cube_name: &str,
        query: &Query,
        snapshot: Snapshot,
    ) -> Result<QueryResult, CubrickError> {
        let cube = self.engine(origin).cube(cube_name)?;
        let resolved = ResolvedQuery::resolve(&cube, query)?;
        // Pin the snapshot cluster-wide, exactly like a live query.
        let _guards: Vec<ReadGuard> = self
            .engines
            .iter()
            .map(|e| e.manager().guard_snapshot(snapshot.clone()))
            .collect();
        self.fan_out_query(origin, &cube, &resolved, Some(snapshot))
    }

    /// Assigns every directory brick of `cube` to the first live host
    /// in its replica preference order. Returns the per-node brick
    /// assignment plus the set of directory-known bids (bricks *not*
    /// in the directory — state planted directly on an engine — fall
    /// back to scanning on whichever node stores them).
    fn route_reads(&self, cube: &str) -> Result<ReadRouting, CubrickError> {
        let mut assigned: HashMap<NodeId, HashSet<u64>> = HashMap::new();
        let mut known: HashSet<u64> = HashSet::new();
        let dir = self.directory.read();
        for ((cube_name, bid), hosts) in dir.iter() {
            if cube_name != cube {
                continue;
            }
            known.insert(*bid);
            let pref = self.prefer(*bid, &hosts.readable);
            match pref.iter().copied().find(|&n| !self.is_node_down(n)) {
                Some(node) => {
                    if Some(&node) == pref.first() && Some(&node) == hosts.readable.first() {
                        self.rebal.replica_reads.inc();
                    } else {
                        self.rebal.fallback_reads.inc();
                    }
                    assigned.entry(node).or_default().insert(*bid);
                }
                None => {
                    self.rebal.unanswered_reads.inc();
                    return Err(CubrickError::NoReplicaAvailable {
                        cube: cube.to_owned(),
                        bid: *bid,
                    });
                }
            }
        }
        Ok((assigned, known))
    }

    fn fan_out_query(
        &self,
        origin: NodeId,
        cube: &Cube,
        resolved: &ResolvedQuery,
        snapshot: Option<Snapshot>,
    ) -> Result<QueryResult, CubrickError> {
        // Shared scan gate: no brick retire may run mid-fan-out.
        let _sg = self.scan_gate.read();
        let (mut assigned, known) = self.route_reads(cube.name())?;
        let known = Arc::new(known);
        // Every live member participates: it scans its assigned
        // bricks plus anything it stores that the directory has never
        // heard of (legacy direct flushes).
        let participants: Vec<NodeId> = self
            .protocol
            .active_nodes()
            .into_iter()
            .filter(|&n| !self.is_node_down(n))
            .collect();
        let mut merged = PartialResult::default();
        // Partials are joined in node order so the merge is
        // deterministic; a scan failure on any node fails the whole
        // distributed query.
        let partials: Vec<Result<PartialResult, CubrickError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = participants
                .iter()
                .map(|&node| {
                    if node != origin {
                        // Query shipping + result return.
                        self.network().transmit_typed(MsgKind::Forward, 128, 0, 0);
                    }
                    let engine = self.engine(node);
                    let cube = cube.clone();
                    let resolved = resolved.clone();
                    let snapshot = snapshot.clone();
                    let mine: HashSet<u64> = assigned.remove(&node).unwrap_or_default();
                    let known = Arc::clone(&known);
                    scope.spawn(move || {
                        let allow = |bid: u64| mine.contains(&bid) || !known.contains(&bid);
                        engine.execute_partial_filtered(&cube, &resolved, snapshot, &allow)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for partial in partials {
            merged.merge(partial?);
        }
        Ok(QueryResult::finalize(cube, resolved, merged))
    }

    /// Distributed partition delete from coordinator `origin`
    /// (Section IV: "delete operations must test the user's
    /// predicates against each partition on every node"). Dark
    /// members are skipped like a degraded load: they miss the delete
    /// epoch and the tracker caps their watermark below it.
    pub fn delete_where(
        &self,
        origin: NodeId,
        cube_name: &str,
        filters: &[crate::query::DimFilter],
    ) -> Result<(aosi::Epoch, u64), CubrickError> {
        // The engine-level delete runs its own local implicit
        // transaction; the distributed version needs one shared
        // epoch, so it drives the brick marking directly.
        let cube = self.engine(origin).cube(cube_name)?;
        let _wg = self.write_gate.read();
        let active = self.protocol.active_nodes();
        let down: BTreeSet<NodeId> = active
            .iter()
            .copied()
            .filter(|&n| self.is_node_down(n))
            .collect();
        let mut txn = self.protocol.begin_rw(origin);
        if let Err(e) = self.protocol.broadcast_begin_excluding(&mut txn, 64, &down) {
            let _ = self.protocol.rollback(&txn);
            return Err(e.into());
        }
        // Ship the predicate everywhere before marking anything, so
        // an unreachable node aborts the delete while it is still
        // side-effect free.
        for &node in &active {
            if node != origin && !down.contains(&node) {
                if let Err(e) = self.protocol.forward_op(&txn, &[node], 64) {
                    let _ = self.protocol.rollback(&txn);
                    return Err(e.into());
                }
            }
        }
        let mut marked_total = 0u64;
        for &node in &active {
            if !down.contains(&node) {
                marked_total += self
                    .engine(node)
                    .mark_delete_where(&cube, filters, txn.epoch)?;
            }
        }
        self.protocol.commit(&txn)?;
        for &node in &active {
            if down.contains(&node) {
                self.tracker.mark_missed(node, txn.epoch);
            } else {
                self.tracker.mark_flushed(node, txn.epoch);
            }
        }
        if !down.is_empty() {
            self.rebal.degraded_writes.inc();
        }
        Ok((txn.epoch, marked_total))
    }

    /// Advances LSE and purges on every member, **gated cluster-wide**
    /// by the replica durability floor: no node's LSE may pass the
    /// minimum acked watermark over all replicas, and nothing purges
    /// at all while any replica is offline (§III-D). Returns the
    /// aggregate stats.
    pub fn purge_all(&self) -> PurgeStats {
        let Some(floor) = self.tracker.safe_epoch() else {
            // A replica is offline: the paper says LSE must not
            // advance at all.
            return PurgeStats::default();
        };
        let mut total = PurgeStats::default();
        for node in self.protocol.active_nodes() {
            let engine = self.engine(node);
            let manager = engine.manager();
            let target = floor.min(manager.lce()).max(manager.lse());
            if manager.advance_lse(target).is_ok() {
                let s = engine.purge();
                total.rows_purged += s.rows_purged;
                total.entries_reclaimed += s.entries_reclaimed;
                total.bricks_changed += s.bricks_changed;
            }
        }
        total
    }

    /// Renders the cluster-wide metrics report: the `[cluster]`
    /// network section, the protocol fault counters, the
    /// `[cluster.replication]` durability watermarks, the
    /// `[cluster.rebalance]` routing/handoff counters, then every
    /// node's `[aosi]`, `[engine]`, and `[shards]` sections prefixed
    /// `node{n}.`.
    pub fn metrics_report(&self) -> String {
        let mut report = ReportBuilder::new();
        self.network().report(&mut report);
        self.protocol.report(&mut report);
        {
            let section = report.section("cluster.replication");
            match self.tracker.safe_epoch() {
                Some(e) => section.metric("safe_epoch", e),
                None => section.metric("safe_epoch_withheld", 1u64),
            };
            for (node, watermark) in self.tracker.watermarks() {
                section.metric(&format!("watermark.node{node}"), watermark);
            }
        }
        report
            .section("cluster.rebalance")
            .counter("replica_reads", &self.rebal.replica_reads)
            .counter("fallback_reads", &self.rebal.fallback_reads)
            .counter("unanswered_reads", &self.rebal.unanswered_reads)
            .counter("degraded_writes", &self.rebal.degraded_writes)
            .counter("handoffs_started", &self.rebal.handoffs_started)
            .counter("handoffs_completed", &self.rebal.handoffs_completed)
            .counter("handoffs_failed", &self.rebal.handoffs_failed)
            .counter("handoff_chunks", &self.rebal.handoff_chunks)
            .counter("handoff_chunk_retries", &self.rebal.handoff_chunk_retries)
            .counter("bricks_moved", &self.rebal.bricks_moved);
        for (idx, engine) in self.engines.iter().enumerate() {
            engine.report_into(&mut report, &format!("node{}.", idx + 1));
        }
        report.finish()
    }

    /// Aggregate memory accounting across nodes.
    pub fn memory(&self) -> EngineMemory {
        let mut total = EngineMemory::default();
        for engine in &self.engines {
            let m = engine.memory();
            total.data_bytes += m.data_bytes;
            total.aosi_bytes += m.aosi_bytes;
            total.rows += m.rows;
            total.bricks += m.bricks;
        }
        // Dictionaries are shared cluster-wide: count them once.
        total.dictionary_bytes = self.engines[0].memory().dictionary_bytes;
        total.mvcc_baseline_bytes = total.rows * 16;
        total
    }
}

/// Rough wire size of one parsed record for traffic accounting.
pub(crate) fn approx_record_bytes(cube: &Cube) -> usize {
    cube.schema().dimensions.len() * 4 + cube.schema().metrics.len() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{Dimension, Metric};
    use crate::query::{AggFn, Aggregation, DimFilter};
    use columnar::Value;

    fn cluster(nodes: u64) -> DistributedEngine {
        let d = DistributedEngine::new(nodes, 2, SimulatedNetwork::instant());
        d.create_cube(
            CubeSchema::new(
                "events",
                vec![
                    Dimension::string("region", 8, 1),
                    Dimension::int("day", 32, 4),
                ],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    fn row(region: &str, day: i64, likes: i64) -> Row {
        vec![Value::from(region), Value::from(day), Value::from(likes)]
    }

    fn total_likes(d: &DistributedEngine, origin: NodeId, mode: IsolationMode) -> f64 {
        d.query(
            origin,
            "events",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
            mode,
        )
        .unwrap()
        .scalar()
        .unwrap_or(0.0)
    }

    #[test]
    fn load_spreads_data_across_nodes() {
        let d = cluster(4);
        let rows: Vec<Row> = (0..256)
            .map(|i| row(["us", "br", "mx", "ca"][i % 4], (i % 32) as i64, 1))
            .collect();
        let outcome = d.load(1, "events", &rows, 0).unwrap();
        assert_eq!(outcome.accepted, 256);
        assert!(outcome.nodes_touched >= 2, "data should spread");
        // Every node's engine holds some subset; the union is all.
        let stored: u64 = (1..=4).map(|n| d.engine(n).memory().rows).sum();
        assert_eq!(stored, 256);
        assert_eq!(total_likes(&d, 2, IsolationMode::Snapshot), 256.0);
    }

    #[test]
    fn query_from_any_coordinator_sees_committed_data() {
        let d = cluster(3);
        d.load(1, "events", &[row("us", 0, 10)], 0).unwrap();
        d.load(2, "events", &[row("br", 1, 20)], 0).unwrap();
        for origin in 1..=3 {
            assert_eq!(
                total_likes(&d, origin, IsolationMode::Snapshot),
                30.0,
                "coordinator {origin}"
            );
        }
    }

    #[test]
    fn grouped_query_merges_across_nodes() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..60)
            .map(|i| row(["us", "br"][i % 2], (i % 32) as i64, (i % 2) as i64 + 1))
            .collect();
        d.load(1, "events", &rows, 0).unwrap();
        let result = d
            .query(
                2,
                "events",
                &Query::aggregate(vec![
                    Aggregation::new(AggFn::Sum, "likes"),
                    Aggregation::new(AggFn::Avg, "likes"),
                ])
                .grouped_by("region"),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.rows.len(), 2);
        let by_key: std::collections::HashMap<String, Vec<f64>> = result
            .rows
            .iter()
            .map(|(k, v)| (k[0].to_string(), v.clone()))
            .collect();
        assert_eq!(by_key["us"], vec![30.0, 1.0], "30 rows of 1");
        assert_eq!(by_key["br"], vec![60.0, 2.0], "30 rows of 2");
    }

    #[test]
    fn distributed_delete_marks_everywhere() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..64).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let (_, marked) = d.delete_where(2, "events", &[]).unwrap();
        assert!(marked >= 1);
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 0.0);
        let stats = d.purge_all();
        assert_eq!(stats.rows_purged, 64);
        assert_eq!(d.memory().rows, 0);
    }

    #[test]
    fn ru_sees_uncommitted_distributed_load() {
        let d = cluster(2);
        // Build a distributed txn manually: begin, flush, don't commit.
        let cube = d.engine(1).cube("events").unwrap();
        let mut txn = d.protocol().begin_rw(1);
        d.protocol().broadcast_begin(&mut txn, 0).unwrap();
        let batch = parse_rows(
            cube.schema(),
            cube.layout(),
            cube.dictionaries(),
            &[row("us", 0, 7)],
        );
        let node = d.primary(*batch.by_bid.keys().next().unwrap());
        d.engine(node)
            .flush_batch(&cube, txn.epoch, batch)
            .unwrap();
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 0.0);
        assert_eq!(total_likes(&d, 1, IsolationMode::ReadUncommitted), 7.0);
        d.protocol().commit(&txn).unwrap();
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 7.0);
    }

    #[test]
    fn filtered_delete_respects_containment() {
        let d = cluster(2);
        let rows: Vec<Row> = (0..32).map(|i| row("us", i as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let (_, marked) = d
            .delete_where(
                1,
                "events",
                &[DimFilter::new(
                    "day",
                    (0..4).map(|v| Value::from(v as i64)).collect(),
                )],
            )
            .unwrap();
        assert!(marked >= 1);
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 28.0);
    }

    #[test]
    fn network_traffic_is_accounted() {
        let d = cluster(4);
        let before = d.network().stats();
        let rows: Vec<Row> = (0..100).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let after_load = d.network().stats();
        assert!(after_load.messages > before.messages);
        assert!(after_load.bytes > before.bytes);
        let _ = total_likes(&d, 1, IsolationMode::Snapshot);
        assert!(d.network().stats().messages > after_load.messages);
    }

    #[test]
    fn metrics_report_covers_every_node() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..64).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let _ = total_likes(&d, 2, IsolationMode::Snapshot);
        let report = d.metrics_report();
        assert!(report.contains("[cluster]"), "report:\n{report}");
        assert!(
            report.contains("messages.begin_request"),
            "report:\n{report}"
        );
        assert!(
            report.contains("[cluster.replication]"),
            "report:\n{report}"
        );
        assert!(report.contains("[cluster.rebalance]"), "report:\n{report}");
        assert!(report.contains("replica_reads"), "report:\n{report}");
        for node in 1..=3 {
            for section in ["aosi", "engine", "shards"] {
                let needle = format!("[node{node}.{section}]");
                assert!(report.contains(&needle), "missing {needle}:\n{report}");
            }
        }
        // The coordinator's load and everyone's scans show up.
        assert!(report.contains("node1.engine]"), "report:\n{report}");
        assert!(report.contains("flushes = 1"), "report:\n{report}");
        assert!(report.contains("queries = 0"), "report:\n{report}");
    }

    #[test]
    fn memory_aggregates_cluster_wide() {
        let d = cluster(3);
        let rows: Vec<Row> = (0..300).map(|i| row("us", (i % 32) as i64, 1)).collect();
        d.load(1, "events", &rows, 0).unwrap();
        let m = d.memory();
        assert_eq!(m.rows, 300);
        assert_eq!(m.mvcc_baseline_bytes, 4800);
        assert!(m.aosi_bytes > 0);
    }

    #[test]
    fn replicated_load_stores_every_brick_twice() {
        let d = DistributedEngine::elastic(
            ElasticConfig {
                capacity: 3,
                active: vec![1, 2, 3],
                shards_per_node: 2,
                replication: 2,
                retry: RetryPolicy::default(),
            },
            SimulatedNetwork::instant(),
        );
        d.create_cube(
            CubeSchema::new(
                "events",
                vec![Dimension::int("day", 32, 4)],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
        .unwrap();
        let rows: Vec<Row> = (0..128)
            .map(|i| vec![Value::from((i % 32) as i64), Value::from(1i64)])
            .collect();
        d.load(1, "events", &rows, 0).unwrap();
        // Two copies of every row...
        let stored: u64 = (1..=3).map(|n| d.engine(n).memory().rows).sum();
        assert_eq!(stored, 256, "rf=2 stores each row twice");
        for bid in d.known_bricks("events") {
            assert_eq!(d.brick_hosts("events", bid).len(), 2, "bid {bid}");
        }
        // ...but every read counts each brick exactly once.
        assert_eq!(total_likes(&d, 2, IsolationMode::Snapshot), 128.0);
        assert!(d.rebal.replica_reads.get() > 0);
    }

    #[test]
    fn reads_fall_back_to_surviving_replica_and_purge_freezes() {
        let d = DistributedEngine::elastic(
            ElasticConfig {
                capacity: 3,
                active: vec![1, 2, 3],
                shards_per_node: 2,
                replication: 2,
                retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                },
            },
            SimulatedNetwork::with_faults(
                cluster::LatencyModel::instant(),
                cluster::FaultPlan::seeded(7),
            ),
        );
        d.create_cube(
            CubeSchema::new(
                "events",
                vec![Dimension::int("day", 32, 4)],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
        .unwrap();
        let rows: Vec<Row> = (0..64)
            .map(|i| vec![Value::from((i % 32) as i64), Value::from(1i64)])
            .collect();
        d.load(1, "events", &rows, 0).unwrap();
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 64.0);

        d.crash_node(3);
        // Every brick still answers from a surviving replica.
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 64.0);
        assert!(
            d.tracker().safe_epoch().is_none(),
            "offline replica must freeze the purge floor"
        );
        // A delete while node 3 is dark commits degraded...
        let (epoch, _) = d.delete_where(1, "events", &[]).unwrap();
        assert_eq!(total_likes(&d, 1, IsolationMode::Snapshot), 0.0);
        // ...and purging reclaims nothing: the floor is withheld.
        let stats = d.purge_all();
        assert_eq!(stats.rows_purged, 0, "LSE must not advance");

        // Back online: still capped below the missed epoch until healed.
        d.restart_node(3);
        assert!(d.tracker().safe_epoch().unwrap() < epoch);
        assert!(!d.tracker().covers(3, epoch));
        assert!(d.rebal.degraded_writes.get() >= 1);
    }
}
