//! Cube DDL: the schema objects behind `CREATE CUBE` (Section V-A).
//!
//! Every dimension declares a **cardinality** (how many distinct
//! coordinate values it can take, `0..cardinality`) and a **range
//! size** (how many consecutive coordinates share one partition
//! range). The number of ranges per dimension, rounded up to a power
//! of two, decides how many bits the dimension contributes to the
//! brick id.

use crate::error::CubrickError;

/// Physical type of a metric column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricType {
    /// 64-bit signed integer metric.
    I64,
    /// 64-bit float metric.
    F64,
}

/// One dimension declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dimension {
    /// Column name.
    pub name: String,
    /// Number of distinct coordinate values (`0..cardinality`).
    pub cardinality: u32,
    /// Coordinates per partition range.
    pub range_size: u32,
    /// `true` if input values are strings to dictionary-encode;
    /// `false` if inputs are already integer coordinates.
    pub is_string: bool,
}

impl Dimension {
    /// A string dimension (values dictionary-encoded on ingest).
    pub fn string(name: impl Into<String>, cardinality: u32, range_size: u32) -> Self {
        Dimension {
            name: name.into(),
            cardinality,
            range_size,
            is_string: true,
        }
    }

    /// An integer dimension (values are coordinates directly).
    pub fn int(name: impl Into<String>, cardinality: u32, range_size: u32) -> Self {
        Dimension {
            name: name.into(),
            cardinality,
            range_size,
            is_string: false,
        }
    }

    /// Number of ranges this dimension is split into.
    pub fn num_ranges(&self) -> u32 {
        self.cardinality.div_ceil(self.range_size)
    }

    /// Bits this dimension contributes to the bid.
    pub fn bid_bits(&self) -> u32 {
        let ranges = self.num_ranges();
        if ranges <= 1 {
            0
        } else {
            32 - (ranges - 1).leading_zeros()
        }
    }
}

/// One metric declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric {
    /// Column name.
    pub name: String,
    /// Physical type.
    pub metric_type: MetricType,
}

impl Metric {
    /// An integer metric.
    pub fn int(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            metric_type: MetricType::I64,
        }
    }

    /// A float metric.
    pub fn float(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            metric_type: MetricType::F64,
        }
    }
}

/// A cube's full schema. Input rows are ordered dimensions first,
/// then metrics, matching the DDL declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CubeSchema {
    /// Cube name.
    pub name: String,
    /// Dimensions, in declaration order.
    pub dimensions: Vec<Dimension>,
    /// Metrics, in declaration order.
    pub metrics: Vec<Metric>,
}

impl CubeSchema {
    /// Validates and builds a schema.
    pub fn new(
        name: impl Into<String>,
        dimensions: Vec<Dimension>,
        metrics: Vec<Metric>,
    ) -> Result<Self, CubrickError> {
        let name = name.into();
        if dimensions.is_empty() {
            return Err(CubrickError::InvalidSchema(
                "a cube needs at least one dimension".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for n in dimensions
            .iter()
            .map(|d| &d.name)
            .chain(metrics.iter().map(|m| &m.name))
        {
            if !seen.insert(n.as_str()) {
                return Err(CubrickError::InvalidSchema(format!(
                    "duplicate column name {n:?}"
                )));
            }
        }
        let mut total_bits = 0u32;
        for d in &dimensions {
            if d.cardinality == 0 {
                return Err(CubrickError::InvalidSchema(format!(
                    "dimension {:?} has zero cardinality",
                    d.name
                )));
            }
            if d.range_size == 0 || d.range_size > d.cardinality {
                return Err(CubrickError::InvalidSchema(format!(
                    "dimension {:?} has invalid range size {} (cardinality {})",
                    d.name, d.range_size, d.cardinality
                )));
            }
            total_bits += d.bid_bits();
        }
        if total_bits > 63 {
            return Err(CubrickError::InvalidSchema(format!(
                "bid would need {total_bits} bits (max 63)"
            )));
        }
        Ok(CubeSchema {
            name,
            dimensions,
            metrics,
        })
    }

    /// Number of columns an input row must have.
    pub fn arity(&self) -> usize {
        self.dimensions.len() + self.metrics.len()
    }

    /// Position of dimension `name`.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.name == name)
    }

    /// Position of metric `name` (within the metrics, not the row).
    pub fn metric_index(&self, name: &str) -> Option<usize> {
        self.metrics.iter().position(|m| m.name == name)
    }

    /// Upper bound on the number of bricks this schema can
    /// materialize.
    pub fn max_bricks(&self) -> u64 {
        self.dimensions
            .iter()
            .map(|d| d.num_ranges() as u64)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DDL example of Section V-A:
    /// `CREATE CUBE(region STRING 4:2, gender STRING 4:1, likes INT,
    /// comments INT)`.
    pub(crate) fn paper_schema() -> CubeSchema {
        CubeSchema::new(
            "test",
            vec![
                Dimension::string("region", 4, 2),
                Dimension::string("gender", 4, 1),
            ],
            vec![Metric::int("likes"), Metric::int("comments")],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_layout() {
        let s = paper_schema();
        // region: 4/2 = 2 ranges -> 1 bit; gender: 4/1 = 4 -> 2 bits.
        assert_eq!(s.dimensions[0].num_ranges(), 2);
        assert_eq!(s.dimensions[0].bid_bits(), 1);
        assert_eq!(s.dimensions[1].num_ranges(), 4);
        assert_eq!(s.dimensions[1].bid_bits(), 2);
        // "3 bits are required to represent bid, resulting in at most
        // 8 bricks."
        assert_eq!(s.max_bricks(), 8);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn non_power_of_two_ranges_round_up() {
        let d = Dimension::int("d", 10, 3); // 4 ranges -> 2 bits
        assert_eq!(d.num_ranges(), 4);
        assert_eq!(d.bid_bits(), 2);
        let d = Dimension::int("d", 10, 2); // 5 ranges -> 3 bits
        assert_eq!(d.num_ranges(), 5);
        assert_eq!(d.bid_bits(), 3);
    }

    #[test]
    fn single_range_dimension_needs_no_bits() {
        let d = Dimension::int("d", 100, 100);
        assert_eq!(d.num_ranges(), 1);
        assert_eq!(d.bid_bits(), 0);
    }

    #[test]
    fn schema_rejects_bad_declarations() {
        assert!(matches!(
            CubeSchema::new("c", vec![], vec![]),
            Err(CubrickError::InvalidSchema(_))
        ));
        assert!(matches!(
            CubeSchema::new("c", vec![Dimension::int("d", 0, 1)], vec![]),
            Err(CubrickError::InvalidSchema(_))
        ));
        assert!(matches!(
            CubeSchema::new("c", vec![Dimension::int("d", 4, 5)], vec![]),
            Err(CubrickError::InvalidSchema(_))
        ));
        assert!(matches!(
            CubeSchema::new("c", vec![Dimension::int("d", 4, 1)], vec![Metric::int("d")]),
            Err(CubrickError::InvalidSchema(_))
        ));
    }

    #[test]
    fn schema_rejects_oversized_bid() {
        // 8 dims x 256 ranges (8 bits) = 64 bits > 63.
        let dims: Vec<Dimension> = (0..8)
            .map(|i| Dimension::int(format!("d{i}"), 256, 1))
            .collect();
        assert!(matches!(
            CubeSchema::new("c", dims, vec![]),
            Err(CubrickError::InvalidSchema(_))
        ));
    }

    #[test]
    fn lookups_by_name() {
        let s = paper_schema();
        assert_eq!(s.dim_index("gender"), Some(1));
        assert_eq!(s.dim_index("likes"), None);
        assert_eq!(s.metric_index("comments"), Some(1));
        assert_eq!(s.metric_index("region"), None);
    }
}
