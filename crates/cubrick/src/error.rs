//! Engine error type.

/// Errors surfaced by the Cubrick engine layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CubrickError {
    /// No cube with that name.
    UnknownCube(String),
    /// A cube with that name already exists.
    CubeExists(String),
    /// Schema construction failed.
    InvalidSchema(String),
    /// The request referenced a column that does not exist or has the
    /// wrong role (dimension vs. metric).
    UnknownColumn(String),
    /// Too many input records were rejected (`max_rejected`
    /// exceeded): the whole batch is discarded (Section V-B).
    TooManyRejected {
        /// Records rejected during parsing.
        rejected: usize,
        /// The request's tolerance.
        max_rejected: usize,
    },
    /// The combined group-by dimensions exceed the 64-bit packed
    /// group key.
    GroupKeyTooWide {
        /// Bits the requested grouping would need.
        bits: u32,
        /// The offending dimension list.
        dims: Vec<String>,
    },
    /// A time-travel query targeted an epoch outside the readable
    /// window `[LSE, LCE]`.
    EpochOutOfRange {
        /// Requested read epoch.
        requested: aosi::Epoch,
        /// Oldest readable epoch (purge floor).
        lse: aosi::Epoch,
        /// Newest consistent epoch.
        lce: aosi::Epoch,
    },
    /// A brick-scan task panicked on its shard thread. The whole
    /// query fails — a partial aggregate missing one brick's rows
    /// would be silently wrong. The shard itself survives.
    ScanTaskPanicked {
        /// Cube the failed scan belonged to.
        cube: String,
        /// The brick whose task panicked, when the parallel per-brick
        /// path can attribute it (`None` for a sequential shard walk).
        bid: Option<u64>,
    },
    /// No live replica could answer a read for this brick at the
    /// requested snapshot: every host was down, still catching up, or
    /// mid-handoff.
    NoReplicaAvailable {
        /// Cube the read targeted.
        cube: String,
        /// The brick no replica could serve.
        bid: u64,
    },
    /// Capturing a brick's runs for a rebalance handoff failed: the
    /// shard-side export task panicked (or a spilled brick could not
    /// be reloaded) before producing a capture. The handoff must be
    /// abandoned — treating this as an empty brick would stream
    /// nothing, mark the copy readable, and retire the source.
    BrickExportFailed {
        /// Cube the brick belongs to.
        cube: String,
        /// The brick whose capture failed.
        bid: u64,
    },
    /// A spilled (cold-tier) brick could not be faulted back in: the
    /// snapshot read or decode failed. The query or mutation that
    /// needed the brick fails — proceeding without its rows would be
    /// silently wrong.
    TierReloadFailed {
        /// Cube the brick belongs to.
        cube: String,
        /// The brick that could not be reloaded.
        bid: u64,
        /// What the tier store reported.
        reason: String,
    },
    /// A brick handoff (rebalance transfer) could not complete: the
    /// stream or its ack exhausted the retry budget. The source
    /// replica keeps the brick.
    HandoffFailed {
        /// Cube the brick belongs to.
        cube: String,
        /// The brick being moved.
        bid: u64,
        /// Source replica.
        from: u64,
        /// Destination replica.
        to: u64,
    },
    /// A protocol-layer error bubbled up.
    Protocol(aosi::AosiError),
}

impl std::fmt::Display for CubrickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubrickError::UnknownCube(name) => write!(f, "unknown cube {name:?}"),
            CubrickError::CubeExists(name) => write!(f, "cube {name:?} already exists"),
            CubrickError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            CubrickError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            CubrickError::TooManyRejected {
                rejected,
                max_rejected,
            } => write!(
                f,
                "batch discarded: {rejected} records rejected (max_rejected = {max_rejected})"
            ),
            CubrickError::GroupKeyTooWide { bits, dims } => {
                write!(f, "GROUP BY {dims:?} needs {bits} key bits (max 64)")
            }
            CubrickError::EpochOutOfRange {
                requested,
                lse,
                lce,
            } => write!(
                f,
                "epoch {requested} outside the readable window [{lse}, {lce}]"
            ),
            CubrickError::ScanTaskPanicked { cube, bid } => match bid {
                Some(bid) => write!(f, "scan task for cube {cube:?} brick {bid} panicked"),
                None => write!(f, "a scan task for cube {cube:?} panicked"),
            },
            CubrickError::NoReplicaAvailable { cube, bid } => write!(
                f,
                "no live replica can answer for cube {cube:?} brick {bid} at this snapshot"
            ),
            CubrickError::BrickExportFailed { cube, bid } => write!(
                f,
                "export of cube {cube:?} brick {bid} failed: no capture was produced"
            ),
            CubrickError::TierReloadFailed { cube, bid, reason } => write!(
                f,
                "reload of spilled cube {cube:?} brick {bid} failed: {reason}"
            ),
            CubrickError::HandoffFailed {
                cube,
                bid,
                from,
                to,
            } => write!(
                f,
                "handoff of cube {cube:?} brick {bid} from node {from} to node {to} failed"
            ),
            CubrickError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for CubrickError {}

impl From<aosi::AosiError> for CubrickError {
    fn from(e: aosi::AosiError) -> Self {
        CubrickError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(CubrickError::UnknownCube("x".into())
            .to_string()
            .contains('x'));
        assert!(CubrickError::TooManyRejected {
            rejected: 5,
            max_rejected: 2
        }
        .to_string()
        .contains("discarded"));
        let e: CubrickError = aosi::AosiError::TxnFinished(1).into();
        assert!(e.to_string().contains("protocol"));
        assert!(CubrickError::BrickExportFailed {
            cube: "c".into(),
            bid: 3
        }
        .to_string()
        .contains("no capture"));
        assert!(CubrickError::TierReloadFailed {
            cube: "c".into(),
            bid: 3,
            reason: "checksum".into()
        }
        .to_string()
        .contains("checksum"));
    }
}
