//! A Cubrick-style in-memory OLAP engine (Section V of the paper),
//! hosting the AOSI protocol.
//!
//! Cubrick organizes data with *Granular Partitioning*: every
//! dimension declares its cardinality and a range size up front; the
//! overlap of one range per dimension is a partition — a **brick** —
//! identified by a *bid* built from the bitwise concatenation of the
//! per-dimension range indexes. Bricks are sparse, materialized on
//! first insert, store data column-wise, unordered and append-only,
//! and carry the AOSI epochs vector as their only concurrency-control
//! metadata.
//!
//! Layers in this crate:
//!
//! * [`CubeSchema`] / DDL — dimensions, metrics, cardinality, range
//!   sizes (Section V-A's `CREATE CUBE` statement).
//! * [`bid`] — bid packing/unpacking and range-index pruning.
//! * [`Brick`] — columnar partition + epochs vector.
//! * [`Cube`] — the brick map plus per-string-dimension dictionaries.
//! * [`ingest`] — the three-step pipeline: parse, validate/forward,
//!   flush (Section V-B), with `max_rejected` semantics.
//! * [`ShardPool`] — bid-sharded single-writer executors: every brick
//!   is owned by exactly one shard thread, so brick operations need
//!   no locks at all (Section V-B's flushing design).
//! * [`Engine`] — a single node: transaction manager + cubes +
//!   shards; loads, queries (snapshot-isolated or read-uncommitted),
//!   partition deletes, purge, rollback.
//! * [`DistributedEngine`] — N engines behind a consistent-hashing
//!   ring and the Section IV distributed transaction flow.
//!
//! # Example
//!
//! ```
//! use cubrick::{AggFn, Aggregation, CubeSchema, Dimension, Engine,
//!               IsolationMode, Metric, Query};
//! use columnar::Value;
//!
//! let engine = Engine::new(2);
//! engine.create_cube(CubeSchema::new(
//!     "events",
//!     vec![Dimension::string("region", 4, 2)],
//!     vec![Metric::int("likes")],
//! )?)?;
//! engine.load("events", &[
//!     vec![Value::from("us"), Value::from(12i64)],
//!     vec![Value::from("br"), Value::from(5i64)],
//! ], 0)?;
//! let total = engine.query(
//!     "events",
//!     &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
//!     IsolationMode::Snapshot,
//! )?;
//! assert_eq!(total.scalar(), Some(17.0));
//! # Ok::<(), cubrick::CubrickError>(())
//! ```

pub mod agg;
pub mod bid;
mod brick;
mod cube;
mod ddl;
mod distributed;
mod elastic;
mod engine;
mod error;
mod ingest;
mod maintenance;
mod persist;
mod query;
mod shard;
pub mod sql;
mod tier;

pub use agg::AggState;
pub use brick::{Brick, BrickMemory, DimStorage};
pub use cube::{Cube, CubeMemory};
pub use ddl::{CubeSchema, Dimension, Metric, MetricType};
pub use distributed::{DistributedEngine, DistributedLoadOutcome, ElasticConfig};
#[doc(hidden)]
pub use elastic::HandoffBreak;
pub use engine::{
    Engine, EngineMemory, EngineOpStats, IsolationMode, LoadOutcome, LoadStageTimings, MergePath,
    PurgeStats, ScanConfig,
};
pub use error::CubrickError;
pub use ingest::{parse_rows, ParsedBatch, ParsedRecord};
pub use maintenance::PurgeDaemon;
pub use persist::{BrickDelta, DeltaRun};
pub use query::{
    AggFn, Aggregation, CmpOp, DimFilter, Having, OrderBy, PartialResult, Query, QueryResult,
    QueryStats, ScanKernel,
};
pub use shard::{ShardPool, TaskHandle};
pub use tier::{BrickStore, TierEnforcement, TierError, TierStats, TieredStore};
