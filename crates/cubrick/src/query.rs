//! The scan/aggregation query engine.
//!
//! OLAP queries here are filtered aggregations with an optional
//! group-by — the workload shape of the paper's Section VI-B
//! experiments. Execution is bitmap-driven: the AOSI visibility
//! bitmap (or an all-ones bitmap in read-uncommitted mode) seeds the
//! scan mask, dimension filters clear further bits, and the
//! aggregation loop walks the surviving rows. "Records skipped due to
//! concurrency control may never be reintroduced" (Section III-C3) —
//! filters only ever clear bits.
//!
//! Partitions are pruned before scanning when a filter excludes the
//! brick's entire coordinate range — the Granular Partitioning
//! benefit of Section V-A.

use std::collections::{BTreeMap, HashMap};

use columnar::{Bitmap, OnesCursor, Value};

use crate::agg::{self, AggState};
use crate::brick::Brick;
use crate::cube::Cube;
use crate::error::CubrickError;

/// Which brick scan/aggregate kernel executes queries (see
/// [`crate::engine::ScanConfig`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScanKernel {
    /// Batch kernels: chunked selection vectors materialized from the
    /// visibility bitmap/ranges, dictionary-id predicate compaction
    /// over column slices, and fused type-specialized aggregation
    /// loops. The production default.
    #[default]
    Vectorized,
    /// Row-at-a-time loops — the differential-testing reference
    /// executor. [`crate::Engine::query_at_reference`] is pinned to
    /// this kernel; `oracle::scan` diffs the two bit-for-bit.
    RowAtATime,
}

/// Aggregation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Sum of a metric.
    Sum,
    /// Count of visible rows.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

/// One aggregation request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aggregation {
    /// Function to apply.
    pub func: AggFn,
    /// Metric column name (ignored for `Count`; use any metric).
    pub metric: String,
}

impl Aggregation {
    /// Shorthand constructor.
    pub fn new(func: AggFn, metric: impl Into<String>) -> Self {
        Aggregation {
            func,
            metric: metric.into(),
        }
    }
}

/// An IN-list filter on one dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct DimFilter {
    /// Dimension column name.
    pub dim: String,
    /// Accepted values (strings for string dimensions, integers for
    /// integer dimensions).
    pub values: Vec<Value>,
}

impl DimFilter {
    /// Shorthand constructor.
    pub fn new(dim: impl Into<String>, values: Vec<Value>) -> Self {
        DimFilter {
            dim: dim.into(),
            values,
        }
    }
}

/// A comparison operator (HAVING predicates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does `lhs op rhs` hold? NaN (a finalized empty-group
    /// `Min`/`Max`/`Avg`, i.e. SQL NULL) fails **every** comparison
    /// including `Ne` — three-valued SQL logic, where `NULL <> x` is
    /// UNKNOWN and HAVING drops UNKNOWN groups.
    pub fn holds(self, lhs: f64, rhs: f64) -> bool {
        if lhs.is_nan() || rhs.is_nan() {
            return false;
        }
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A HAVING predicate: compares the `agg`-th requested aggregation's
/// finalized value against a literal. Applied after finalization and
/// before ORDER BY/LIMIT, per SQL semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Having {
    /// Index into the query's aggregation list.
    pub agg: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: f64,
}

/// What a query's result rows are ordered by.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderBy {
    /// By the `i`-th requested aggregation's value.
    Aggregation(usize),
    /// By the named group-by dimension's decoded value.
    Dimension(String),
}

/// A query: filters, aggregations, group-by dimensions, and optional
/// result shaping (top-k dashboards).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Query {
    /// Conjunctive dimension filters.
    pub filters: Vec<DimFilter>,
    /// Aggregations to compute.
    pub aggregations: Vec<Aggregation>,
    /// Group results by these dimensions (empty = one global group).
    pub group_by: Vec<String>,
    /// Keep only groups whose finalized aggregate satisfies this
    /// predicate (applied before ordering/limit).
    pub having: Option<Having>,
    /// Result ordering; `None` keeps the deterministic group-key
    /// order.
    pub order_by: Option<(OrderBy, bool)>,
    /// Keep only the first `n` result rows after ordering.
    pub limit: Option<usize>,
}

impl Query {
    /// A query computing `aggregations` over the whole cube.
    pub fn aggregate(aggregations: Vec<Aggregation>) -> Self {
        Query {
            filters: Vec::new(),
            aggregations,
            ..Default::default()
        }
    }

    /// Adds a filter.
    pub fn filter(mut self, filter: DimFilter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Adds a group-by dimension (call repeatedly for roll-ups over
    /// several dimensions).
    pub fn grouped_by(mut self, dim: impl Into<String>) -> Self {
        self.group_by.push(dim.into());
        self
    }

    /// Keeps only groups where aggregation `agg` satisfies `op value`.
    pub fn having(mut self, agg: usize, op: CmpOp, value: f64) -> Self {
        self.having = Some(Having { agg, op, value });
        self
    }

    /// Orders the result rows (descending when `desc`).
    pub fn ordered_by(mut self, order: OrderBy, desc: bool) -> Self {
        self.order_by = Some((order, desc));
        self
    }

    /// Keeps only the first `n` result rows (after ordering).
    pub fn limited(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }
}

/// Per-query execution statistics: carried on every [`QueryResult`]
/// and [`PartialResult`], merged across bricks, shards, and nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Bricks whose rows were scanned.
    pub bricks_scanned: u64,
    /// Bricks skipped by range pruning.
    pub bricks_pruned: u64,
    /// Rows stored in scanned bricks.
    pub rows_scanned: u64,
    /// Rows that survived visibility + filters.
    pub rows_visible: u64,
    /// Bricks scanned through the unfiltered visible-ranges fast
    /// path (no bitmap materialized).
    pub range_scans: u64,
    /// Bricks scanned through a materialized visibility bitmap.
    pub bitmap_scans: u64,
    /// Wall nanoseconds spent materializing visibility (bitmaps or
    /// ranges), summed across bricks — parallel shard work can make
    /// this exceed the query's elapsed time.
    pub visibility_build_nanos: u64,
    /// Wall nanoseconds spent scanning and aggregating, summed
    /// across bricks.
    pub scan_nanos: u64,
    /// Visibility artifacts served from the engine's cache.
    pub vis_cache_hits: u64,
    /// Visibility artifacts the cache had to materialize.
    pub vis_cache_misses: u64,
    /// Per-brick scan tasks dispatched through the parallel path
    /// (0 means the query took the sequential per-shard walk). Under
    /// the default shard-merge path this counts shard tasks; under
    /// the funnel path it counts brick tasks.
    pub parallel_tasks: u64,
    /// Brick partials served straight from the aggregate cache (the
    /// scan and its visibility build were both skipped).
    pub agg_cache_hits: u64,
    /// Brick partials the aggregate cache had to scan for.
    pub agg_cache_misses: u64,
    /// Evicted bricks this query faulted back in from the cold tier.
    pub tier_reloads: u64,
    /// Evicted bricks answered straight from a warm aggregate-cache
    /// partial, without reloading them (the brick stayed on disk).
    pub tier_cache_serves: u64,
}

impl QueryStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &QueryStats) {
        self.bricks_scanned += other.bricks_scanned;
        self.bricks_pruned += other.bricks_pruned;
        self.rows_scanned += other.rows_scanned;
        self.rows_visible += other.rows_visible;
        self.range_scans += other.range_scans;
        self.bitmap_scans += other.bitmap_scans;
        self.visibility_build_nanos += other.visibility_build_nanos;
        self.scan_nanos += other.scan_nanos;
        self.vis_cache_hits += other.vis_cache_hits;
        self.vis_cache_misses += other.vis_cache_misses;
        self.parallel_tasks += other.parallel_tasks;
        self.agg_cache_hits += other.agg_cache_hits;
        self.agg_cache_misses += other.agg_cache_misses;
        self.tier_reloads += other.tier_reloads;
        self.tier_cache_serves += other.tier_cache_serves;
    }

    /// Total visibility-materialization time.
    pub fn visibility_build_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.visibility_build_nanos)
    }

    /// Total scan/aggregation time.
    pub fn scan_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.scan_nanos)
    }
}

/// Former name of [`QueryStats`], kept for readability where only the
/// scan-side counters are meant.
pub type ScanStats = QueryStats;

/// The packed group-key layout: every group dimension contributes
/// `ceil(log2(cardinality))` bits of a single `u64` key, exactly like
/// a bid. Grouping by up to ~64 bits of combined cardinality needs no
/// per-row allocation at all.
#[derive(Clone, Debug)]
pub(crate) struct GroupSpec {
    /// `(dimension index, bit shift, bit width)` per group dimension.
    pub(crate) dims: Vec<(usize, u32, u32)>,
}

impl GroupSpec {
    #[inline]
    pub(crate) fn pack(&self, brick: &Brick, row: usize) -> u64 {
        let mut key = 0u64;
        for &(dim, shift, _) in &self.dims {
            key |= (brick.dim_value(dim, row) as u64) << shift;
        }
        key
    }

    pub(crate) fn unpack(&self, key: u64) -> Vec<(usize, u32)> {
        self.dims
            .iter()
            .map(|&(dim, shift, width)| {
                let mask = if width >= 64 {
                    !0u64
                } else {
                    (1u64 << width) - 1
                };
                (dim, ((key >> shift) & mask) as u32)
            })
            .collect()
    }
}

/// Coordinate bound under which a [`FilterSet`] also materializes a
/// dense bitset for O(1) membership probes in the scan kernels (8 KiB
/// worst case — comfortably cache-resident).
const FILTER_BITSET_MAX: u32 = 1 << 16;

/// A resolved IN-list filter over one dimension's encoded
/// coordinates: a sorted, deduplicated id list (for range reasoning
/// during brick pruning and large-id membership via binary search)
/// plus, when every id is small, a dense bitset the kernels probe per
/// row.
#[derive(Clone, Debug)]
pub(crate) struct FilterSet {
    sorted: Vec<u32>,
    bitset: Option<Vec<u64>>,
}

impl FilterSet {
    pub(crate) fn from_coords(coords: impl IntoIterator<Item = u32>) -> Self {
        let mut sorted: Vec<u32> = coords.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        let bitset = match sorted.last() {
            Some(&max) if max < FILTER_BITSET_MAX => {
                let mut words = vec![0u64; max as usize / 64 + 1];
                for &c in &sorted {
                    words[c as usize / 64] |= 1u64 << (c % 64);
                }
                Some(words)
            }
            _ => None,
        };
        FilterSet { sorted, bitset }
    }

    #[inline]
    pub(crate) fn contains(&self, coord: u32) -> bool {
        match &self.bitset {
            Some(words) => words
                .get(coord as usize / 64)
                .is_some_and(|&w| w & (1u64 << (coord % 64)) != 0),
            None => self.sorted.binary_search(&coord).is_ok(),
        }
    }

    /// Does any accepted coordinate fall in `[lo, hi)`? (Brick
    /// pruning against a dimension's range bounds.)
    pub(crate) fn intersects_range(&self, lo: u32, hi: u32) -> bool {
        let start = self.sorted.partition_point(|&c| c < lo);
        self.sorted.get(start).is_some_and(|&c| c < hi)
    }

    /// Does the set accept every storable coordinate `[0,
    /// cardinality)`? Such a filter cannot reject a row, so resolve
    /// drops it and the scan takes the unfiltered ranges path.
    pub(crate) fn covers_all(&self, cardinality: u32) -> bool {
        // Deduplicated ids are distinct; `cardinality` of them with a
        // maximum of `cardinality - 1` is exactly `0..cardinality`.
        self.sorted.len() as u64 == u64::from(cardinality)
            && self
                .sorted
                .last()
                .is_some_and(|&max| u64::from(max) == u64::from(cardinality) - 1)
    }
}

/// A query resolved against a cube's schema: names replaced by column
/// indexes and filter values by coordinate sets. Cheap to clone into
/// shard tasks.
#[derive(Clone, Debug)]
pub struct ResolvedQuery {
    pub(crate) filters: Vec<(usize, FilterSet)>,
    pub(crate) aggs: Vec<(AggFn, usize)>,
    pub(crate) group_by: Option<GroupSpec>,
    pub(crate) having: Option<Having>,
    /// `(key position or agg index, descending)` — key positions are
    /// offsets into the decoded group-key vector.
    pub(crate) order_by: Option<(ResolvedOrder, bool)>,
    pub(crate) limit: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum ResolvedOrder {
    Aggregation(usize),
    GroupKey(usize),
}

impl ResolvedQuery {
    /// Resolves `query` against `cube`. Unknown string filter values
    /// resolve to nothing (they cannot match), unknown column names
    /// are errors.
    pub fn resolve(cube: &Cube, query: &Query) -> Result<Self, CubrickError> {
        let schema = cube.schema();
        let mut filters = Vec::with_capacity(query.filters.len());
        for f in &query.filters {
            let dim = schema
                .dim_index(&f.dim)
                .ok_or_else(|| CubrickError::UnknownColumn(f.dim.clone()))?;
            let coords = FilterSet::from_coords(
                f.values
                    .iter()
                    .filter_map(|v| cube.encode_filter_value(dim, v)),
            );
            if coords.covers_all(schema.dimensions[dim].cardinality) {
                // Accepts every storable coordinate: dropping the
                // filter is semantically identical and keeps the scan
                // on the unfiltered ranges path.
                continue;
            }
            filters.push((dim, coords));
        }
        let mut aggs = Vec::with_capacity(query.aggregations.len());
        for a in &query.aggregations {
            // COUNT needs no metric column: `COUNT(*)` arrives with an
            // empty metric name and never dereferences the index.
            let metric = if a.func == AggFn::Count && a.metric.is_empty() {
                0
            } else {
                schema
                    .metric_index(&a.metric)
                    .ok_or_else(|| CubrickError::UnknownColumn(a.metric.clone()))?
            };
            aggs.push((a.func, metric));
        }
        let group_by = if query.group_by.is_empty() {
            None
        } else {
            let mut dims = Vec::with_capacity(query.group_by.len());
            let mut shift = 0u32;
            for name in &query.group_by {
                let dim = schema
                    .dim_index(name)
                    .ok_or_else(|| CubrickError::UnknownColumn(name.clone()))?;
                let card = schema.dimensions[dim].cardinality;
                let width = if card <= 1 {
                    1
                } else {
                    32 - (card - 1).leading_zeros()
                };
                dims.push((dim, shift, width));
                shift += width;
            }
            if shift > 64 {
                return Err(CubrickError::GroupKeyTooWide {
                    bits: shift,
                    dims: query.group_by.clone(),
                });
            }
            Some(GroupSpec { dims })
        };
        let having = match &query.having {
            None => None,
            Some(h) => {
                if h.agg >= query.aggregations.len() {
                    return Err(CubrickError::UnknownColumn(format!(
                        "HAVING aggregation #{} (only {} requested)",
                        h.agg,
                        query.aggregations.len()
                    )));
                }
                Some(*h)
            }
        };
        let order_by = match &query.order_by {
            None => None,
            Some((OrderBy::Aggregation(idx), desc)) => {
                if *idx >= query.aggregations.len() {
                    return Err(CubrickError::UnknownColumn(format!(
                        "ORDER BY aggregation #{idx} (only {} requested)",
                        query.aggregations.len()
                    )));
                }
                Some((ResolvedOrder::Aggregation(*idx), *desc))
            }
            Some((OrderBy::Dimension(name), desc)) => {
                let position = query
                    .group_by
                    .iter()
                    .position(|g| g == name)
                    .ok_or_else(|| {
                        CubrickError::UnknownColumn(format!("ORDER BY {name} (not in GROUP BY)"))
                    })?;
                Some((ResolvedOrder::GroupKey(position), *desc))
            }
        };
        Ok(ResolvedQuery {
            filters,
            aggs,
            group_by,
            having,
            order_by,
            limit: query.limit,
        })
    }

    /// Can a brick whose dimension `dim` covers range `range_idx`
    /// (coordinates `[lo, hi)`) contain any filter match?
    pub(crate) fn brick_can_match(&self, cube: &Cube, bid: u64) -> bool {
        if self.filters.is_empty() {
            return true;
        }
        let layout = cube.layout();
        let ranges = layout.range_indexes_of_bid(bid);
        for (dim, coords) in &self.filters {
            let (lo, hi) = layout.range_bounds(*dim, ranges[*dim]);
            if !coords.intersects_range(lo, hi) {
                return false;
            }
        }
        true
    }
}

/// The structural identity of a resolved query's *brick-scan shape* —
/// the aggregate cache's tag. Two resolved queries with equal shapes
/// produce bit-identical per-brick partials for the same `(brick
/// generation, snapshot)`, because the shape captures everything the
/// scan consumes: the filter coordinate sets, the aggregation list,
/// the packed group-key layout, and the kernel. HAVING / ORDER BY /
/// LIMIT are deliberately absent — they act on *finalized* results at
/// the coordinator and never change what a brick scan produces.
///
/// Compared structurally (full `Eq` on the coordinate vectors), never
/// by hash fingerprint, per the `aosi::cache` contract: a fingerprint
/// collision would silently serve one query's partial to another.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct AggQueryShape {
    /// `(dimension index, sorted deduplicated coordinate ids)` per
    /// filter — the canonical form of [`FilterSet`].
    filters: Vec<(usize, Vec<u32>)>,
    aggs: Vec<(AggFn, usize)>,
    /// `(dimension index, shift, width)` per group dimension; empty
    /// for ungrouped queries (a zero-dimension GROUP BY does not
    /// exist, so empty is unambiguous).
    group_dims: Vec<(usize, u32, u32)>,
    kernel: ScanKernel,
}

impl AggQueryShape {
    pub(crate) fn of(resolved: &ResolvedQuery, kernel: ScanKernel) -> Self {
        AggQueryShape {
            filters: resolved
                .filters
                .iter()
                .map(|(dim, set)| (*dim, set.sorted.clone()))
                .collect(),
            aggs: resolved.aggs.clone(),
            group_dims: resolved
                .group_by
                .as_ref()
                .map(|spec| spec.dims.clone())
                .unwrap_or_default(),
            kernel,
        }
    }
}

/// One brick's scanned partial, as stored in the aggregate cache.
/// The stats keep what describes the brick's data (rows scanned,
/// visibility path taken) and drop what describes the *work* of the
/// original miss (wall nanoseconds, visibility-cache probes): a hit
/// replays the former and did none of the latter.
#[derive(Clone, Debug)]
pub(crate) struct CachedAgg {
    groups: HashMap<u64, Vec<AggState>>,
    stats: ScanStats,
}

impl CachedAgg {
    /// Captures `partial` for caching, scrubbing the work counters.
    pub(crate) fn capture(partial: &PartialResult) -> Self {
        let mut stats = partial.stats;
        stats.visibility_build_nanos = 0;
        stats.scan_nanos = 0;
        stats.vis_cache_hits = 0;
        stats.vis_cache_misses = 0;
        stats.agg_cache_hits = 0;
        stats.agg_cache_misses = 0;
        CachedAgg {
            groups: partial.groups.clone(),
            stats,
        }
    }

    /// Replays the cached partial as a served result.
    pub(crate) fn replay(&self) -> PartialResult {
        let mut stats = self.stats;
        stats.agg_cache_hits = 1;
        PartialResult {
            groups: self.groups.clone(),
            stats,
        }
    }

    /// Test-only corruption hook: nudges every cached aggregate state
    /// without touching keys, simulating a stale cache serving wrong
    /// bytes (what the generation token exists to prevent).
    #[doc(hidden)]
    pub(crate) fn corrupt_for_test(&mut self) {
        for states in self.groups.values_mut() {
            for state in states {
                *state = match *state {
                    AggState::Count { count } => AggState::Count { count: count + 1 },
                    AggState::Sum { sum } => AggState::Sum { sum: sum + 1.0 },
                    AggState::Min { min, seen } => AggState::Min {
                        min: min - 1.0,
                        seen,
                    },
                    AggState::Max { max, seen } => AggState::Max {
                        max: max + 1.0,
                        seen,
                    },
                    AggState::Avg { sum, count } => AggState::Avg {
                        sum: sum + 1.0,
                        count,
                    },
                };
            }
        }
    }
}

/// Per-group partial aggregates produced by one brick/shard/node and
/// merged upward. `PartialResult::default()` is the merge identity:
/// merging it into anything (or anything into it) is a no-op on the
/// groups and adds zero to every counter.
#[derive(Clone, Debug, Default)]
pub struct PartialResult {
    /// Packed group key -> mergeable aggregation states (key 0 for
    /// ungrouped).
    pub(crate) groups: HashMap<u64, Vec<AggState>>,
    /// Scan counters.
    pub stats: ScanStats,
}

impl PartialResult {
    /// Merges `other` into `self` — the coordinator-side half of the
    /// [`AggState`] merge algebra: group tables union, colliding keys
    /// merge state-by-state.
    pub fn merge(&mut self, other: PartialResult) {
        for (key, states) in other.groups {
            merge_states(&mut self.groups, key, states);
        }
        self.stats.absorb(&other.stats);
    }

    /// Number of groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Scans one brick row-at-a-time (the reference kernel): seeds from
/// the (possibly cached, shared) `visibility` bitmap, applies the
/// resolved filters while iterating — bits are never mutated, so one
/// cached artifact serves many concurrent scans without cloning.
/// Isolation bits are never widened: filters only drop rows.
pub(crate) fn scan_brick_shared(
    brick: &Brick,
    visibility: &Bitmap,
    resolved: &ResolvedQuery,
) -> PartialResult {
    let traversed = visibility.count_ones() as u64;
    let rows = visibility.iter_ones().filter(|&row| {
        resolved
            .filters
            .iter()
            .all(|(dim, coords)| coords.contains(brick.dim_value(*dim, row)))
    });
    let mut result = accumulate(brick, rows, resolved, traversed);
    result.stats.bitmap_scans = 1;
    result
}

/// The unfiltered-scan reference path: iterate the snapshot's visible
/// ranges directly — no bitmap is ever materialized. Equivalent to
/// [`scan_brick_shared`] with an unfiltered visibility bitmap (the
/// ranges are proven bitmap-equivalent by property test in `aosi`).
pub(crate) fn scan_brick_ranges(
    brick: &Brick,
    ranges: &[std::ops::Range<u64>],
    resolved: &ResolvedQuery,
) -> PartialResult {
    debug_assert!(resolved.filters.is_empty(), "ranges path is unfiltered");
    let traversed: u64 = ranges.iter().map(|r| r.end - r.start).sum();
    let rows = ranges
        .iter()
        .flat_map(|r| (r.start as usize)..(r.end as usize));
    let mut result = accumulate(brick, rows, resolved, traversed);
    result.stats.range_scans = 1;
    result
}

/// Row-at-a-time observation of one row into one aggregation's
/// state. `Count` counts the row regardless of metric payload; every
/// other function skips non-numeric cells — a missing metric is
/// absent from the aggregate, never folded in as `0.0`.
#[inline]
fn observe_row(brick: &Brick, func: AggFn, metric: usize, row: usize, state: &mut AggState) {
    match func {
        AggFn::Count => state.observe(0.0),
        _ => {
            if let Some(v) = brick.metric_column(metric).get_numeric(row) {
                state.observe(v);
            }
        }
    }
}

/// The row-at-a-time reference accumulator. `traversed` is the number
/// of rows the caller's iterator walks before dimension filtering
/// (visible rows), reported as `rows_scanned`.
fn accumulate(
    brick: &Brick,
    rows: impl Iterator<Item = usize>,
    resolved: &ResolvedQuery,
    traversed: u64,
) -> PartialResult {
    let mut result = PartialResult {
        stats: QueryStats {
            bricks_scanned: 1,
            rows_scanned: traversed,
            ..Default::default()
        },
        ..Default::default()
    };
    match &resolved.group_by {
        // Ungrouped: accumulate into a flat local vector — no hash
        // lookup per row.
        None => {
            let mut states = agg::init_states(&resolved.aggs);
            for row in rows {
                result.stats.rows_visible += 1;
                for (state, &(func, metric)) in states.iter_mut().zip(&resolved.aggs) {
                    observe_row(brick, func, metric, row, state);
                }
            }
            if result.stats.rows_visible > 0 {
                result.groups.insert(0, states);
            }
        }
        Some(spec) => {
            // Grouped: one packed-key hash lookup per row, with a
            // one-entry cache for runs of identical keys (sorted or
            // clustered data hits it constantly).
            let mut cached: Option<(u64, Vec<AggState>)> = None;
            for row in rows {
                result.stats.rows_visible += 1;
                let key = spec.pack(brick, row);
                let states = match &mut cached {
                    Some((cached_key, states)) if *cached_key == key => states,
                    _ => {
                        if let Some((old_key, old_states)) = cached.take() {
                            merge_states(&mut result.groups, old_key, old_states);
                        }
                        cached = Some((
                            key,
                            result
                                .groups
                                .remove(&key)
                                .unwrap_or_else(|| agg::init_states(&resolved.aggs)),
                        ));
                        &mut cached.as_mut().expect("just set").1
                    }
                };
                for (state, &(func, metric)) in states.iter_mut().zip(&resolved.aggs) {
                    observe_row(brick, func, metric, row, state);
                }
            }
            if let Some((key, states)) = cached.take() {
                merge_states(&mut result.groups, key, states);
            }
        }
    }
    result
}

/// Rows per selection-vector chunk. Small enough that the selection,
/// gathered coordinates, and packed keys all stay cache-resident
/// while a brick is scanned; large enough to amortize per-chunk
/// overhead.
const SCAN_CHUNK: usize = 2048;

/// Where a vectorized scan draws its selection vectors from: a
/// visibility bitmap (filtered scans) or the snapshot's visible
/// ranges (unfiltered scans).
enum Selection<'a> {
    Bitmap(OnesCursor<'a>),
    Ranges {
        ranges: &'a [std::ops::Range<u64>],
        idx: usize,
        next: u64,
    },
}

impl Selection<'_> {
    /// Fills `sel` (cleared first) with the next up-to-[`SCAN_CHUNK`]
    /// visible row ids, ascending; `false` once exhausted.
    fn next_chunk(&mut self, sel: &mut Vec<u32>) -> bool {
        match self {
            Selection::Bitmap(cursor) => cursor.next_chunk(sel, SCAN_CHUNK) > 0,
            Selection::Ranges { ranges, idx, next } => {
                sel.clear();
                while sel.len() < SCAN_CHUNK {
                    let Some(r) = ranges.get(*idx) else { break };
                    let start = (*next).max(r.start);
                    let take = (r.end - start).min((SCAN_CHUNK - sel.len()) as u64);
                    sel.extend((start..start + take).map(|row| row as u32));
                    if start + take == r.end {
                        *idx += 1;
                        *next = 0;
                    } else {
                        *next = start + take;
                    }
                }
                !sel.is_empty()
            }
        }
    }
}

/// Scratch buffers one vectorized brick scan reuses across chunks.
#[derive(Default)]
struct ScanScratch {
    /// Selection vector: row ids surviving visibility (then filters).
    sel: Vec<u32>,
    /// Gathered dimension coordinates (bess bricks, and plain key
    /// packing).
    gathered: Vec<u32>,
    /// Packed group keys, parallel to `sel`.
    keys: Vec<u64>,
}

/// Compacts `sel` in place to the rows every filter accepts.
/// Plain-layout dimensions are probed directly through their `u32`
/// column slice; bess-packed dimensions gather the chunk's
/// coordinates into scratch first.
fn apply_filters(
    brick: &Brick,
    filters: &[(usize, FilterSet)],
    sel: &mut Vec<u32>,
    gathered: &mut Vec<u32>,
) {
    for (dim, coords) in filters {
        if sel.is_empty() {
            return;
        }
        match brick.dim_slice(*dim) {
            Some(col) => sel.retain(|&row| coords.contains(col[row as usize])),
            None => {
                brick.gather_dim(*dim, sel, gathered);
                let mut keep = gathered.iter().map(|&c| coords.contains(c));
                sel.retain(|_| keep.next().expect("gathered is parallel to sel"));
            }
        }
    }
}

/// Packs the group key of every selected row into `keys`, one
/// dimension column at a time (column-major, so each dimension's data
/// streams through cache once per chunk).
fn pack_keys(
    brick: &Brick,
    spec: &GroupSpec,
    sel: &[u32],
    gathered: &mut Vec<u32>,
    keys: &mut Vec<u64>,
) {
    keys.clear();
    keys.resize(sel.len(), 0);
    for &(dim, shift, _) in &spec.dims {
        match brick.dim_slice(dim) {
            Some(col) => {
                for (key, &row) in keys.iter_mut().zip(sel) {
                    *key |= u64::from(col[row as usize]) << shift;
                }
            }
            None => {
                brick.gather_dim(dim, sel, gathered);
                for (key, &coord) in keys.iter_mut().zip(gathered.iter()) {
                    *key |= u64::from(coord) << shift;
                }
            }
        }
    }
}

/// Packed-key width (in bits) up to which grouped vectorized scans
/// accumulate into a dense table indexed by the key itself instead of
/// hashing. 4096 slots × a handful of aggregates stays well inside
/// L2, and the common analytics shapes (one or two low-cardinality
/// group dimensions) all fit; workloads whose adjacent rows alternate
/// groups — where the run cache degenerates to per-row hash traffic —
/// become a bounds-checked array update instead.
const DENSE_GROUP_BITS: u32 = 12;

/// The vectorized brick scan: chunked selection vectors, predicate
/// compaction, fused per-column aggregation, and batch-packed group
/// keys feeding a dense group table (small key spaces) or the
/// run-cached hash probe (wide keys).
fn vectorized_scan(
    brick: &Brick,
    mut selection: Selection<'_>,
    traversed: u64,
    resolved: &ResolvedQuery,
) -> PartialResult {
    let mut result = PartialResult {
        stats: QueryStats {
            bricks_scanned: 1,
            rows_scanned: traversed,
            ..Default::default()
        },
        ..Default::default()
    };
    let num_aggs = resolved.aggs.len();
    let mut scratch = ScanScratch::default();
    match &resolved.group_by {
        None => {
            let mut states = agg::init_states(&resolved.aggs);
            while selection.next_chunk(&mut scratch.sel) {
                apply_filters(
                    brick,
                    &resolved.filters,
                    &mut scratch.sel,
                    &mut scratch.gathered,
                );
                if scratch.sel.is_empty() {
                    continue;
                }
                result.stats.rows_visible += scratch.sel.len() as u64;
                for (state, &(_, metric)) in states.iter_mut().zip(&resolved.aggs) {
                    state.accumulate_batch(brick, metric, &scratch.sel);
                }
            }
            if result.stats.rows_visible > 0 {
                result.groups.insert(0, states);
            }
        }
        Some(spec) => {
            let total_bits = spec
                .dims
                .iter()
                .map(|&(_, shift, width)| shift + width)
                .max()
                .unwrap_or(0);
            if total_bits <= DENSE_GROUP_BITS {
                // Small packed-key space: skip hashing entirely and
                // index a flat per-key accumulator table with the key
                // itself. `touched` remembers first-seen keys so
                // untouched slots never materialize as groups.
                let num_keys = 1usize << total_bits;
                let proto = agg::init_states(&resolved.aggs);
                let mut dense = Vec::with_capacity(num_keys * num_aggs);
                for _ in 0..num_keys {
                    dense.extend_from_slice(&proto);
                }
                let mut seen = vec![false; num_keys];
                let mut touched: Vec<u64> = Vec::new();
                while selection.next_chunk(&mut scratch.sel) {
                    apply_filters(
                        brick,
                        &resolved.filters,
                        &mut scratch.sel,
                        &mut scratch.gathered,
                    );
                    if scratch.sel.is_empty() {
                        continue;
                    }
                    result.stats.rows_visible += scratch.sel.len() as u64;
                    pack_keys(
                        brick,
                        spec,
                        &scratch.sel,
                        &mut scratch.gathered,
                        &mut scratch.keys,
                    );
                    for &key in &scratch.keys {
                        let k = key as usize;
                        if !seen[k] {
                            seen[k] = true;
                            touched.push(key);
                        }
                    }
                    for (agg_idx, &(func, metric)) in resolved.aggs.iter().enumerate() {
                        agg::accumulate_batch_dense(
                            brick,
                            func,
                            metric,
                            agg_idx,
                            num_aggs,
                            &scratch.sel,
                            &scratch.keys,
                            &mut dense,
                        );
                    }
                }
                for key in touched {
                    let base = key as usize * num_aggs;
                    result
                        .groups
                        .insert(key, dense[base..base + num_aggs].to_vec());
                }
                return result;
            }
            // Wide keys: keep the reference kernel's one-entry run
            // cache, but feed it whole runs of identical packed keys:
            // group boundaries are found over the batch-packed key
            // vector, and each run goes through the fused kernels as
            // one slice.
            let mut cached: Option<(u64, Vec<AggState>)> = None;
            while selection.next_chunk(&mut scratch.sel) {
                apply_filters(
                    brick,
                    &resolved.filters,
                    &mut scratch.sel,
                    &mut scratch.gathered,
                );
                if scratch.sel.is_empty() {
                    continue;
                }
                result.stats.rows_visible += scratch.sel.len() as u64;
                pack_keys(
                    brick,
                    spec,
                    &scratch.sel,
                    &mut scratch.gathered,
                    &mut scratch.keys,
                );
                let mut start = 0;
                while start < scratch.sel.len() {
                    let key = scratch.keys[start];
                    let mut end = start + 1;
                    while end < scratch.sel.len() && scratch.keys[end] == key {
                        end += 1;
                    }
                    let states = match &mut cached {
                        Some((cached_key, states)) if *cached_key == key => states,
                        _ => {
                            if let Some((old_key, old_states)) = cached.take() {
                                merge_states(&mut result.groups, old_key, old_states);
                            }
                            cached = Some((
                                key,
                                result
                                    .groups
                                    .remove(&key)
                                    .unwrap_or_else(|| agg::init_states(&resolved.aggs)),
                            ));
                            &mut cached.as_mut().expect("just set").1
                        }
                    };
                    for (state, &(_, metric)) in states.iter_mut().zip(&resolved.aggs) {
                        state.accumulate_batch(brick, metric, &scratch.sel[start..end]);
                    }
                    start = end;
                }
            }
            if let Some((key, states)) = cached.take() {
                merge_states(&mut result.groups, key, states);
            }
        }
    }
    result
}

/// Vectorized twin of [`scan_brick_shared`].
pub(crate) fn scan_brick_shared_vectorized(
    brick: &Brick,
    visibility: &Bitmap,
    resolved: &ResolvedQuery,
) -> PartialResult {
    let traversed = visibility.count_ones() as u64;
    let mut result = vectorized_scan(
        brick,
        Selection::Bitmap(visibility.ones_cursor()),
        traversed,
        resolved,
    );
    result.stats.bitmap_scans = 1;
    result
}

/// Vectorized twin of [`scan_brick_ranges`].
pub(crate) fn scan_brick_ranges_vectorized(
    brick: &Brick,
    ranges: &[std::ops::Range<u64>],
    resolved: &ResolvedQuery,
) -> PartialResult {
    debug_assert!(resolved.filters.is_empty(), "ranges path is unfiltered");
    let traversed: u64 = ranges.iter().map(|r| r.end - r.start).sum();
    let mut result = vectorized_scan(
        brick,
        Selection::Ranges {
            ranges,
            idx: 0,
            next: 0,
        },
        traversed,
        resolved,
    );
    result.stats.range_scans = 1;
    result
}

fn merge_states(groups: &mut HashMap<u64, Vec<AggState>>, key: u64, states: Vec<AggState>) {
    match groups.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            for (mine, theirs) in e.get_mut().iter_mut().zip(&states) {
                mine.merge(theirs);
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(states);
        }
    }
}

/// Total ordering for `ORDER BY <agg>` values: NaN (the finalization
/// of an empty-group `Min`/`Max`/`Avg`, i.e. SQL NULL) sorts last in
/// both directions — `desc` reverses only the comparison between
/// non-NaN values. Built on `f64::total_cmp` so the comparator is
/// total even among NaN payloads; `partial_cmp(..).unwrap_or(Equal)`
/// is NOT total under NaN and lets output order drift across merges.
fn cmp_aggs_nan_last(a: f64, b: f64, desc: bool) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => {
            if desc {
                b.total_cmp(&a)
            } else {
                a.total_cmp(&b)
            }
        }
    }
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => a
            .as_numeric()
            .partial_cmp(&b.as_numeric())
            .unwrap_or(std::cmp::Ordering::Equal),
    }
}

/// A finalized query result.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// One row per group: the decoded group-key values (one per
    /// group-by dimension, empty for global aggregation) and the
    /// aggregation values in request order.
    pub rows: Vec<(Vec<Value>, Vec<f64>)>,
    /// Scan counters.
    pub stats: ScanStats,
}

impl QueryResult {
    /// Finalizes partial aggregates, decoding group coordinates
    /// through `cube`.
    pub(crate) fn finalize(cube: &Cube, resolved: &ResolvedQuery, partial: PartialResult) -> Self {
        // Deterministic output order: by packed group key.
        let ordered: BTreeMap<u64, Vec<AggState>> = partial.groups.into_iter().collect();
        let mut rows: Vec<(u64, Vec<Value>, Vec<f64>)> = ordered
            .into_iter()
            .map(|(key, states)| {
                let decoded = match &resolved.group_by {
                    Some(spec) => spec
                        .unpack(key)
                        .into_iter()
                        .map(|(dim, coord)| cube.decode_coord(dim, coord))
                        .collect(),
                    None => Vec::new(),
                };
                let values = states.iter().map(|state| state.finalize()).collect();
                (key, decoded, values)
            })
            .collect();
        // HAVING filters *finalized* aggregates — after the merge
        // tree collapses (so a group partially visible in several
        // bricks is judged on its total), before ORDER BY/LIMIT.
        // NaN aggregates (SQL NULL) fail every comparison.
        if let Some(having) = &resolved.having {
            rows.retain(|(_, _, values)| having.op.holds(values[having.agg], having.value));
        }
        if let Some((order, desc)) = &resolved.order_by {
            // Ordering conventions: the comparator itself is reversed
            // for DESC (never `rows.reverse()`, which would flip tie
            // order and make `DESC LIMIT n` keep different tied groups
            // than a descending comparator); ties always break by
            // ascending packed group key; NaN aggregates (empty-group
            // Min/Max/Avg) sort last in BOTH directions, via
            // `f64::total_cmp` so the comparator stays total.
            rows.sort_by(|a, b| {
                let primary = match order {
                    ResolvedOrder::Aggregation(idx) => {
                        cmp_aggs_nan_last(a.2[*idx], b.2[*idx], *desc)
                    }
                    ResolvedOrder::GroupKey(pos) => {
                        let ord = compare_values(&a.1[*pos], &b.1[*pos]);
                        if *desc {
                            ord.reverse()
                        } else {
                            ord
                        }
                    }
                };
                primary.then(a.0.cmp(&b.0))
            });
        }
        if let Some(limit) = resolved.limit {
            rows.truncate(limit);
        }
        QueryResult {
            rows: rows.into_iter().map(|(_, k, v)| (k, v)).collect(),
            stats: partial.stats,
        }
    }

    /// The single value of an ungrouped single-aggregation query.
    pub fn scalar(&self) -> Option<f64> {
        match self.rows.as_slice() {
            [(keys, values)] if keys.is_empty() && values.len() == 1 => Some(values[0]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};
    use crate::ingest::ParsedRecord;
    use aosi::Snapshot;
    use columnar::Column;

    fn cube() -> Cube {
        Cube::new(
            CubeSchema::new(
                "t",
                vec![
                    Dimension::string("region", 4, 2),
                    Dimension::int("day", 8, 4),
                ],
                vec![Metric::int("likes"), Metric::float("score")],
            )
            .unwrap(),
        )
    }

    fn brick_with_data(cube: &Cube) -> Brick {
        // Encode us=0, br=1.
        let dict = cube.dictionaries()[0].as_ref().unwrap();
        dict.lock().encode("us");
        dict.lock().encode("br");
        let mut brick = Brick::new(cube.schema());
        let recs = vec![
            ParsedRecord {
                bid: 0,
                coords: vec![0, 0],
                metrics: vec![Value::I64(10), Value::F64(1.0)],
            },
            ParsedRecord {
                bid: 0,
                coords: vec![1, 1],
                metrics: vec![Value::I64(20), Value::F64(2.0)],
            },
            ParsedRecord {
                bid: 0,
                coords: vec![0, 2],
                metrics: vec![Value::I64(30), Value::F64(3.0)],
            },
        ];
        brick.append(1, &recs);
        brick
    }

    fn resolved(cube: &Cube, q: &Query) -> ResolvedQuery {
        ResolvedQuery::resolve(cube, q).unwrap()
    }

    #[test]
    fn global_sum_and_count() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Count, "likes"),
            Aggregation::new(AggFn::Avg, "score"),
        ]);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        assert_eq!(result.rows.len(), 1);
        let (key, values) = &result.rows[0];
        assert!(key.is_empty());
        assert_eq!(values[0], 60.0);
        assert_eq!(values[1], 3.0);
        assert_eq!(values[2], 2.0);
        assert_eq!(result.stats.rows_visible, 3);
    }

    #[test]
    fn filter_restricts_rows() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .filter(DimFilter::new("region", vec![Value::from("us")]));
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        assert_eq!(result.scalar(), Some(40.0));
        assert_eq!(result.stats.rows_visible, 2);
    }

    #[test]
    fn unknown_filter_value_matches_nothing() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
            .filter(DimFilter::new("region", vec![Value::from("atlantis")]));
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        assert_eq!(partial.stats.rows_visible, 0);
    }

    #[test]
    fn group_by_decodes_keys_in_order() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Min, "score"),
            Aggregation::new(AggFn::Max, "score"),
        ])
        .grouped_by("region");
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].0, vec![Value::Str("us".into())]);
        assert_eq!(result.rows[0].1, vec![40.0, 1.0, 3.0]);
        assert_eq!(result.rows[1].0, vec![Value::Str("br".into())]);
        assert_eq!(result.rows[1].1, vec![20.0, 2.0, 2.0]);
    }

    #[test]
    fn multi_dimension_group_by_packs_and_decodes() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("region")
            .grouped_by("day");
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        // Three rows, three distinct (region, day) pairs.
        assert_eq!(result.rows.len(), 3);
        let find = |region: &str, day: i64| {
            result
                .rows
                .iter()
                .find(|(k, _)| k[0] == Value::Str(region.into()) && k[1] == Value::I64(day))
                .map(|(_, v)| v[0])
        };
        assert_eq!(find("us", 0), Some(10.0));
        assert_eq!(find("br", 1), Some(20.0));
        assert_eq!(find("us", 2), Some(30.0));
    }

    #[test]
    fn group_key_too_wide_is_rejected() {
        let cube = Cube::new(
            CubeSchema::new(
                "wide",
                vec![
                    Dimension::int("a", u32::MAX, 1 << 20),
                    Dimension::int("b", u32::MAX, 1 << 20),
                    Dimension::int("c", 4, 1),
                ],
                vec![Metric::int("m")],
            )
            .unwrap(),
        );
        // 32 + 32 + 2 = 66 bits > 64.
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "m")])
            .grouped_by("a")
            .grouped_by("b")
            .grouped_by("c");
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::GroupKeyTooWide { bits: 66, .. })
        ));
        // 64 bits exactly is fine.
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "m")])
            .grouped_by("a")
            .grouped_by("b");
        assert!(ResolvedQuery::resolve(&cube, &q).is_ok());
    }

    #[test]
    fn order_by_and_limit_shape_results() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        // Top groups by sum(likes), descending, limited to 2.
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("day")
            .ordered_by(OrderBy::Aggregation(0), true)
            .limited(2);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].1[0], 30.0, "largest sum first");
        assert_eq!(result.rows[1].1[0], 20.0);

        // Ascending by dimension value.
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("day")
            .ordered_by(OrderBy::Dimension("day".into()), false);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        let days: Vec<String> = result.rows.iter().map(|(k, _)| k[0].to_string()).collect();
        assert_eq!(days, vec!["0", "1", "2"]);
    }

    #[test]
    fn order_by_validation() {
        let cube = cube();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .ordered_by(OrderBy::Aggregation(5), false);
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("region")
            .ordered_by(OrderBy::Dimension("day".into()), false);
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
    }

    #[test]
    fn visibility_bitmap_gates_the_scan() {
        let cube = cube();
        let mut brick = brick_with_data(&cube);
        brick.append(
            3,
            &[ParsedRecord {
                bid: 0,
                coords: vec![0, 0],
                metrics: vec![Value::I64(1000), Value::F64(0.0)],
            }],
        );
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let r = resolved(&cube, &q);
        // Snapshot at epoch 1 must not see T3's row...
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        assert_eq!(
            QueryResult::finalize(&cube, &r, partial).scalar(),
            Some(60.0)
        );
        // ...while read-uncommitted sees it.
        let partial = scan_brick_shared(&brick, &brick.all_rows(), &r);
        assert_eq!(
            QueryResult::finalize(&cube, &r, partial).scalar(),
            Some(1060.0)
        );
    }

    #[test]
    fn merge_combines_partials() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Min, "likes"),
        ])
        .grouped_by("region");
        let r = resolved(&cube, &q);
        let snap = Snapshot::committed(1);
        let mut a = scan_brick_shared(&brick, &brick.visibility(&snap), &r);
        let b = scan_brick_shared(&brick, &brick.visibility(&snap), &r);
        a.merge(b);
        let result = QueryResult::finalize(&cube, &r, a);
        assert_eq!(result.rows[0].1, vec![80.0, 10.0], "sums add, mins hold");
        assert_eq!(result.stats.bricks_scanned, 2);
        assert_eq!(result.stats.rows_visible, 6);
    }

    #[test]
    fn stats_record_which_scan_path_ran() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")]);
        let r = resolved(&cube, &q);
        let snap = Snapshot::committed(1);
        let via_bitmap = scan_brick_shared(&brick, &brick.visibility(&snap), &r);
        assert_eq!(via_bitmap.stats.bitmap_scans, 1);
        assert_eq!(via_bitmap.stats.range_scans, 0);
        let ranges = brick.epochs().visible_ranges(&snap);
        let mut via_ranges = scan_brick_ranges(&brick, &ranges, &r);
        assert_eq!(via_ranges.stats.range_scans, 1);
        assert_eq!(via_ranges.stats.bitmap_scans, 0);
        via_ranges.merge(via_bitmap);
        assert_eq!(via_ranges.stats.range_scans, 1);
        assert_eq!(via_ranges.stats.bitmap_scans, 1);
        assert_eq!(via_ranges.stats.bricks_scanned, 2);
        assert_eq!(via_ranges.stats.rows_visible, 6);
    }

    #[test]
    fn brick_pruning_by_filter_range() {
        let cube = cube();
        // day=5 lives in day-range 1; a filter on day=1 (range 0) can
        // prune any brick in day-range 1.
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
            .filter(DimFilter::new("day", vec![Value::from(1i64)]));
        let r = resolved(&cube, &q);
        let bid_day0 = cube.layout().bid_for_coords(&[0, 1]);
        let bid_day1 = cube.layout().bid_for_coords(&[0, 5]);
        assert!(r.brick_can_match(&cube, bid_day0));
        assert!(!r.brick_can_match(&cube, bid_day1));
    }

    #[test]
    fn unknown_columns_error() {
        let cube = cube();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "nope")]);
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
        let q = Query::default().filter(DimFilter::new("nope", vec![]));
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
        let q = Query::default().grouped_by("nope");
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scalar_on_empty_result_is_none() {
        let cube = cube();
        let brick = Brick::new(cube.schema());
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        assert_eq!(result.scalar(), None);
    }

    /// Bit-for-bit comparison: keys equal, aggregate values equal by
    /// `f64::to_bits` (no epsilon — the kernels must perform the same
    /// float operation sequence).
    fn assert_bits_identical(a: &QueryResult, b: &QueryResult, context: &str) {
        assert_eq!(a.rows.len(), b.rows.len(), "{context}: row count");
        for (i, ((ka, va), (kb, vb))) in a.rows.iter().zip(&b.rows).enumerate() {
            assert_eq!(ka, kb, "{context}: key of row {i}");
            let bits_a: Vec<u64> = va.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = vb.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits_a, bits_b,
                "{context}: values of row {i} ({va:?} vs {vb:?})"
            );
        }
    }

    /// A brick big enough that selection vectors cross the
    /// `SCAN_CHUNK` boundary, with three epochs so a snapshot can
    /// leave a suffix invisible, built on either dimension layout.
    fn big_brick(cube: &Cube, storage: crate::brick::DimStorage) -> Brick {
        let dict = cube.dictionaries()[0].as_ref().unwrap();
        dict.lock().encode("us");
        dict.lock().encode("br");
        dict.lock().encode("mx");
        let mut brick = Brick::with_storage(cube.schema(), storage);
        for epoch in 1..=3u64 {
            let recs: Vec<ParsedRecord> = (0..1500i64)
                .map(|k| {
                    let i = k + epoch as i64 * 17;
                    ParsedRecord {
                        bid: 0,
                        coords: vec![(i % 3) as u32, (i % 8) as u32],
                        metrics: vec![Value::I64(i * 3 - 40), Value::F64(i as f64 * 0.25 - 7.0)],
                    }
                })
                .collect();
            brick.append(epoch, &recs);
        }
        brick
    }

    /// Every query shape the executor supports, including filters
    /// that match nothing and order/limit over multi-dimension
    /// groups.
    fn differential_battery() -> Vec<Query> {
        vec![
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "likes"),
                Aggregation::new(AggFn::Count, "likes"),
                Aggregation::new(AggFn::Avg, "score"),
                Aggregation::new(AggFn::Min, "score"),
                Aggregation::new(AggFn::Max, "likes"),
            ]),
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "likes"),
                Aggregation::new(AggFn::Avg, "score"),
            ])
            .filter(DimFilter::new(
                "region",
                vec![Value::from("us"), Value::from("mx")],
            ))
            .grouped_by("day"),
            Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "score"),
                Aggregation::new(AggFn::Min, "likes"),
            ])
            .filter(DimFilter::new(
                "day",
                vec![Value::from(1i64), Value::from(3i64), Value::from(5i64)],
            ))
            .grouped_by("region")
            .grouped_by("day")
            .ordered_by(OrderBy::Aggregation(0), true)
            .limited(4),
            Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
                .filter(DimFilter::new("region", vec![Value::from("atlantis")])),
            Query::aggregate(vec![Aggregation::new(AggFn::Max, "score")])
                .grouped_by("day")
                .ordered_by(OrderBy::Dimension("day".into()), false),
        ]
    }

    #[test]
    fn vectorized_bitmap_kernel_matches_reference_bit_for_bit() {
        for storage in [
            crate::brick::DimStorage::Plain,
            crate::brick::DimStorage::Bess,
        ] {
            let cube = cube();
            let brick = big_brick(&cube, storage);
            // Epoch 2 of 3: the last 1500 rows stay invisible, and the
            // 3000 visible ones cross the SCAN_CHUNK boundary.
            let vis = brick.visibility(&Snapshot::committed(2));
            for (qi, q) in differential_battery().iter().enumerate() {
                let r = resolved(&cube, q);
                let reference = scan_brick_shared(&brick, &vis, &r);
                let fast = scan_brick_shared_vectorized(&brick, &vis, &r);
                assert_eq!(
                    reference.stats.rows_scanned, fast.stats.rows_scanned,
                    "query {qi} ({storage:?}): rows_scanned"
                );
                assert_eq!(
                    reference.stats.rows_visible, fast.stats.rows_visible,
                    "query {qi} ({storage:?}): rows_visible"
                );
                assert_bits_identical(
                    &QueryResult::finalize(&cube, &r, reference),
                    &QueryResult::finalize(&cube, &r, fast),
                    &format!("query {qi} ({storage:?})"),
                );
            }
        }
    }

    #[test]
    fn vectorized_ranges_kernel_matches_reference_bit_for_bit() {
        for storage in [
            crate::brick::DimStorage::Plain,
            crate::brick::DimStorage::Bess,
        ] {
            let cube = cube();
            let brick = big_brick(&cube, storage);
            let ranges = brick.epochs().visible_ranges(&Snapshot::committed(2));
            // Filterless shapes only: the engine takes the ranges path
            // exactly when no filters survive resolution.
            let battery = [
                Query::aggregate(vec![
                    Aggregation::new(AggFn::Sum, "likes"),
                    Aggregation::new(AggFn::Count, "likes"),
                    Aggregation::new(AggFn::Avg, "score"),
                    Aggregation::new(AggFn::Min, "score"),
                    Aggregation::new(AggFn::Max, "likes"),
                ]),
                Query::aggregate(vec![Aggregation::new(AggFn::Sum, "score")])
                    .grouped_by("region")
                    .grouped_by("day")
                    .ordered_by(OrderBy::Aggregation(0), true)
                    .limited(5),
            ];
            for (qi, q) in battery.iter().enumerate() {
                let r = resolved(&cube, q);
                let reference = scan_brick_ranges(&brick, &ranges, &r);
                let fast = scan_brick_ranges_vectorized(&brick, &ranges, &r);
                assert_eq!(
                    reference.stats.rows_scanned, fast.stats.rows_scanned,
                    "query {qi} ({storage:?}): rows_scanned"
                );
                assert_bits_identical(
                    &QueryResult::finalize(&cube, &r, reference),
                    &QueryResult::finalize(&cube, &r, fast),
                    &format!("query {qi} ({storage:?})"),
                );
            }
        }
    }

    #[test]
    fn ranges_selection_chunks_and_resumes_across_boundaries() {
        let cube = cube();
        let brick = big_brick(&cube, crate::brick::DimStorage::Plain);
        // Hand-crafted ranges: an empty range, a gap, a range crossing
        // the SCAN_CHUNK boundary mid-way, and a tail chunk.
        let ranges = vec![0..1, 1..1, 3..700, 2040..2060, 4000..4500];
        let expected_rows: u64 = ranges.iter().map(|r| r.end - r.start).sum();
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Avg, "score"),
        ])
        .grouped_by("region");
        let r = resolved(&cube, &q);
        let reference = scan_brick_ranges(&brick, &ranges, &r);
        let fast = scan_brick_ranges_vectorized(&brick, &ranges, &r);
        assert_eq!(reference.stats.rows_scanned, expected_rows);
        assert_eq!(fast.stats.rows_scanned, expected_rows);
        assert_bits_identical(
            &QueryResult::finalize(&cube, &r, reference),
            &QueryResult::finalize(&cube, &r, fast),
            "hand-crafted ranges",
        );
    }

    /// Regression (bug 2): rows whose metric cell is not numeric must
    /// be skipped by Sum/Min/Max/Avg — not coerced to `0.0` — while
    /// Count still counts the row. Before the fix `get_numeric(row)
    /// .unwrap_or(0.0)` fed phantom zeros into every accumulator.
    #[test]
    fn non_numeric_metric_cells_are_skipped_not_zeroed() {
        let cube = cube();
        let mut brick = brick_with_data(&cube);
        // The schema cannot produce a non-numeric metric cell, so
        // inject one: replace "score" with a dictionary-id column.
        brick.replace_metric_for_test(1, Column::Str(vec![0, 1, 2]));
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Count, "score"),
            Aggregation::new(AggFn::Sum, "score"),
            Aggregation::new(AggFn::Min, "score"),
            Aggregation::new(AggFn::Max, "score"),
            Aggregation::new(AggFn::Avg, "score"),
        ]);
        let r = resolved(&cube, &q);
        let vis = brick.visibility(&Snapshot::committed(1));
        let partials = [
            ("reference", scan_brick_shared(&brick, &vis, &r)),
            ("vectorized", scan_brick_shared_vectorized(&brick, &vis, &r)),
        ];
        for (kernel, partial) in partials {
            let result = QueryResult::finalize(&cube, &r, partial);
            let v = &result.rows[0].1;
            assert_eq!(v[0], 3.0, "{kernel}: Count counts rows");
            assert_eq!(v[1], 0.0, "{kernel}: Sum over no numeric cells");
            // Min/Max over zero numeric observations finalize to NaN
            // (SQL NULL) like Avg — the `±INFINITY` fold identities
            // must never leak to the result surface (they are not
            // representable in JSON and are indistinguishable from a
            // genuinely infinite metric).
            assert!(v[2].is_nan(), "{kernel}: Min saw no value, got {}", v[2]);
            assert!(v[3].is_nan(), "{kernel}: Max saw no value, got {}", v[3]);
            assert!(
                v[4].is_nan(),
                "{kernel}: Avg of nothing is NaN, got {}",
                v[4]
            );
        }
    }

    /// Regression: `ORDER BY <agg>` must use a *total* comparator
    /// with NaN sorting last in both directions. Before the fix the
    /// comparator was `partial_cmp(..).unwrap_or(Equal)`, which under
    /// a NaN aggregate (e.g. `Avg` of a group with no numeric cells)
    /// is non-total: the NaN row compares Equal to everything and
    /// stays wherever the pre-sort packed-key order left it — here,
    /// first — instead of sorting last.
    #[test]
    fn order_by_agg_puts_nan_last_in_both_directions() {
        let cube = cube();
        let dict = cube.dictionaries()[0].as_ref().unwrap();
        dict.lock().encode("us");
        let mut brick = Brick::new(cube.schema());
        // day=0 carries a literal NaN score (so its Avg is NaN) and
        // owns the smallest packed group key: pre-fix, the ascending
        // stable sort leaves it FIRST (NaN compares Equal to
        // everything under `partial_cmp(..).unwrap_or(Equal)`, and
        // the pre-sort BTreeMap order is by packed key).
        let scores = [f64::NAN, 5.0, 1.0];
        let recs: Vec<ParsedRecord> = scores
            .iter()
            .enumerate()
            .map(|(day, &score)| ParsedRecord {
                bid: 0,
                coords: vec![0, day as u32],
                metrics: vec![Value::I64(1), Value::F64(score)],
            })
            .collect();
        brick.append(1, &recs);
        for desc in [false, true] {
            let q = Query::aggregate(vec![Aggregation::new(AggFn::Avg, "score")])
                .grouped_by("day")
                .ordered_by(OrderBy::Aggregation(0), desc);
            let r = resolved(&cube, &q);
            let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
            let result = QueryResult::finalize(&cube, &r, partial);
            assert_eq!(result.rows.len(), 3);
            let aggs: Vec<f64> = result.rows.iter().map(|(_, v)| v[0]).collect();
            assert!(
                aggs[2].is_nan(),
                "desc={desc}: NaN group must sort last, got {aggs:?}"
            );
            let numeric: Vec<f64> = aggs[..2].to_vec();
            let expected = if desc { vec![5.0, 1.0] } else { vec![1.0, 5.0] };
            assert_eq!(numeric, expected, "desc={desc}: non-NaN prefix order");
        }
    }

    /// Regression: `DESC` must reverse the *comparator*, not the
    /// sorted rows. Before the fix, DESC was a stable ascending sort
    /// followed by `rows.reverse()` — which also reverses the order
    /// of tied groups, so `ORDER BY .. DESC LIMIT n` kept the
    /// highest-keyed tied groups instead of the lowest-keyed ones.
    /// Ties must break by ascending packed group key regardless of
    /// direction.
    #[test]
    fn desc_ties_break_by_ascending_group_key_under_limit() {
        let cube = cube();
        let dict = cube.dictionaries()[0].as_ref().unwrap();
        dict.lock().encode("us");
        let mut brick = Brick::new(cube.schema());
        // Four day groups, all with sum(likes) == 7 (tied).
        let recs: Vec<ParsedRecord> = (0..4u32)
            .map(|day| ParsedRecord {
                bid: 0,
                coords: vec![0, day],
                metrics: vec![Value::I64(7), Value::F64(0.0)],
            })
            .collect();
        brick.append(1, &recs);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("day")
            .ordered_by(OrderBy::Aggregation(0), true)
            .limited(2);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &brick.visibility(&Snapshot::committed(1)), &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        let days: Vec<Value> = result.rows.iter().map(|(k, _)| k[0].clone()).collect();
        // Pre-fix: reverse() emitted days [3, 2]. The descending
        // comparator with ascending-key tie-break keeps [0, 1].
        assert_eq!(days, vec![Value::I64(0), Value::I64(1)]);
        assert_eq!(result.rows[0].1[0], 7.0);
    }

    /// Regression (bug 3): `rows_scanned` is the number of rows the
    /// kernel actually traversed pre-filter, not the brick's physical
    /// row count — a historical snapshot that hides a suffix must not
    /// inflate the stat.
    #[test]
    fn rows_scanned_reports_traversed_rows_on_both_paths() {
        let cube = cube();
        let mut brick = brick_with_data(&cube);
        brick.append(
            3,
            &[ParsedRecord {
                bid: 0,
                coords: vec![1, 4],
                metrics: vec![Value::I64(999), Value::F64(9.9)],
            }],
        );
        assert_eq!(brick.row_count(), 4);
        let snap = Snapshot::committed(1);
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")]);
        let r = resolved(&cube, &q);
        let vis = brick.visibility(&snap);
        let ranges = brick.epochs().visible_ranges(&snap);
        assert_eq!(scan_brick_shared(&brick, &vis, &r).stats.rows_scanned, 3);
        assert_eq!(
            scan_brick_shared_vectorized(&brick, &vis, &r)
                .stats
                .rows_scanned,
            3
        );
        assert_eq!(scan_brick_ranges(&brick, &ranges, &r).stats.rows_scanned, 3);
        assert_eq!(
            scan_brick_ranges_vectorized(&brick, &ranges, &r)
                .stats
                .rows_scanned,
            3
        );
    }

    #[test]
    fn filter_set_membership_ranges_and_coverage() {
        let small = FilterSet::from_coords([5u32, 1, 3, 3]);
        assert!(small.bitset.is_some(), "small ids get a dense bitset");
        assert!(small.contains(1) && small.contains(3) && small.contains(5));
        assert!(!small.contains(0) && !small.contains(2) && !small.contains(4));
        assert!(!small.contains(1_000_000), "probe past the bitset");
        assert!(small.intersects_range(4, 6));
        assert!(!small.intersects_range(6, u32::MAX));
        assert!(!small.covers_all(6));

        let big = FilterSet::from_coords([FILTER_BITSET_MAX + 7, 2]);
        assert!(big.bitset.is_none(), "large ids fall back to binary search");
        assert!(big.contains(FILTER_BITSET_MAX + 7) && big.contains(2));
        assert!(!big.contains(3));

        let full = FilterSet::from_coords(0..4u32);
        assert!(full.covers_all(4));
        assert!(!full.covers_all(5));

        let empty = FilterSet::from_coords(std::iter::empty::<u32>());
        assert!(!empty.contains(0));
        assert!(!empty.intersects_range(0, u32::MAX));
    }

    /// A naive row-model reference for GROUP BY + HAVING: walks the
    /// visible rows in order, groups them by raw coordinate vectors,
    /// computes each aggregate by folding observed values in row
    /// order (the same f64 operation sequence as the kernels), and
    /// applies HAVING on the finalized values. Returns rows sorted by
    /// the engine's packed-key order.
    fn naive_group_having(
        cube: &Cube,
        brick: &Brick,
        vis: &Bitmap,
        resolved: &ResolvedQuery,
    ) -> Vec<(Vec<Value>, Vec<f64>)> {
        let spec = resolved.group_by.as_ref().expect("grouped query");
        let mut groups: BTreeMap<u64, Vec<Vec<f64>>> = BTreeMap::new();
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for row in vis.iter_ones() {
            if !resolved
                .filters
                .iter()
                .all(|(dim, coords)| coords.contains(brick.dim_value(*dim, row)))
            {
                continue;
            }
            let key = spec.pack(brick, row);
            let observed = groups
                .entry(key)
                .or_insert_with(|| vec![Vec::new(); resolved.aggs.len()]);
            *counts.entry(key).or_insert(0) += 1;
            for (values, &(_, metric)) in observed.iter_mut().zip(&resolved.aggs) {
                if let Some(v) = brick.metric_column(metric).get_numeric(row) {
                    values.push(v);
                }
            }
        }
        let mut rows: Vec<(Vec<Value>, Vec<f64>)> = Vec::new();
        for (key, observed) in groups {
            let finalized: Vec<f64> = observed
                .iter()
                .zip(&resolved.aggs)
                .map(|(values, &(func, _))| match func {
                    AggFn::Count => counts[&key] as f64,
                    AggFn::Sum => values.iter().fold(0.0, |s, &v| s + v),
                    AggFn::Min => {
                        if values.is_empty() {
                            f64::NAN
                        } else {
                            values.iter().fold(f64::INFINITY, |m, &v| m.min(v))
                        }
                    }
                    AggFn::Max => {
                        if values.is_empty() {
                            f64::NAN
                        } else {
                            values.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
                        }
                    }
                    AggFn::Avg => {
                        if values.is_empty() {
                            f64::NAN
                        } else {
                            values.iter().fold(0.0, |s, &v| s + v) / values.len() as f64
                        }
                    }
                })
                .collect();
            if let Some(h) = &resolved.having {
                if !h.op.holds(finalized[h.agg], h.value) {
                    continue;
                }
            }
            let decoded = spec
                .unpack(key)
                .into_iter()
                .map(|(dim, coord)| cube.decode_coord(dim, coord))
                .collect();
            rows.push((decoded, finalized));
        }
        rows
    }

    /// Differential: GROUP BY + HAVING through both kernels must
    /// match the naive row model bit-for-bit, for every comparison
    /// operator, including thresholds that keep all, some, or no
    /// groups (the empty-result edge).
    #[test]
    fn group_by_having_matches_naive_row_model() {
        for storage in [
            crate::brick::DimStorage::Plain,
            crate::brick::DimStorage::Bess,
        ] {
            let cube = cube();
            let brick = big_brick(&cube, storage);
            let vis = brick.visibility(&Snapshot::committed(2));
            let cases: Vec<(CmpOp, f64)> = vec![
                (CmpOp::Gt, 10_000.0),
                (CmpOp::Ge, 0.0),
                (CmpOp::Lt, -1e18),  // drops every group
                (CmpOp::Le, 1e18),   // keeps every group
                (CmpOp::Eq, 1000.0), // unlikely exact hit
                (CmpOp::Ne, 1000.0),
            ];
            for (op, value) in cases {
                for agg_idx in [0usize, 1] {
                    let q = Query::aggregate(vec![
                        Aggregation::new(AggFn::Sum, "likes"),
                        Aggregation::new(AggFn::Avg, "score"),
                        Aggregation::new(AggFn::Count, "likes"),
                    ])
                    .filter(DimFilter::new(
                        "region",
                        vec![Value::from("us"), Value::from("br")],
                    ))
                    .grouped_by("region")
                    .grouped_by("day")
                    .having(agg_idx, op, value);
                    let r = resolved(&cube, &q);
                    let naive = naive_group_having(&cube, &brick, &vis, &r);
                    for (kernel, partial) in [
                        ("reference", scan_brick_shared(&brick, &vis, &r)),
                        ("vectorized", scan_brick_shared_vectorized(&brick, &vis, &r)),
                    ] {
                        let result = QueryResult::finalize(&cube, &r, partial);
                        let context =
                            format!("{storage:?}/{kernel}: HAVING #{agg_idx} {op:?} {value}");
                        assert_eq!(result.rows.len(), naive.len(), "{context}: group count");
                        for (i, ((ek, ev), (nk, nv))) in result.rows.iter().zip(&naive).enumerate()
                        {
                            assert_eq!(ek, nk, "{context}: key of row {i}");
                            let eb: Vec<u64> = ev.iter().map(|v| v.to_bits()).collect();
                            let nb: Vec<u64> = nv.iter().map(|v| v.to_bits()).collect();
                            assert_eq!(eb, nb, "{context}: values of row {i}");
                        }
                    }
                }
            }
        }
    }

    /// HAVING on NaN-finalized aggregates (all-NULL metric groups):
    /// NULL fails every comparison, `Ne` included — three-valued SQL
    /// logic — so a HAVING on the NaN aggregate drops every group,
    /// while the same groups survive a HAVING on a non-NULL one.
    #[test]
    fn having_on_nan_finalized_aggregates_drops_groups() {
        let cube = cube();
        let mut brick = brick_with_data(&cube);
        // Make every `score` cell non-numeric: Min/Max/Avg(score)
        // finalize to NaN in every group.
        brick.replace_metric_for_test(1, Column::Str(vec![0, 1, 2]));
        let vis = brick.visibility(&Snapshot::committed(1));
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let q = Query::aggregate(vec![
                Aggregation::new(AggFn::Avg, "score"),
                Aggregation::new(AggFn::Count, "likes"),
            ])
            .grouped_by("region")
            .having(0, op, 0.0);
            let r = resolved(&cube, &q);
            for (kernel, partial) in [
                ("reference", scan_brick_shared(&brick, &vis, &r)),
                ("vectorized", scan_brick_shared_vectorized(&brick, &vis, &r)),
            ] {
                let result = QueryResult::finalize(&cube, &r, partial);
                assert!(
                    result.rows.is_empty(),
                    "{kernel}: NULL {op:?} 0.0 must drop every group, kept {:?}",
                    result.rows
                );
            }
            // The naive model agrees.
            assert!(naive_group_having(&cube, &brick, &vis, &r).is_empty());
        }
        // Sanity: HAVING on the Count aggregate keeps the groups.
        let q = Query::aggregate(vec![
            Aggregation::new(AggFn::Avg, "score"),
            Aggregation::new(AggFn::Count, "likes"),
        ])
        .grouped_by("region")
        .having(1, CmpOp::Ge, 1.0);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &vis, &r);
        assert_eq!(QueryResult::finalize(&cube, &r, partial).rows.len(), 2);
    }

    /// HAVING applies before ORDER BY/LIMIT: the limit counts
    /// surviving groups, not pre-HAVING ones.
    #[test]
    fn having_applies_before_order_and_limit() {
        let cube = cube();
        let brick = brick_with_data(&cube);
        let vis = brick.visibility(&Snapshot::committed(1));
        // Groups by day: sums 10, 20, 30. HAVING > 10 leaves {20, 30};
        // LIMIT 2 ascending keeps both (not {10, 20}).
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("day")
            .having(0, CmpOp::Gt, 10.0)
            .ordered_by(OrderBy::Aggregation(0), false)
            .limited(2);
        let r = resolved(&cube, &q);
        let partial = scan_brick_shared(&brick, &vis, &r);
        let result = QueryResult::finalize(&cube, &r, partial);
        let sums: Vec<f64> = result.rows.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(sums, vec![20.0, 30.0]);
    }

    #[test]
    fn having_out_of_range_aggregation_is_rejected() {
        let cube = cube();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
            .grouped_by("region")
            .having(3, CmpOp::Gt, 0.0);
        assert!(matches!(
            ResolvedQuery::resolve(&cube, &q),
            Err(CubrickError::UnknownColumn(_))
        ));
    }

    /// A filter accepting every storable coordinate cannot reject a
    /// row: resolve drops it, so the scan takes the cheaper
    /// unfiltered ranges path with identical semantics.
    #[test]
    fn exhaustive_filter_is_dropped_at_resolve() {
        let cube = cube();
        let all_days: Vec<Value> = (0..8i64).map(Value::from).collect();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
            .filter(DimFilter::new("day", all_days));
        assert!(resolved(&cube, &q).filters.is_empty());
        let most_days: Vec<Value> = (0..7i64).map(Value::from).collect();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
            .filter(DimFilter::new("day", most_days));
        assert_eq!(resolved(&cube, &q).filters.len(), 1);
    }
}
