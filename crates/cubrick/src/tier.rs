//! Tiered brick storage: the residency manager that evicts cold
//! bricks to a durable store and faults them back in on demand.
//!
//! The engine side of the spill machinery lives here; the durable
//! format and the `WalFs`-backed store implementation live in the
//! `wal` crate (`wal::tier`), which depends on this crate — the
//! [`BrickStore`] trait is the seam between them.
//!
//! ## Eligibility: only clean-cold bricks spill
//!
//! A brick may be evicted only when its newest epoch is at or below
//! the manager's LSE. The LSE cannot pass a pending transaction, so
//! such a brick can never hold rows of an uncommitted or
//! aborted-but-unreclaimed transaction, and no future flush round can
//! cover its epochs — every row in it is durable in the WAL chain and
//! immutable until it is faulted back in. That single rule is what
//! makes the rest of the design safe:
//!
//! * **Rollback** reclaims rows of an aborted epoch; aborted epochs
//!   are strictly above the LSE, so a spilled brick has nothing to
//!   reclaim and rollback may skip it.
//! * **Purge** compacts history at the LSE; skipping a spilled brick
//!   merely defers reclamation until the brick is next resident.
//! * **Crash recovery** replays the full WAL chain, which still holds
//!   every spilled row — spill files are a redundant cold copy, and a
//!   power cut at any point during spill, eviction, or reload loses
//!   nothing (`oracle::crash` pins this).
//!
//! ## Caches survive eviction
//!
//! The spill snapshot preserves the epochs vector's generation
//! counter verbatim, and the registry retains a copy of the vector
//! while the brick is cold. Visibility and aggregate cache entries
//! are keyed on (generation, snapshot), so they remain *valid* across
//! an evict/reload cycle — no invalidation happens on either edge —
//! and a warm aggregate partial can even answer a query for a brick
//! that is currently on disk, without faulting it in
//! ([`TieredStore::cached_serve`] feeds that path).

use std::collections::HashMap;

use aosi::EpochsVector;
use obs::{Counter, Gauge, ReportBuilder};
use parking_lot::Mutex;

use crate::brick::Brick;
use crate::cube::Cube;
use crate::shard::ShardBricks;

/// Errors from a [`BrickStore`] implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TierError {
    /// The underlying storage failed (write, sync, read, remove).
    Io(String),
    /// A snapshot decoded wrong: bad magic, torn tail, checksum
    /// mismatch, or a field that contradicts the cube's schema.
    Corrupt(String),
    /// No snapshot exists for the requested brick.
    Missing,
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Io(msg) => write!(f, "tier storage I/O failed: {msg}"),
            TierError::Corrupt(msg) => write!(f, "tier snapshot corrupt: {msg}"),
            TierError::Missing => write!(f, "tier snapshot missing"),
        }
    }
}

impl std::error::Error for TierError {}

/// Durable storage for evicted bricks. `wal::tier::WalBrickStore` is
/// the production implementation (checksummed snapshots through the
/// `WalFs` trait, so the crash oracle's simulated power cuts cover
/// it); tests use in-memory stores.
///
/// Implementations must make `spill` durable before returning: once
/// it returns `Ok`, a matching `reload` must succeed even after a
/// process restart (absent media corruption, which `reload` reports
/// as [`TierError::Corrupt`]).
pub trait BrickStore: Send + Sync {
    /// Durably writes a snapshot of `brick`. Returns the snapshot's
    /// size in bytes.
    fn spill(&self, cube: &Cube, bid: u64, brick: &Brick) -> Result<u64, TierError>;

    /// Reads a snapshot back into a brick, bit-identical to what was
    /// spilled (layout, rows, epochs vector *including its
    /// generation counter*).
    fn reload(&self, cube: &Cube, bid: u64) -> Result<Brick, TierError>;

    /// Removes a snapshot. Missing snapshots are not an error (the
    /// call must be idempotent — cleanup paths retry).
    fn discard(&self, cube: &str, bid: u64) -> Result<(), TierError>;
}

/// Registry entry for one evicted brick.
struct SpilledBrick {
    /// The epochs vector as of eviction, generation included. Kept so
    /// cache keys can still be formed (and cache hits served) while
    /// the brick's columns are on disk.
    epochs: EpochsVector,
    /// Snapshot size on disk.
    file_bytes: u64,
    /// What the brick occupied in memory (the bytes eviction freed).
    resident_bytes: usize,
}

/// Point-in-time counters for the cold tier (see
/// [`crate::Engine::tier_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Memory budget eviction enforces, in bytes.
    pub budget_bytes: usize,
    /// Resident brick bytes observed by the most recent enforcement
    /// sweep (after its evictions).
    pub resident_bytes: u64,
    /// Bricks currently evicted.
    pub spilled_bricks: usize,
    /// Bytes their snapshots occupy on disk.
    pub spilled_file_bytes: u64,
    /// Brick bytes eviction has freed (memory the spilled bricks
    /// would occupy if resident).
    pub spilled_resident_bytes: u64,
    /// Successful spills, cumulative.
    pub spills: u64,
    /// Successful reloads, cumulative.
    pub reloads: u64,
    /// Queries for a spilled brick answered straight from the
    /// aggregate cache, no reload.
    pub cache_serves: u64,
    /// Spill attempts that failed (the brick stayed resident).
    pub spill_failures: u64,
    /// Reload attempts that failed (the query or mutation errored).
    pub reload_failures: u64,
}

struct TierInner {
    /// Evicted bricks by (cube, bid).
    spilled: HashMap<(String, u64), SpilledBrick>,
    /// Last-scan tick per resident brick, for eviction ranking.
    touches: HashMap<(String, u64), u64>,
    /// The touch clock.
    tick: u64,
}

/// The engine's cold-tier state: one durable [`BrickStore`], the
/// memory budget, the spilled-brick registry, and the recency clock
/// eviction ranks by.
pub struct TieredStore {
    store: Box<dyn BrickStore>,
    budget_bytes: usize,
    inner: Mutex<TierInner>,
    spills: Counter,
    reloads: Counter,
    cache_serves: Counter,
    spill_failures: Counter,
    reload_failures: Counter,
    /// Resident bytes after the last enforcement sweep.
    resident_bytes: Gauge,
}

impl TieredStore {
    /// Wraps a durable store under a memory budget.
    pub fn new(store: Box<dyn BrickStore>, budget_bytes: usize) -> Self {
        TieredStore {
            store,
            budget_bytes,
            inner: Mutex::new(TierInner {
                spilled: HashMap::new(),
                touches: HashMap::new(),
                tick: 0,
            }),
            spills: Counter::default(),
            reloads: Counter::default(),
            cache_serves: Counter::default(),
            spill_failures: Counter::default(),
            reload_failures: Counter::default(),
            resident_bytes: Gauge::default(),
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The durable store (spill/reload run on shard threads).
    pub(crate) fn store(&self) -> &dyn BrickStore {
        &*self.store
    }

    /// Whether `bid` of `cube` is currently evicted.
    pub(crate) fn is_spilled(&self, cube: &str, bid: u64) -> bool {
        self.inner
            .lock()
            .spilled
            .contains_key(&(cube.to_owned(), bid))
    }

    /// The retained epochs vector of an evicted brick (cache-serve
    /// path).
    pub(crate) fn spilled_epochs(&self, cube: &str, bid: u64) -> Option<EpochsVector> {
        self.inner
            .lock()
            .spilled
            .get(&(cube.to_owned(), bid))
            .map(|s| s.epochs.clone())
    }

    /// Spilled bricks holding any run in `(lse, lse_prime]` — the
    /// retained epochs vectors answer this without touching disk.
    pub(crate) fn spilled_in_window(&self, lse: u64, lse_prime: u64) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .spilled
            .iter()
            .filter(|(_, s)| {
                s.epochs
                    .entries()
                    .iter()
                    .any(|e| e.epoch() > lse && e.epoch() <= lse_prime)
            })
            .map(|((cube, bid), _)| (cube.clone(), *bid))
            .collect()
    }

    /// Bids of `cube` currently evicted, unsorted.
    pub(crate) fn spilled_bids(&self, cube: &str) -> Vec<u64> {
        self.inner
            .lock()
            .spilled
            .keys()
            .filter(|(c, _)| c == cube)
            .map(|&(_, bid)| bid)
            .collect()
    }

    /// Bumps the touch clock for a resident brick (called from scan
    /// paths so eviction can rank bricks by how recently queries
    /// touched them).
    pub(crate) fn touch(&self, cube: &str, bid: u64) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.touches.insert((cube.to_owned(), bid), tick);
    }

    /// How recently `bid` was scanned, as a fraction of the touch
    /// clock (1.0 = the most recent touch in the engine, `None` =
    /// never touched). Comparable against
    /// [`aosi::SnapshotCache::partition_recency`], which uses the
    /// same convention — the eviction ranking takes the max across
    /// all three clocks.
    pub(crate) fn touch_recency(&self, cube: &str, bid: u64) -> Option<f64> {
        let inner = self.inner.lock();
        if inner.tick == 0 {
            return None;
        }
        inner
            .touches
            .get(&(cube.to_owned(), bid))
            .map(|&t| t as f64 / inner.tick as f64)
    }

    /// Counts a query for a spilled brick answered from the
    /// aggregate cache.
    pub(crate) fn note_cache_serve(&self) {
        self.cache_serves.inc();
    }

    /// Counts a failed spill attempt (brick stays resident).
    pub(crate) fn note_spill_failure(&self) {
        self.spill_failures.inc();
    }

    /// Records a successful spill. Runs on the owning shard thread,
    /// after the durable write succeeded and the brick left the map.
    pub(crate) fn note_spilled(
        &self,
        cube: &str,
        bid: u64,
        epochs: EpochsVector,
        file_bytes: u64,
        resident_bytes: usize,
    ) {
        self.spills.inc();
        let mut inner = self.inner.lock();
        inner.touches.remove(&(cube.to_owned(), bid));
        inner.spilled.insert(
            (cube.to_owned(), bid),
            SpilledBrick {
                epochs,
                file_bytes,
                resident_bytes,
            },
        );
    }

    /// Faults one brick back into its shard map. Must run on the
    /// owning shard thread — that is what makes the
    /// check-reload-insert sequence race-free (a concurrent task on
    /// the same shard either ran before us, in which case the brick
    /// is already back and we return `Ok(false)`, or runs after and
    /// sees it resident).
    ///
    /// Returns `Ok(true)` if a reload happened, `Ok(false)` if the
    /// brick was already resident (or never spilled). On success the
    /// snapshot file is discarded best-effort; a leftover file is
    /// harmless (startup cleanup removes strays, and the registry —
    /// not the directory — defines what is spilled).
    pub(crate) fn reload_into(
        &self,
        cube: &Cube,
        bid: u64,
        bricks: &mut ShardBricks,
    ) -> Result<bool, String> {
        if !self.is_spilled(cube.name(), bid) {
            return Ok(false);
        }
        if bricks
            .get(cube.name())
            .is_some_and(|m| m.contains_key(&bid))
        {
            // Registry says spilled but the brick is in the map:
            // another task on this shard reloaded it between our
            // registry check and now — impossible on the owning
            // thread, but cheap to tolerate.
            return Ok(false);
        }
        match self.store.reload(cube, bid) {
            Ok(brick) => {
                self.reloads.inc();
                bricks
                    .entry(cube.name().to_owned())
                    .or_default()
                    .insert(bid, brick);
                let mut inner = self.inner.lock();
                inner.spilled.remove(&(cube.name().to_owned(), bid));
                inner.tick += 1;
                let tick = inner.tick;
                inner.touches.insert((cube.name().to_owned(), bid), tick);
                drop(inner);
                let _ = self.store.discard(cube.name(), bid);
                Ok(true)
            }
            Err(e) => {
                self.reload_failures.inc();
                Err(e.to_string())
            }
        }
    }

    /// Forgets an evicted brick and removes its snapshot (DDL drop /
    /// rebalance retire). Returns whether the registry held it.
    pub(crate) fn forget(&self, cube: &str, bid: u64) -> bool {
        let existed = {
            let mut inner = self.inner.lock();
            inner.touches.remove(&(cube.to_owned(), bid));
            inner.spilled.remove(&(cube.to_owned(), bid)).is_some()
        };
        if existed {
            let _ = self.store.discard(cube, bid);
        }
        existed
    }

    /// Updates the resident-bytes gauge after an enforcement sweep.
    pub(crate) fn observe_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.set(bytes);
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> TierStats {
        let inner = self.inner.lock();
        TierStats {
            budget_bytes: self.budget_bytes,
            resident_bytes: self.resident_bytes.get(),
            spilled_bricks: inner.spilled.len(),
            spilled_file_bytes: inner.spilled.values().map(|s| s.file_bytes).sum(),
            spilled_resident_bytes: inner.spilled.values().map(|s| s.resident_bytes as u64).sum(),
            spills: self.spills.get(),
            reloads: self.reloads.get(),
            cache_serves: self.cache_serves.get(),
            spill_failures: self.spill_failures.get(),
            reload_failures: self.reload_failures.get(),
        }
    }

    /// Writes the `[<prefix>storage.tier]` report section.
    pub(crate) fn report_as(&self, report: &mut ReportBuilder, section: &str) {
        let stats = self.stats();
        report
            .section(section)
            .metric("budget_bytes", self.budget_bytes)
            .gauge("resident_bytes", &self.resident_bytes)
            .metric("spilled_bricks", stats.spilled_bricks)
            .metric("spilled_file_bytes", stats.spilled_file_bytes)
            .metric("spilled_resident_bytes", stats.spilled_resident_bytes)
            .counter("spills", &self.spills)
            .counter("reloads", &self.reloads)
            .counter("cache_serves", &self.cache_serves)
            .counter("spill_failures", &self.spill_failures)
            .counter("reload_failures", &self.reload_failures);
    }
}

/// What one [`crate::Engine::enforce_tier_budget`] sweep did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierEnforcement {
    /// Resident brick bytes before the sweep.
    pub resident_bytes_before: u64,
    /// Resident brick bytes after evictions.
    pub resident_bytes_after: u64,
    /// Bricks evicted by this sweep.
    pub evicted: u64,
    /// Spill attempts that failed (bricks left resident).
    pub failed: u64,
    /// Clean-cold bytes that *could* have been evicted but were not
    /// needed (or could not be, once candidates ran out).
    pub eligible_bytes: u64,
}

/// In-memory [`BrickStore`] for tests (here and in the engine's tier
/// integration tests): spills a deep copy into a map, no codec.
#[cfg(test)]
pub(crate) struct MemStore {
    snapshots: parking_lot::Mutex<HashMap<(String, u64), Brick>>,
}

#[cfg(test)]
impl MemStore {
    pub(crate) fn new() -> Self {
        MemStore {
            snapshots: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    fn copy(cube_schema: &crate::ddl::CubeSchema, brick: &Brick) -> Brick {
        Brick::restore(
            cube_schema,
            brick.storage_kind(),
            (0..brick.num_dims()).map(|d| brick.dim_coords(d)).collect(),
            (0..brick.num_metrics())
                .map(|m| brick.metric_column(m).clone())
                .collect(),
            EpochsVector::from_parts_with_generation(
                brick.epochs().entries().to_vec(),
                brick.epochs().row_count(),
                brick.epochs().generation(),
            ),
        )
    }
}

#[cfg(test)]
impl BrickStore for MemStore {
    fn spill(&self, cube: &Cube, bid: u64, brick: &Brick) -> Result<u64, TierError> {
        let clone = Self::copy(cube.schema(), brick);
        self.snapshots
            .lock()
            .insert((cube.name().to_owned(), bid), clone);
        Ok(64)
    }

    fn reload(&self, cube: &Cube, bid: u64) -> Result<Brick, TierError> {
        let snapshots = self.snapshots.lock();
        let stored = snapshots
            .get(&(cube.name().to_owned(), bid))
            .ok_or(TierError::Missing)?;
        Ok(Self::copy(cube.schema(), stored))
    }

    fn discard(&self, cube: &str, bid: u64) -> Result<(), TierError> {
        self.snapshots.lock().remove(&(cube.to_owned(), bid));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Cube {
        let schema = crate::ddl::CubeSchema::new(
            "t",
            vec![crate::ddl::Dimension::int("d", 16, 4)],
            vec![crate::ddl::Metric::float("m")],
        )
        .unwrap();
        Cube::new(schema)
    }

    fn brick(cube: &Cube, rows: usize) -> Brick {
        let mut b = Brick::new(cube.schema());
        let records: Vec<crate::ingest::ParsedRecord> = (0..rows)
            .map(|i| crate::ingest::ParsedRecord {
                bid: 0,
                coords: vec![(i % 16) as u32],
                metrics: vec![columnar::Value::F64(i as f64)],
            })
            .collect();
        b.append(1, &records);
        b
    }

    #[test]
    fn registry_tracks_spill_reload_and_forget() {
        let tier = TieredStore::new(Box::new(MemStore::new()), 1024);
        let cube = cube();
        let b = brick(&cube, 8);
        let epochs = b.epochs().clone();
        let mem = b.memory();

        assert!(!tier.is_spilled("t", 3));
        let file_bytes = tier.store().spill(&cube, 3, &b).unwrap();
        tier.note_spilled("t", 3, epochs, file_bytes, mem.data_bytes + mem.aosi_bytes);
        assert!(tier.is_spilled("t", 3));
        assert_eq!(tier.spilled_bids("t"), vec![3]);
        assert_eq!(
            tier.spilled_epochs("t", 3).unwrap().generation(),
            b.epochs().generation()
        );

        let mut bricks = ShardBricks::new();
        assert!(tier.reload_into(&cube, 3, &mut bricks).unwrap());
        assert!(!tier.is_spilled("t", 3));
        let reloaded = bricks.get("t").unwrap().get(&3).unwrap();
        assert_eq!(reloaded.row_count(), 8);
        assert_eq!(reloaded.epochs().generation(), b.epochs().generation());
        // Second call is a no-op: resident already.
        assert!(!tier.reload_into(&cube, 3, &mut bricks).unwrap());

        let stats = tier.stats();
        assert_eq!(stats.spills, 1);
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.spilled_bricks, 0);

        tier.note_spilled("t", 4, b.epochs().clone(), 10, 100);
        assert!(tier.forget("t", 4));
        assert!(!tier.forget("t", 4));
    }

    #[test]
    fn reload_of_a_missing_snapshot_is_a_counted_failure() {
        let tier = TieredStore::new(Box::new(MemStore::new()), 1024);
        let cube = cube();
        let b = brick(&cube, 4);
        // Registered as spilled, but the store never saw it.
        tier.note_spilled("t", 9, b.epochs().clone(), 0, 0);
        let mut bricks = ShardBricks::new();
        let err = tier.reload_into(&cube, 9, &mut bricks).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        assert_eq!(tier.stats().reload_failures, 1);
        // Still registered — the brick is not silently forgotten.
        assert!(tier.is_spilled("t", 9));
    }

    #[test]
    fn touch_recency_ranks_hotter_bricks_higher() {
        let tier = TieredStore::new(Box::new(MemStore::new()), 1024);
        assert_eq!(tier.touch_recency("t", 1), None);
        tier.touch("t", 1);
        tier.touch("t", 2);
        let r1 = tier.touch_recency("t", 1).unwrap();
        let r2 = tier.touch_recency("t", 2).unwrap();
        assert!(r2 > r1);
        assert!(r2 <= 1.0);
        assert_eq!(tier.touch_recency("t", 3), None);
    }

    #[test]
    fn report_renders_the_storage_tier_section() {
        let tier = TieredStore::new(Box::new(MemStore::new()), 4096);
        tier.note_cache_serve();
        tier.note_spill_failure();
        tier.observe_resident_bytes(123);
        let mut report = ReportBuilder::new();
        tier.report_as(&mut report, "storage.tier");
        let text = report.finish();
        assert!(text.contains("[storage.tier]"), "{text}");
        assert!(text.contains("budget_bytes = 4096"), "{text}");
        assert!(text.contains("cache_serves = 1"), "{text}");
        assert!(text.contains("spill_failures = 1"), "{text}");
        assert!(text.contains("resident_bytes = 123"), "{text}");
    }
}
