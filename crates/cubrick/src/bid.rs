//! Brick-id packing: the spatial address of a partition.
//!
//! "Each brick is identified by one id (bid) that dictates the
//! spatial position in the conceptual d-dimensional space … and is
//! composed by the bitwise concatenation of the range indexes on each
//! dimension" (Section V-A). The first declared dimension occupies
//! the least-significant bits.

use crate::ddl::CubeSchema;

/// Precomputed per-dimension shift/width for bid packing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BidLayout {
    /// `(shift, bits, range_size, num_ranges)` per dimension.
    dims: Vec<(u32, u32, u32, u32)>,
}

impl BidLayout {
    /// Derives the layout from a schema.
    pub fn new(schema: &CubeSchema) -> Self {
        let mut shift = 0;
        let dims = schema
            .dimensions
            .iter()
            .map(|d| {
                let bits = d.bid_bits();
                let entry = (shift, bits, d.range_size, d.num_ranges());
                shift += bits;
                entry
            })
            .collect();
        BidLayout { dims }
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// The bid of the brick containing `coords`.
    ///
    /// # Panics
    /// Panics (debug) if a coordinate is outside its cardinality; the
    /// ingest pipeline validates coordinates before calling.
    pub fn bid_for_coords(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut bid = 0u64;
        for (&coord, &(shift, _, range_size, num_ranges)) in coords.iter().zip(&self.dims) {
            let range_idx = coord / range_size;
            debug_assert!(range_idx < num_ranges, "coordinate out of cardinality");
            bid |= (range_idx as u64) << shift;
        }
        bid
    }

    /// Decomposes a bid back into per-dimension range indexes.
    pub fn range_indexes_of_bid(&self, bid: u64) -> Vec<u32> {
        self.dims
            .iter()
            .map(|&(shift, bits, _, _)| ((bid >> shift) & ((1u64 << bits) - 1)) as u32)
            .collect()
    }

    /// The range index of `coord` on dimension `dim`.
    pub fn range_index(&self, dim: usize, coord: u32) -> u32 {
        coord / self.dims[dim].2
    }

    /// The coordinate interval `[lo, hi)` covered by `range_idx` of
    /// dimension `dim`.
    pub fn range_bounds(&self, dim: usize, range_idx: u32) -> (u32, u32) {
        let size = self.dims[dim].2;
        (range_idx * size, (range_idx + 1) * size)
    }
}

/// One-shot helper: bid of `coords` under `schema`.
pub fn bid_for_coords(schema: &CubeSchema, coords: &[u32]) -> u64 {
    BidLayout::new(schema).bid_for_coords(coords)
}

/// One-shot helper: range indexes of `bid` under `schema`.
pub fn range_indexes_of_bid(schema: &CubeSchema, bid: u64) -> Vec<u32> {
    BidLayout::new(schema).range_indexes_of_bid(bid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{CubeSchema, Dimension, Metric};

    fn paper_schema() -> CubeSchema {
        CubeSchema::new(
            "test",
            vec![
                Dimension::string("region", 4, 2),
                Dimension::string("gender", 4, 1),
            ],
            vec![Metric::int("likes"), Metric::int("comments")],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_bids() {
        // region contributes 1 low bit (2 ranges of size 2), gender 2
        // high bits (4 ranges of size 1).
        let layout = BidLayout::new(&paper_schema());
        assert_eq!(layout.bid_for_coords(&[0, 0]), 0b000);
        assert_eq!(layout.bid_for_coords(&[1, 0]), 0b000, "same region range");
        assert_eq!(layout.bid_for_coords(&[2, 0]), 0b001);
        assert_eq!(layout.bid_for_coords(&[0, 1]), 0b010);
        assert_eq!(layout.bid_for_coords(&[3, 3]), 0b111);
    }

    #[test]
    fn bid_roundtrips_to_range_indexes() {
        let layout = BidLayout::new(&paper_schema());
        for region in 0..4u32 {
            for gender in 0..4u32 {
                let bid = layout.bid_for_coords(&[region, gender]);
                assert_eq!(
                    layout.range_indexes_of_bid(bid),
                    vec![region / 2, gender],
                    "coords ({region},{gender})"
                );
            }
        }
    }

    #[test]
    fn range_bounds_cover_coordinates() {
        let layout = BidLayout::new(&paper_schema());
        assert_eq!(layout.range_bounds(0, 0), (0, 2));
        assert_eq!(layout.range_bounds(0, 1), (2, 4));
        assert_eq!(layout.range_bounds(1, 3), (3, 4));
        assert_eq!(layout.range_index(0, 3), 1);
    }

    #[test]
    fn zero_bit_dimension_contributes_nothing() {
        let schema = CubeSchema::new(
            "c",
            vec![
                Dimension::int("wide", 100, 100), // 1 range, 0 bits
                Dimension::int("narrow", 4, 1),   // 4 ranges, 2 bits
            ],
            vec![],
        )
        .unwrap();
        let layout = BidLayout::new(&schema);
        assert_eq!(layout.bid_for_coords(&[57, 3]), 0b11);
        assert_eq!(layout.range_indexes_of_bid(0b11), vec![0, 3]);
    }

    #[test]
    fn distinct_range_combinations_get_distinct_bids() {
        let schema = CubeSchema::new(
            "c",
            vec![Dimension::int("a", 8, 2), Dimension::int("b", 6, 2)],
            vec![],
        )
        .unwrap();
        let layout = BidLayout::new(&schema);
        let mut seen = std::collections::HashSet::new();
        for a in 0..8u32 {
            for b in 0..6u32 {
                let bid = layout.bid_for_coords(&[a, b]);
                seen.insert(bid);
            }
        }
        assert_eq!(seen.len(), 4 * 3, "one bid per range combination");
    }
}
