//! MVCC transactions: begin/read timestamps, commit timestamps, and
//! write-set tracking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors raised by the baseline (AOSI has no analogue of the first
/// two — that is the paper's argument).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvccError {
    /// First-updater-wins: the row is already deleted/updated by a
    /// concurrent or later transaction.
    WriteConflict {
        /// Row that conflicted.
        row: usize,
    },
    /// The row is not visible to the transaction's snapshot.
    NotVisible {
        /// Row that was targeted.
        row: usize,
    },
    /// The transaction handle was already finished.
    TxnFinished(u64),
}

impl std::fmt::Display for MvccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvccError::WriteConflict { row } => write!(f, "write-write conflict on row {row}"),
            MvccError::NotVisible { row } => write!(f, "row {row} not visible to snapshot"),
            MvccError::TxnFinished(id) => write!(f, "transaction {id} already finished"),
        }
    }
}

impl std::error::Error for MvccError {}

/// An in-flight MVCC transaction.
///
/// Tracks the write set so commit can rewrite provisional txn-id
/// stamps into commit timestamps and abort can undo them — bookkeeping
/// with no AOSI counterpart.
#[derive(Debug)]
pub struct MvccTxn {
    /// Unique transaction id (provisional stamp value).
    pub id: u64,
    /// Snapshot read timestamp.
    pub read_ts: u64,
    /// Rows this transaction created.
    pub created: Vec<usize>,
    /// Rows this transaction deleted (or superseded via update).
    pub deleted: Vec<usize>,
    pub(crate) finished: bool,
}

impl MvccTxn {
    /// Rows written (created + deleted).
    pub fn write_set_len(&self) -> usize {
        self.created.len() + self.deleted.len()
    }
}

/// Allocates transaction ids and timestamps.
///
/// `commit_ts` doubles as the global version counter: `begin` reads
/// it, `commit` bumps it — the same shared-atomic-counter design the
/// paper argues is sufficient for OLAP transaction rates.
#[derive(Clone, Debug, Default)]
pub struct MvccTxnManager {
    next_txn: Arc<AtomicU64>,
    commit_clock: Arc<AtomicU64>,
}

impl MvccTxnManager {
    /// Fresh manager: timestamps start at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a transaction with a snapshot at the current commit
    /// clock.
    pub fn begin(&self) -> MvccTxn {
        MvccTxn {
            id: self.next_txn.fetch_add(1, Ordering::SeqCst) + 1,
            read_ts: self.commit_clock.load(Ordering::SeqCst),
            created: Vec::new(),
            deleted: Vec::new(),
            finished: false,
        }
    }

    /// Allocates a commit timestamp.
    pub fn next_commit_ts(&self) -> u64 {
        self.commit_clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The latest committed timestamp (a fresh snapshot).
    pub fn latest(&self) -> u64 {
        self.commit_clock.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_snapshots_the_commit_clock() {
        let mgr = MvccTxnManager::new();
        let t1 = mgr.begin();
        assert_eq!(t1.read_ts, 0);
        let ts = mgr.next_commit_ts();
        assert_eq!(ts, 1);
        let t2 = mgr.begin();
        assert_eq!(t2.read_ts, 1);
        assert_ne!(t1.id, t2.id);
    }

    #[test]
    fn write_set_len_sums_both_sides() {
        let mgr = MvccTxnManager::new();
        let mut t = mgr.begin();
        t.created.push(0);
        t.created.push(1);
        t.deleted.push(5);
        assert_eq!(t.write_set_len(), 3);
    }

    #[test]
    fn errors_display() {
        assert!(MvccError::WriteConflict { row: 3 }
            .to_string()
            .contains('3'));
        assert!(MvccError::NotVisible { row: 1 }
            .to_string()
            .contains("visible"));
        assert!(MvccError::TxnFinished(9).to_string().contains('9'));
    }
}
