//! The MVCC column store.
//!
//! A flat columnar table where every record slot carries a
//! [`VersionMeta`]. Updates follow the SAP HANA model the paper
//! describes (Section VII): "updates are modeled as a deletion plus
//! reinsertion" — the old version's `deleted_at` is stamped and a new
//! version appended, so record versions accumulate until a vacuum
//! pass, and every scan must test two timestamps per row.

use columnar::{Bitmap, Column, ColumnType, Dictionary, Row, Schema, Value};

use crate::meta::VersionMeta;
use crate::txn::{MvccError, MvccTxn, MvccTxnManager};

/// Counters describing the work a scan performed, used by the
/// benchmark harness to contrast with AOSI's range-based bitmaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccScanStats {
    /// Rows whose metadata was examined (all of them).
    pub rows_checked: u64,
    /// Rows visible to the snapshot.
    pub rows_visible: u64,
}

/// An in-memory MVCC table.
pub struct MvccStore {
    schema: Schema,
    columns: Vec<Column>,
    dictionaries: Vec<Option<Dictionary>>,
    meta: Vec<VersionMeta>,
    manager: MvccTxnManager,
    /// Versions superseded and vacuumable (for instrumentation).
    dead_versions: u64,
}

impl MvccStore {
    /// Creates an empty store over `schema`.
    pub fn new(schema: Schema, manager: MvccTxnManager) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.column_type))
            .collect();
        let dictionaries = schema
            .fields()
            .iter()
            .map(|f| (f.column_type == ColumnType::Str).then(Dictionary::new))
            .collect();
        MvccStore {
            schema,
            columns,
            dictionaries,
            meta: Vec::new(),
            manager,
            dead_versions: 0,
        }
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The associated transaction manager.
    pub fn manager(&self) -> &MvccTxnManager {
        &self.manager
    }

    /// Total record versions (live + dead + uncommitted).
    pub fn version_count(&self) -> usize {
        self.meta.len()
    }

    /// Versions superseded by updates/deletes, awaiting vacuum.
    pub fn dead_versions(&self) -> u64 {
        self.dead_versions
    }

    /// Bytes of per-record concurrency-control metadata — the
    /// baseline series of Figures 6 and 7 (16 bytes per version).
    pub fn metadata_bytes(&self) -> usize {
        self.meta.capacity() * std::mem::size_of::<VersionMeta>()
    }

    /// Bytes of record payload.
    pub fn data_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// Inserts one row on behalf of `txn`; returns the new row id.
    ///
    /// # Panics
    /// Panics if the row does not match the schema.
    pub fn insert(&mut self, txn: &mut MvccTxn, row: &Row) -> usize {
        assert!(self.schema.validates(row), "row does not match schema");
        let row_id = self.meta.len();
        for (idx, value) in row.iter().enumerate() {
            match (value, &mut self.dictionaries[idx]) {
                (Value::Str(s), Some(dict)) => {
                    let id = dict.encode(s);
                    self.columns[idx].push_str_id(id);
                }
                _ => {
                    let ok = self.columns[idx].push_value(value);
                    debug_assert!(ok);
                }
            }
        }
        self.meta.push(VersionMeta::creating(txn.id));
        txn.created.push(row_id);
        row_id
    }

    /// Deletes `row` on behalf of `txn` (first-updater-wins).
    pub fn delete(&mut self, txn: &mut MvccTxn, row: usize) -> Result<(), MvccError> {
        if !self.row_visible(txn.id, txn.read_ts, row) {
            return Err(MvccError::NotVisible { row });
        }
        let meta = &mut self.meta[row];
        if !meta.is_live() {
            // Another transaction (in-flight or committed after our
            // snapshot) already stamped a delete: conflict. This is
            // exactly the class of aborts AOSI designs away.
            return Err(MvccError::WriteConflict { row });
        }
        meta.deleted_at = crate::meta::TXN_ID_BIT | txn.id;
        txn.deleted.push(row);
        Ok(())
    }

    /// Updates `row` to `new_row`: stamps the old version deleted and
    /// appends the new version. Returns the new row id.
    pub fn update(
        &mut self,
        txn: &mut MvccTxn,
        row: usize,
        new_row: &Row,
    ) -> Result<usize, MvccError> {
        self.delete(txn, row)?;
        Ok(self.insert(txn, new_row))
    }

    /// Commits `txn`: rewrites its provisional stamps to a fresh
    /// commit timestamp.
    pub fn commit(&mut self, txn: &mut MvccTxn) -> Result<u64, MvccError> {
        if txn.finished {
            return Err(MvccError::TxnFinished(txn.id));
        }
        let commit_ts = self.manager.next_commit_ts();
        for &row in &txn.created {
            self.meta[row].created_at = commit_ts;
        }
        for &row in &txn.deleted {
            self.meta[row].deleted_at = commit_ts;
            self.dead_versions += 1;
        }
        txn.finished = true;
        Ok(commit_ts)
    }

    /// Aborts `txn`: created versions become permanently invisible,
    /// provisional deletes are cleared.
    pub fn abort(&mut self, txn: &mut MvccTxn) -> Result<(), MvccError> {
        if txn.finished {
            return Err(MvccError::TxnFinished(txn.id));
        }
        for &row in &txn.created {
            // Never visible to any snapshot; reclaimed by vacuum.
            self.meta[row].created_at = u64::MAX;
            self.meta[row].deleted_at = 0;
            self.dead_versions += 1;
        }
        for &row in &txn.deleted {
            self.meta[row].clear_delete();
        }
        txn.finished = true;
        Ok(())
    }

    fn slot_visible(observer_txn: u64, read_ts: u64, slot: u64) -> bool {
        if VersionMeta::is_txn_id(slot) {
            VersionMeta::txn_id(slot) == observer_txn
        } else {
            slot <= read_ts
        }
    }

    /// Is `row` visible to a snapshot (`observer_txn` sees its own
    /// provisional stamps)?
    pub fn row_visible(&self, observer_txn: u64, read_ts: u64, row: usize) -> bool {
        let meta = &self.meta[row];
        if !Self::slot_visible(observer_txn, read_ts, meta.created_at) {
            return false;
        }
        if meta.is_live() {
            return true;
        }
        !Self::slot_visible(observer_txn, read_ts, meta.deleted_at)
    }

    /// Builds the visibility bitmap for an in-flight transaction.
    pub fn scan(&self, txn: &MvccTxn) -> (Bitmap, MvccScanStats) {
        self.scan_at(txn.id, txn.read_ts)
    }

    /// Builds the visibility bitmap for a bare snapshot timestamp
    /// (read-only query).
    pub fn scan_snapshot(&self, read_ts: u64) -> (Bitmap, MvccScanStats) {
        self.scan_at(0, read_ts)
    }

    fn scan_at(&self, observer_txn: u64, read_ts: u64) -> (Bitmap, MvccScanStats) {
        let mut bitmap = Bitmap::new(self.meta.len());
        let mut visible = 0u64;
        // One branchy two-timestamp check per row: the cost structure
        // the paper contrasts with AOSI's per-run range sets.
        for (row, _) in self.meta.iter().enumerate() {
            if self.row_visible(observer_txn, read_ts, row) {
                bitmap.set(row);
                visible += 1;
            }
        }
        (
            bitmap,
            MvccScanStats {
                rows_checked: self.meta.len() as u64,
                rows_visible: visible,
            },
        )
    }

    /// Sums a numeric column over the rows set in `bitmap`.
    pub fn aggregate_sum(&self, column: usize, bitmap: &Bitmap) -> f64 {
        let col = &self.columns[column];
        bitmap
            .iter_ones()
            .map(|row| col.get_numeric(row).unwrap_or(0.0))
            .sum()
    }

    /// Reads a committed cell (for tests); strings come back decoded.
    pub fn get(&self, row: usize, column: usize) -> Option<Value> {
        let col = &self.columns[column];
        match col {
            Column::Str(_) => {
                let id = col.get_str_id(row)?;
                let dict = self.dictionaries[column].as_ref()?;
                Some(Value::Str(dict.decode(id)?.to_owned()))
            }
            Column::I64(_) => col.get_i64(row).map(Value::I64),
            Column::F64(_) => col.get_f64(row).map(Value::F64),
        }
    }

    /// Decodes every row visible at snapshot `read_ts`, in storage
    /// order. Snapshot-read parity with the AOSI engine's
    /// `query_as_of`: the differential oracle replays a committed
    /// schedule into the store and compares aggregate results computed
    /// over these rows against the AOSI side at the matching epoch.
    pub fn rows_at(&self, read_ts: u64) -> Vec<Row> {
        let (bitmap, _) = self.scan_snapshot(read_ts);
        let arity = self.schema.fields().len();
        bitmap
            .iter_ones()
            .map(|row| {
                (0..arity)
                    .map(|col| {
                        self.get(row, col)
                            .expect("visible row has a value in every column")
                    })
                    .collect()
            })
            .collect()
    }

    /// Vacuum: drops versions invisible to every snapshot at or after
    /// `horizon` (dead before the horizon, or aborted). The MVCC
    /// analogue of AOSI's purge — but it must rewrite the whole table
    /// *and* its 16-byte-per-row metadata.
    pub fn vacuum(&mut self, horizon: u64) -> usize {
        let mut keep = Bitmap::new(self.meta.len());
        for (row, meta) in self.meta.iter().enumerate() {
            let aborted = meta.created_at == u64::MAX;
            let dead = !meta.is_live()
                && !VersionMeta::is_txn_id(meta.deleted_at)
                && meta.deleted_at <= horizon;
            if !aborted && !dead {
                keep.set(row);
            }
        }
        let removed = self.meta.len() - keep.count_ones();
        if removed == 0 {
            return 0;
        }
        for col in &mut self.columns {
            *col = col.retain_by_bitmap(&keep);
        }
        let mut new_meta = Vec::with_capacity(keep.count_ones());
        new_meta.extend(keep.iter_ones().map(|row| self.meta[row]));
        self.meta = new_meta;
        self.dead_versions = self.dead_versions.saturating_sub(removed as u64);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Field;

    fn store() -> MvccStore {
        let schema = Schema::new(vec![
            Field::new("region", ColumnType::Str),
            Field::new("likes", ColumnType::I64),
        ]);
        MvccStore::new(schema, MvccTxnManager::new())
    }

    fn row(region: &str, likes: i64) -> Row {
        vec![Value::from(region), Value::from(likes)]
    }

    #[test]
    fn committed_inserts_become_visible() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        s.insert(&mut t1, &row("us", 10));
        s.insert(&mut t1, &row("br", 20));
        // Invisible before commit to a fresh snapshot.
        let (bm, stats) = s.scan_snapshot(s.manager().latest());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(stats.rows_checked, 2);
        s.commit(&mut t1).unwrap();
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn txn_sees_own_uncommitted_writes() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        s.insert(&mut t1, &row("us", 10));
        let (bm, _) = s.scan(&t1);
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn snapshot_isolation_hides_later_commits() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        s.insert(&mut t1, &row("us", 10));
        s.commit(&mut t1).unwrap();
        let reader = s.manager().begin(); // snapshot at ts 1
        let mut t2 = s.manager().begin();
        s.insert(&mut t2, &row("br", 20));
        s.commit(&mut t2).unwrap();
        let (bm, _) = s.scan(&reader);
        assert_eq!(bm.count_ones(), 1, "reader must not see t2's insert");
    }

    #[test]
    fn delete_hides_row_from_later_snapshots_only() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let r = s.insert(&mut t1, &row("us", 10));
        s.commit(&mut t1).unwrap();
        let reader = s.manager().begin();
        let mut t2 = s.manager().begin();
        s.delete(&mut t2, r).unwrap();
        s.commit(&mut t2).unwrap();
        let (bm, _) = s.scan(&reader);
        assert_eq!(bm.count_ones(), 1, "old snapshot still sees the row");
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert_eq!(bm.count_ones(), 0, "new snapshot does not");
    }

    #[test]
    fn update_creates_new_version() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let old = s.insert(&mut t1, &row("us", 10));
        s.commit(&mut t1).unwrap();
        let mut t2 = s.manager().begin();
        let new = s.update(&mut t2, old, &row("us", 99)).unwrap();
        s.commit(&mut t2).unwrap();
        assert_eq!(s.version_count(), 2, "update keeps both versions");
        assert_eq!(s.dead_versions(), 1);
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert!(!bm.get(old) && bm.get(new));
        assert_eq!(s.get(new, 1), Some(Value::I64(99)));
    }

    #[test]
    fn concurrent_updates_conflict_first_updater_wins() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let r = s.insert(&mut t1, &row("us", 10));
        s.commit(&mut t1).unwrap();
        let mut a = s.manager().begin();
        let mut b = s.manager().begin();
        s.delete(&mut a, r).unwrap();
        assert_eq!(
            s.delete(&mut b, r),
            Err(MvccError::WriteConflict { row: r })
        );
        // Aborting the first updater releases the row.
        s.abort(&mut a).unwrap();
        s.delete(&mut b, r).unwrap();
        s.commit(&mut b).unwrap();
    }

    #[test]
    fn deleting_invisible_row_is_rejected() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let r = s.insert(&mut t1, &row("us", 10));
        // A different transaction can't see t1's uncommitted row.
        let mut t2 = s.manager().begin();
        assert_eq!(s.delete(&mut t2, r), Err(MvccError::NotVisible { row: r }));
        s.commit(&mut t1).unwrap();
    }

    #[test]
    fn abort_undoes_inserts_and_deletes() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let r = s.insert(&mut t1, &row("us", 10));
        s.commit(&mut t1).unwrap();
        let mut t2 = s.manager().begin();
        s.insert(&mut t2, &row("br", 20));
        s.delete(&mut t2, r).unwrap();
        s.abort(&mut t2).unwrap();
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert_eq!(bm.count_ones(), 1);
        assert!(bm.get(r), "aborted delete must not stick");
    }

    #[test]
    fn double_finish_rejected() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        s.insert(&mut t1, &row("us", 1));
        s.commit(&mut t1).unwrap();
        assert_eq!(s.commit(&mut t1), Err(MvccError::TxnFinished(t1.id)));
        assert_eq!(s.abort(&mut t1), Err(MvccError::TxnFinished(t1.id)));
    }

    #[test]
    fn metadata_bytes_grow_sixteen_per_version() {
        let mut s = store();
        let mut t = s.manager().begin();
        for i in 0..1000 {
            s.insert(&mut t, &row("us", i));
        }
        s.commit(&mut t).unwrap();
        assert!(s.metadata_bytes() >= 16_000);
        assert_eq!(s.version_count(), 1000);
    }

    #[test]
    fn vacuum_reclaims_dead_and_aborted_versions() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let a = s.insert(&mut t1, &row("us", 1));
        s.insert(&mut t1, &row("br", 2));
        s.commit(&mut t1).unwrap();
        let mut t2 = s.manager().begin();
        s.update(&mut t2, a, &row("us", 3)).unwrap();
        s.commit(&mut t2).unwrap();
        let mut t3 = s.manager().begin();
        s.insert(&mut t3, &row("mx", 4));
        s.abort(&mut t3).unwrap();
        assert_eq!(s.version_count(), 4);
        let removed = s.vacuum(s.manager().latest());
        assert_eq!(removed, 2, "one superseded + one aborted");
        assert_eq!(s.version_count(), 2);
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert_eq!(bm.count_ones(), 2);
        let sum = s.aggregate_sum(1, &bm);
        assert_eq!(sum, 5.0, "likes 2 + 3 survive");
    }

    #[test]
    fn vacuum_respects_horizon() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        let r = s.insert(&mut t1, &row("us", 1));
        s.commit(&mut t1).unwrap();
        let old_snapshot = s.manager().latest(); // ts 1
        let mut t2 = s.manager().begin();
        s.delete(&mut t2, r).unwrap();
        s.commit(&mut t2).unwrap(); // deleted at ts 2
                                    // A reader at ts 1 still needs the row: horizon 1 keeps it.
        assert_eq!(s.vacuum(old_snapshot), 0);
        assert_eq!(s.vacuum(s.manager().latest()), 1);
    }

    #[test]
    fn aggregate_sum_over_bitmap() {
        let mut s = store();
        let mut t = s.manager().begin();
        for i in 1..=10 {
            s.insert(&mut t, &row("us", i));
        }
        s.commit(&mut t).unwrap();
        let (bm, _) = s.scan_snapshot(s.manager().latest());
        assert_eq!(s.aggregate_sum(1, &bm), 55.0);
    }

    #[test]
    fn rows_at_decodes_each_snapshot() {
        let mut s = store();
        let mut t1 = s.manager().begin();
        s.insert(&mut t1, &row("us", 1));
        let victim = s.insert(&mut t1, &row("br", 2));
        let ts1 = s.commit(&mut t1).unwrap();
        let mut t2 = s.manager().begin();
        s.delete(&mut t2, victim).unwrap();
        s.insert(&mut t2, &row("mx", 3));
        let ts2 = s.commit(&mut t2).unwrap();
        assert_eq!(s.rows_at(0), Vec::<Row>::new());
        assert_eq!(s.rows_at(ts1), vec![row("us", 1), row("br", 2)]);
        assert_eq!(s.rows_at(ts2), vec![row("us", 1), row("mx", 3)]);
    }
}
