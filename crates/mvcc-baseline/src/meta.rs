//! Per-record version metadata — the 16 bytes AOSI avoids.

/// High bit marking a timestamp slot as holding an uncommitted
/// transaction id rather than a commit timestamp (the Hekaton
/// convention).
pub const TXN_ID_BIT: u64 = 1 << 63;

/// Sentinel for "never deleted".
const LIVE: u64 = u64::MAX;

/// The two per-record timestamps of a traditional MVCC store.
///
/// While a transaction is in flight, the slot holds `TXN_ID_BIT |
/// txn_id`; commit rewrites it to the commit timestamp. This is the
/// exact layout whose memory cost (16 bytes x records — "160 GB for a
/// 10-billion-record dataset", Section II-B) motivates AOSI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionMeta {
    /// Commit timestamp of the creating transaction (or its tagged
    /// txn id while uncommitted).
    pub created_at: u64,
    /// Commit timestamp of the deleting transaction, tagged txn id
    /// while the delete is uncommitted, or `u64::MAX` if live.
    pub deleted_at: u64,
}

impl VersionMeta {
    /// Metadata for a record being created by in-flight `txn_id`.
    pub fn creating(txn_id: u64) -> Self {
        VersionMeta {
            created_at: TXN_ID_BIT | txn_id,
            deleted_at: LIVE,
        }
    }

    /// `true` if the slot holds an uncommitted transaction id.
    pub fn is_txn_id(slot: u64) -> bool {
        slot != LIVE && slot & TXN_ID_BIT != 0
    }

    /// Extracts the transaction id from a tagged slot.
    pub fn txn_id(slot: u64) -> u64 {
        debug_assert!(Self::is_txn_id(slot));
        slot & !TXN_ID_BIT
    }

    /// `true` if no delete has ever been stamped.
    pub fn is_live(&self) -> bool {
        self.deleted_at == LIVE
    }

    /// Clears a provisional delete (aborted deleter).
    pub fn clear_delete(&mut self) {
        self.deleted_at = LIVE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_sixteen_bytes() {
        // This size *is* the baseline's cost model.
        assert_eq!(std::mem::size_of::<VersionMeta>(), 16);
    }

    #[test]
    fn creating_marks_uncommitted() {
        let m = VersionMeta::creating(42);
        assert!(VersionMeta::is_txn_id(m.created_at));
        assert_eq!(VersionMeta::txn_id(m.created_at), 42);
        assert!(m.is_live());
    }

    #[test]
    fn live_sentinel_is_not_a_txn_id() {
        assert!(!VersionMeta::is_txn_id(u64::MAX));
        assert!(!VersionMeta::is_txn_id(100));
        assert!(VersionMeta::is_txn_id(TXN_ID_BIT | 7));
    }

    #[test]
    fn clear_delete_restores_live() {
        let mut m = VersionMeta::creating(1);
        m.deleted_at = TXN_ID_BIT | 9;
        assert!(!m.is_live());
        m.clear_delete();
        assert!(m.is_live());
    }
}
