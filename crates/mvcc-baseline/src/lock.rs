//! A shared/exclusive lock manager: the 2PL baseline.
//!
//! The paper's Section I contrast: pessimistic protocols "lock the
//! data item being updated in such a way to stall and serialize all
//! subsequent accesses, thus sacrificing performance and causing data
//! contention". This is a classic lock table — one entry per resource
//! (partition, in the benchmarks), shared mode for scans, exclusive
//! for loads/deletes — used by the harness to measure exactly that
//! stall against AOSI's lock-free path.
//!
//! Deadlock handling is *wait-die*: an older transaction (smaller id)
//! waits for a younger holder, a younger requester dies immediately
//! and must retry. This keeps the table simple and is the behaviour
//! the 2PL benchmarks report as aborts.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Lock compatibility mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

#[derive(Default)]
struct ResourceLock {
    /// Holders in shared mode.
    sharers: HashSet<u64>,
    /// Holder in exclusive mode.
    exclusive: Option<u64>,
}

impl ResourceLock {
    fn compatible(&self, txn: u64, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self.exclusive.is_none_or(|x| x == txn),
            LockMode::Exclusive => {
                self.exclusive.is_none_or(|x| x == txn) && self.sharers.iter().all(|&s| s == txn)
            }
        }
    }

    fn grant(&mut self, txn: u64, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                self.sharers.insert(txn);
            }
            LockMode::Exclusive => {
                // Upgrade path: drop our shared hold, take exclusive.
                self.sharers.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }

    /// The youngest (largest-id) current holder other than `txn`, for
    /// the wait-die test.
    fn youngest_other_holder(&self, txn: u64) -> Option<u64> {
        self.sharers
            .iter()
            .copied()
            .chain(self.exclusive)
            .filter(|&h| h != txn)
            .max()
    }

    fn is_free(&self) -> bool {
        self.sharers.is_empty() && self.exclusive.is_none()
    }
}

#[derive(Default)]
struct TableState {
    resources: HashMap<u64, ResourceLock>,
    /// Resources held per transaction, for `release_all`.
    held: HashMap<u64, HashSet<u64>>,
}

/// A process-wide lock table.
#[derive(Clone, Default)]
pub struct LockManager {
    state: Arc<Mutex<TableState>>,
    released: Arc<Condvar>,
}

impl LockManager {
    /// Empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires `resource` in `mode` for `txn`, blocking while
    /// incompatible holders exist. Returns `false` if wait-die kills
    /// the request (a younger transaction would wait on an older
    /// holder): the caller must abort and retry.
    pub fn acquire(&self, txn: u64, resource: u64, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        loop {
            let lock = st.resources.entry(resource).or_default();
            if lock.compatible(txn, mode) {
                lock.grant(txn, mode);
                st.held.entry(txn).or_default().insert(resource);
                return true;
            }
            // Wait-die: only wait on younger holders if we are older.
            if let Some(youngest) = lock.youngest_other_holder(txn) {
                if txn > youngest {
                    return false;
                }
            }
            self.released.wait(&mut st);
        }
    }

    /// Non-blocking acquire.
    pub fn try_acquire(&self, txn: u64, resource: u64, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        let lock = st.resources.entry(resource).or_default();
        if lock.compatible(txn, mode) {
            lock.grant(txn, mode);
            st.held.entry(txn).or_default().insert(resource);
            true
        } else {
            false
        }
    }

    /// Releases every lock `txn` holds (the "shrinking phase" done in
    /// one shot at commit/abort, i.e. strict 2PL).
    pub fn release_all(&self, txn: u64) {
        let mut st = self.state.lock();
        let Some(resources) = st.held.remove(&txn) else {
            return;
        };
        for r in resources {
            if let Some(lock) = st.resources.get_mut(&r) {
                lock.sharers.remove(&txn);
                if lock.exclusive == Some(txn) {
                    lock.exclusive = None;
                }
                if lock.is_free() {
                    st.resources.remove(&r);
                }
            }
        }
        drop(st);
        self.released.notify_all();
    }

    /// Number of resources currently locked (instrumentation).
    pub fn locked_resources(&self) -> usize {
        self.state.lock().resources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        assert!(lm.acquire(1, 100, LockMode::Shared));
        assert!(lm.acquire(2, 100, LockMode::Shared));
        assert_eq!(lm.locked_resources(), 1);
        lm.release_all(1);
        lm.release_all(2);
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn exclusive_excludes_shared_and_exclusive() {
        let lm = LockManager::new();
        assert!(lm.acquire(1, 100, LockMode::Exclusive));
        assert!(!lm.try_acquire(2, 100, LockMode::Shared));
        assert!(!lm.try_acquire(2, 100, LockMode::Exclusive));
        lm.release_all(1);
        assert!(lm.try_acquire(2, 100, LockMode::Shared));
    }

    #[test]
    fn same_txn_reacquires_freely() {
        let lm = LockManager::new();
        assert!(lm.acquire(1, 5, LockMode::Shared));
        assert!(lm.acquire(1, 5, LockMode::Exclusive), "self-upgrade");
        assert!(lm.acquire(1, 5, LockMode::Shared));
        lm.release_all(1);
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn wait_die_kills_younger_requester() {
        let lm = LockManager::new();
        assert!(lm.acquire(1, 9, LockMode::Exclusive));
        // Txn 2 is younger than holder 1: dies instead of waiting.
        assert!(!lm.acquire(2, 9, LockMode::Exclusive));
        lm.release_all(1);
        assert!(lm.acquire(2, 9, LockMode::Exclusive));
    }

    #[test]
    fn older_requester_waits_for_release() {
        let lm = LockManager::new();
        assert!(lm.acquire(5, 7, LockMode::Exclusive));
        let lm2 = lm.clone();
        let acquired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&acquired);
        let handle = std::thread::spawn(move || {
            // Txn 3 is older than holder 5: blocks until release.
            assert!(lm2.acquire(3, 7, LockMode::Exclusive));
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!acquired.load(Ordering::SeqCst), "must still be blocked");
        lm.release_all(5);
        handle.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn release_all_is_idempotent_for_unknown_txn() {
        let lm = LockManager::new();
        lm.release_all(42);
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn independent_resources_do_not_interfere() {
        let lm = LockManager::new();
        assert!(lm.acquire(1, 1, LockMode::Exclusive));
        assert!(lm.acquire(2, 2, LockMode::Exclusive));
        assert_eq!(lm.locked_resources(), 2);
    }
}
