//! Baseline concurrency control: classic MVCC with per-record
//! timestamps, plus a 2PL lock manager.
//!
//! The paper's evaluation compares AOSI against "the expected overhead
//! of traditional MVCC approaches": **two 8-byte timestamps per
//! record** (`created_at`, `deleted_at`), the scheme used by Hekaton
//! and SAP HANA (Sections VI-A and VII). This crate implements that
//! baseline for real, so the benchmark harness can measure both the
//! analytic overhead (16 bytes x records) and an executable system:
//!
//! * [`MvccStore`] — an in-memory column store where every record
//!   carries a [`VersionMeta`]; supports the operations AOSI drops
//!   (in-place record updates and single-record deletes) under
//!   snapshot isolation with first-updater-wins conflict handling.
//! * [`MvccTxnManager`] — begin/commit/abort with commit-timestamp
//!   resolution.
//! * [`LockManager`] — a shared/exclusive lock table for the 2PL
//!   variant the paper contrasts in Section I.
//! * [`HiveAcidTable`] — the Hive-ACID related-work baseline
//!   (Section VII): one immutable delta file per transaction, merged
//!   at query time, compacted periodically, 2PL-locked.
//!
//! # Example
//!
//! ```
//! use columnar::{ColumnType, Field, Schema, Value};
//! use mvcc_baseline::{MvccStore, MvccTxnManager};
//!
//! let schema = Schema::new(vec![Field::new("v", ColumnType::I64)]);
//! let mut store = MvccStore::new(schema, MvccTxnManager::new());
//! let mut txn = store.manager().begin();
//! let row = store.insert(&mut txn, &vec![Value::I64(7)]);
//! store.commit(&mut txn).unwrap();
//!
//! // The operation AOSI drops — and this baseline pays for:
//! let mut updater = store.manager().begin();
//! store.update(&mut updater, row, &vec![Value::I64(9)]).unwrap();
//! store.commit(&mut updater).unwrap();
//! assert_eq!(store.version_count(), 2);       // version chain
//! assert!(store.metadata_bytes() >= 32);       // 16 B per version
//! ```
//!
//! The point of this crate is honest comparison, not feature parity:
//! it stores one version chain per logical record via
//! delete-plus-reinsert (the HANA model) and keeps scans columnar so
//! that the *only* structural difference from the AOSI path is the
//! per-record metadata and per-row visibility checks.

mod hive;
mod lock;
mod meta;
mod store;
mod txn;

pub use hive::{HiveAcidTable, HiveScanStats, RowId};
pub use lock::{LockManager, LockMode};
pub use meta::{VersionMeta, TXN_ID_BIT};
pub use store::{MvccScanStats, MvccStore};
pub use txn::{MvccError, MvccTxn, MvccTxnManager};
