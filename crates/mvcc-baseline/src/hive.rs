//! A Hive-ACID-style delta-file baseline (paper, Section VII).
//!
//! "Since HDFS does not support in-place changes to files, Hive's
//! concurrency control protocol works by creating a delta file per
//! transaction containing updates and deletes, and merging them at
//! query time to build the visible dataset. Periodically, smaller
//! deltas are merged together as well as deltas are merged into the
//! main files. Hive relies on Zookeeper to control shared and
//! exclusive distributed locks in a protocol similar to 2PL."
//!
//! This module reproduces that shape in memory: a base file, one
//! immutable delta per committed transaction, query-time merging, a
//! compaction pass, and the [`LockManager`](crate::LockManager)
//! standing in for ZooKeeper. The benchmark harness uses it to show
//! what query-time delta merging costs as deltas accumulate —
//! the behaviour AOSI's single-version layout avoids.

use std::collections::HashSet;

use columnar::{Bitmap, Row, Schema};

use crate::lock::{LockManager, LockMode};

/// Global row id: `(file, offset)` — base file is 0, delta `i` is
/// `i + 1`.
pub type RowId = (u32, u32);

#[derive(Debug, Default, Clone)]
struct DataFile {
    rows: Vec<Row>,
    /// Row ids (anywhere) this delta deletes.
    deletes: Vec<RowId>,
}

/// Counters describing one merged read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HiveScanStats {
    /// Delta files merged to build the view.
    pub deltas_merged: usize,
    /// Rows examined across base + deltas.
    pub rows_examined: u64,
    /// Rows visible after applying deletes.
    pub rows_visible: u64,
}

/// An ACID table in the Hive style.
pub struct HiveAcidTable {
    schema: Schema,
    base: DataFile,
    deltas: Vec<DataFile>,
    locks: LockManager,
    /// The lock-table resource id standing in for the table's
    /// ZooKeeper znode.
    lock_resource: u64,
    next_txn: u64,
}

impl HiveAcidTable {
    /// Empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        HiveAcidTable {
            schema,
            base: DataFile::default(),
            deltas: Vec::new(),
            locks: LockManager::new(),
            lock_resource: 1,
            next_txn: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of delta files awaiting compaction.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// Writes one transaction: its inserts and deletes become one new
    /// delta file, created under an exclusive table lock (Hive's
    /// write path).
    ///
    /// # Panics
    /// Panics if a row does not match the schema.
    pub fn write_txn(&mut self, inserts: Vec<Row>, deletes: Vec<RowId>) -> u64 {
        for row in &inserts {
            assert!(self.schema.validates(row), "row does not match schema");
        }
        self.next_txn += 1;
        let txn = self.next_txn;
        assert!(
            self.locks
                .acquire(txn, self.lock_resource, LockMode::Exclusive),
            "single-writer test harness never deadlocks"
        );
        self.deltas.push(DataFile {
            rows: inserts,
            deletes,
        });
        self.locks.release_all(txn);
        txn
    }

    /// Builds the visible dataset: walks base + every delta under a
    /// shared lock, applying all delete sets — the query-time merge
    /// the paper describes. Returns visible `(RowId, &Row)` pairs.
    pub fn read_merged(&mut self) -> (Vec<(RowId, &Row)>, HiveScanStats) {
        self.next_txn += 1;
        let txn = self.next_txn;
        assert!(self
            .locks
            .acquire(txn, self.lock_resource, LockMode::Shared));

        let mut deleted: HashSet<RowId> = HashSet::new();
        for delta in &self.deltas {
            deleted.extend(delta.deletes.iter().copied());
        }
        deleted.extend(self.base.deletes.iter().copied());

        let mut visible = Vec::new();
        let mut examined = 0u64;
        for (file_idx, file) in std::iter::once(&self.base).chain(&self.deltas).enumerate() {
            for (offset, row) in file.rows.iter().enumerate() {
                examined += 1;
                let id = (file_idx as u32, offset as u32);
                if !deleted.contains(&id) {
                    visible.push((id, row));
                }
            }
        }
        let stats = HiveScanStats {
            deltas_merged: self.deltas.len(),
            rows_examined: examined,
            rows_visible: visible.len() as u64,
        };
        self.locks.release_all(txn);
        (visible, stats)
    }

    /// Sums a numeric column over the merged view (the benchmark's
    /// aggregation shape).
    pub fn aggregate_sum(&mut self, column: usize) -> (f64, HiveScanStats) {
        let (rows, stats) = self.read_merged();
        let sum = rows
            .iter()
            .filter_map(|(_, row)| row[column].as_numeric())
            .sum();
        (sum, stats)
    }

    /// Major compaction: merges every delta into a new base file
    /// under an exclusive lock; row ids are re-assigned into the base
    /// file. Returns the number of deltas merged away.
    pub fn compact(&mut self) -> usize {
        self.next_txn += 1;
        let txn = self.next_txn;
        assert!(self
            .locks
            .acquire(txn, self.lock_resource, LockMode::Exclusive));
        let merged = self.deltas.len();

        let mut deleted: HashSet<RowId> = HashSet::new();
        for delta in &self.deltas {
            deleted.extend(delta.deletes.iter().copied());
        }
        deleted.extend(self.base.deletes.iter().copied());

        let mut new_base = DataFile::default();
        let old_deltas = std::mem::take(&mut self.deltas);
        for (file_idx, file) in std::iter::once(&self.base).chain(&old_deltas).enumerate() {
            for (offset, row) in file.rows.iter().enumerate() {
                if !deleted.contains(&(file_idx as u32, offset as u32)) {
                    new_base.rows.push(row.clone());
                }
            }
        }
        self.base = new_base;
        self.locks.release_all(txn);
        merged
    }

    /// An update in the Hive model: delete the old row id, insert the
    /// new version, in one delta.
    pub fn update(&mut self, old: RowId, new_row: Row) -> u64 {
        self.write_txn(vec![new_row], vec![old])
    }

    /// Builds a bitmap over the merged view (for apples-to-apples
    /// comparison with the other engines' scan outputs).
    pub fn visibility_bitmap(&mut self) -> Bitmap {
        let total: usize = std::iter::once(&self.base)
            .chain(&self.deltas)
            .map(|f| f.rows.len())
            .sum();
        let (rows, _) = self.read_merged();
        let ids: HashSet<RowId> = rows.iter().map(|&(id, _)| id).collect();
        let mut bitmap = Bitmap::new(total);
        let mut linear = 0usize;
        let files: Vec<(u32, usize)> = std::iter::once(&self.base)
            .chain(&self.deltas)
            .enumerate()
            .map(|(idx, f)| (idx as u32, f.rows.len()))
            .collect();
        for (file_idx, len) in files {
            for offset in 0..len {
                if ids.contains(&(file_idx, offset as u32)) {
                    bitmap.set(linear);
                }
                linear += 1;
            }
        }
        bitmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{ColumnType, Field, Value};

    fn table() -> HiveAcidTable {
        HiveAcidTable::new(Schema::new(vec![
            Field::new("k", ColumnType::I64),
            Field::new("v", ColumnType::I64),
        ]))
    }

    fn row(k: i64, v: i64) -> Row {
        vec![Value::I64(k), Value::I64(v)]
    }

    #[test]
    fn each_write_creates_one_delta() {
        let mut t = table();
        t.write_txn(vec![row(1, 10), row(2, 20)], vec![]);
        t.write_txn(vec![row(3, 30)], vec![]);
        assert_eq!(t.delta_count(), 2);
        let (sum, stats) = t.aggregate_sum(1);
        assert_eq!(sum, 60.0);
        assert_eq!(stats.deltas_merged, 2);
        assert_eq!(stats.rows_visible, 3);
    }

    #[test]
    fn deletes_in_later_deltas_mask_earlier_rows() {
        let mut t = table();
        t.write_txn(vec![row(1, 10), row(2, 20)], vec![]);
        // Delete row 0 of delta 1 (file id 1).
        t.write_txn(vec![row(3, 30)], vec![(1, 0)]);
        let (sum, stats) = t.aggregate_sum(1);
        assert_eq!(sum, 50.0);
        assert_eq!(stats.rows_visible, 2);
    }

    #[test]
    fn update_is_delete_plus_insert_delta() {
        let mut t = table();
        t.write_txn(vec![row(1, 10)], vec![]);
        t.update((1, 0), row(1, 99));
        let (sum, _) = t.aggregate_sum(1);
        assert_eq!(sum, 99.0);
        assert_eq!(t.delta_count(), 2);
    }

    #[test]
    fn compaction_folds_deltas_into_base() {
        let mut t = table();
        for i in 0..10 {
            t.write_txn(vec![row(i, i)], vec![]);
        }
        t.write_txn(vec![], vec![(1, 0), (2, 0)]); // delete rows 0 and 1
        let (before, stats) = t.aggregate_sum(1);
        assert_eq!(stats.deltas_merged, 11);
        let merged = t.compact();
        assert_eq!(merged, 11);
        assert_eq!(t.delta_count(), 0);
        let (after, stats) = t.aggregate_sum(1);
        assert_eq!(before, after, "compaction must not change the view");
        assert_eq!(stats.deltas_merged, 0);
        assert_eq!(stats.rows_examined, 8, "deleted rows physically gone");
    }

    #[test]
    fn visibility_bitmap_matches_merged_view() {
        let mut t = table();
        t.write_txn(vec![row(1, 1), row(2, 2)], vec![]);
        t.write_txn(vec![row(3, 3)], vec![(1, 1)]);
        let bm = t.visibility_bitmap();
        assert_eq!(bm.len(), 3);
        assert_eq!(bm.count_ones(), 2);
        assert!(bm.get(0) && !bm.get(1) && bm.get(2));
    }

    #[test]
    fn scan_cost_grows_with_delta_count() {
        // The structural point of the baseline: rows_examined stays
        // flat but the merge set grows per delta until compaction.
        let mut t = table();
        for i in 0..100 {
            t.write_txn(vec![row(i, 1)], vec![]);
        }
        let (_, stats) = t.aggregate_sum(1);
        assert_eq!(stats.deltas_merged, 100);
        t.compact();
        let (_, stats) = t.aggregate_sum(1);
        assert_eq!(stats.deltas_merged, 0);
        assert_eq!(stats.rows_visible, 100);
    }
}
