//! Typed append-only column vectors.
//!
//! AOSI "assumes that records are appended to these vectors in an
//! unordered and append-only manner, and that records can be
//! materialized by using the implicit ids on these vectors"
//! (Section III). A `Column` is exactly that: push-at-the-back only,
//! positional access, plus the bulk retain/truncate operations needed
//! by purge and rollback (which rebuild partitions rather than mutate
//! records in place).

use crate::bitmap::Bitmap;
use crate::schema::ColumnType;
use crate::value::Value;

/// One attribute of a partition, stored as a contiguous vector.
///
/// String columns store dictionary ids; the dictionary itself lives at
/// the cube level so ids are consistent across partitions.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Integer data.
    I64(Vec<i64>),
    /// Float data.
    F64(Vec<f64>),
    /// Dictionary ids for a string column.
    Str(Vec<u32>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(column_type: ColumnType) -> Self {
        match column_type {
            ColumnType::I64 => Column::I64(Vec::new()),
            ColumnType::F64 => Column::F64(Vec::new()),
            ColumnType::Str => Column::Str(Vec::new()),
        }
    }

    /// Creates an empty column with reserved capacity.
    pub fn with_capacity(column_type: ColumnType, capacity: usize) -> Self {
        match column_type {
            ColumnType::I64 => Column::I64(Vec::with_capacity(capacity)),
            ColumnType::F64 => Column::F64(Vec::with_capacity(capacity)),
            ColumnType::Str => Column::Str(Vec::with_capacity(capacity)),
        }
    }

    /// The column's physical type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::I64(_) => ColumnType::I64,
            Column::F64(_) => ColumnType::F64,
            Column::Str(_) => ColumnType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// `true` if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an integer row.
    ///
    /// # Panics
    /// Panics if the column is not `I64`.
    pub fn push_i64(&mut self, v: i64) {
        match self {
            Column::I64(vec) => vec.push(v),
            other => panic!("push_i64 on {:?} column", other.column_type()),
        }
    }

    /// Appends a float row.
    ///
    /// # Panics
    /// Panics if the column is not `F64`.
    pub fn push_f64(&mut self, v: f64) {
        match self {
            Column::F64(vec) => vec.push(v),
            other => panic!("push_f64 on {:?} column", other.column_type()),
        }
    }

    /// Appends a dictionary id row.
    ///
    /// # Panics
    /// Panics if the column is not `Str`.
    pub fn push_str_id(&mut self, id: u32) {
        match self {
            Column::Str(vec) => vec.push(id),
            other => panic!("push_str_id on {:?} column", other.column_type()),
        }
    }

    /// Positional integer read.
    pub fn get_i64(&self, idx: usize) -> Option<i64> {
        match self {
            Column::I64(v) => v.get(idx).copied(),
            _ => None,
        }
    }

    /// Positional float read.
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        match self {
            Column::F64(v) => v.get(idx).copied(),
            _ => None,
        }
    }

    /// Positional dictionary-id read.
    pub fn get_str_id(&self, idx: usize) -> Option<u32> {
        match self {
            Column::Str(v) => v.get(idx).copied(),
            _ => None,
        }
    }

    /// Positional read widened to `f64` (numeric columns only).
    pub fn get_numeric(&self, idx: usize) -> Option<f64> {
        match self {
            Column::I64(v) => v.get(idx).map(|&x| x as f64),
            Column::F64(v) => v.get(idx).copied(),
            Column::Str(_) => None,
        }
    }

    /// The integer payload as a contiguous slice, if this is an `I64`
    /// column — vectorized kernels consume whole slices instead of
    /// dispatching `get_numeric` per row.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The float payload as a contiguous slice, if this is an `F64`
    /// column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary-id payload as a contiguous slice, if this is a
    /// `Str` column.
    pub fn as_str_id_slice(&self) -> Option<&[u32]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Appends a [`Value`] row; returns `false` on type mismatch.
    ///
    /// String values must be pre-encoded — use [`Column::push_str_id`]
    /// for string columns; this method rejects `Value::Str`.
    pub fn push_value(&mut self, value: &Value) -> bool {
        match (self, value) {
            (Column::I64(vec), Value::I64(v)) => {
                vec.push(*v);
                true
            }
            (Column::F64(vec), Value::F64(v)) => {
                vec.push(*v);
                true
            }
            _ => false,
        }
    }

    /// Builds a new column keeping only the rows whose bit is set in
    /// `keep`. Used by purge (apply deletes) and rollback (drop an
    /// aborted transaction's rows) — both rebuild rather than mutate.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.len()`.
    pub fn retain_by_bitmap(&self, keep: &Bitmap) -> Column {
        assert_eq!(keep.len(), self.len(), "bitmap/column length mismatch");
        fn filter<T: Copy>(data: &[T], keep: &Bitmap) -> Vec<T> {
            let mut out = Vec::with_capacity(keep.count_ones());
            out.extend(keep.iter_ones().map(|i| data[i]));
            out
        }
        match self {
            Column::I64(v) => Column::I64(filter(v, keep)),
            Column::F64(v) => Column::F64(filter(v, keep)),
            Column::Str(v) => Column::Str(filter(v, keep)),
        }
    }

    /// Drops all rows at positions `>= len` (rollback of a suffix).
    pub fn truncate(&mut self, len: usize) {
        match self {
            Column::I64(v) => v.truncate(len),
            Column::F64(v) => v.truncate(len),
            Column::Str(v) => v.truncate(len),
        }
    }

    /// Heap bytes used by the row payload.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::I64(v) => v.capacity() * std::mem::size_of::<i64>(),
            Column::F64(v) => v.capacity() * std::mem::size_of::<f64>(),
            Column::Str(v) => v.capacity() * std::mem::size_of::<u32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_each_type() {
        let mut c = Column::new(ColumnType::I64);
        c.push_i64(5);
        c.push_i64(-1);
        assert_eq!(c.get_i64(1), Some(-1));
        assert_eq!(c.get_f64(0), None);

        let mut f = Column::new(ColumnType::F64);
        f.push_f64(2.5);
        assert_eq!(f.get_f64(0), Some(2.5));

        let mut s = Column::new(ColumnType::Str);
        s.push_str_id(7);
        assert_eq!(s.get_str_id(0), Some(7));
        assert_eq!(s.get_numeric(0), None);
    }

    #[test]
    fn get_numeric_widens_ints() {
        let mut c = Column::new(ColumnType::I64);
        c.push_i64(4);
        assert_eq!(c.get_numeric(0), Some(4.0));
    }

    #[test]
    fn slice_accessors_expose_only_the_matching_type() {
        let mut i = Column::new(ColumnType::I64);
        i.push_i64(3);
        assert_eq!(i.as_i64_slice(), Some(&[3i64][..]));
        assert_eq!(i.as_f64_slice(), None);
        assert_eq!(i.as_str_id_slice(), None);
        let mut f = Column::new(ColumnType::F64);
        f.push_f64(0.5);
        assert_eq!(f.as_f64_slice(), Some(&[0.5f64][..]));
        assert_eq!(f.as_i64_slice(), None);
        let mut s = Column::new(ColumnType::Str);
        s.push_str_id(9);
        assert_eq!(s.as_str_id_slice(), Some(&[9u32][..]));
        assert_eq!(s.as_f64_slice(), None);
    }

    #[test]
    #[should_panic(expected = "push_i64")]
    fn typed_push_on_wrong_column_panics() {
        let mut c = Column::new(ColumnType::F64);
        c.push_i64(1);
    }

    #[test]
    fn push_value_checks_type() {
        let mut c = Column::new(ColumnType::I64);
        assert!(c.push_value(&Value::I64(1)));
        assert!(!c.push_value(&Value::F64(1.0)));
        assert!(!c.push_value(&Value::Str("x".into())));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn retain_by_bitmap_filters_rows() {
        let mut c = Column::new(ColumnType::I64);
        for i in 0..10 {
            c.push_i64(i);
        }
        let mut keep = Bitmap::new(10);
        keep.set_range(2, 5);
        keep.set(9);
        let filtered = c.retain_by_bitmap(&keep);
        assert_eq!(filtered, Column::I64(vec![2, 3, 4, 9]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn retain_with_wrong_length_panics() {
        let c = Column::new(ColumnType::I64);
        c.retain_by_bitmap(&Bitmap::new(3));
    }

    #[test]
    fn truncate_drops_suffix() {
        let mut c = Column::new(ColumnType::Str);
        for i in 0..5 {
            c.push_str_id(i);
        }
        c.truncate(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_str_id(1), Some(1));
    }

    #[test]
    fn heap_bytes_reflects_capacity() {
        let c = Column::with_capacity(ColumnType::I64, 100);
        assert!(c.heap_bytes() >= 800);
    }
}
