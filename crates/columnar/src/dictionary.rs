//! Order-of-arrival dictionary encoding for string columns.
//!
//! Cubrick maintains "an auxiliary map ... associated to each string
//! column in order to dictionary encode all string values into a more
//! compact representation", encoding each distinct string "to a
//! monotonically increasing counter" (Section V-A). This keeps the
//! aggregation engine purely numeric.

use std::collections::HashMap;

/// A bidirectional string ↔ id mapping.
///
/// Ids are dense and assigned in first-seen order starting at zero, so
/// they double as indexes into the reverse table.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    forward: HashMap<String, u32>,
    reverse: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, inserting it if unseen.
    pub fn encode(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.forward.get(s) {
            return id;
        }
        let id = u32::try_from(self.reverse.len()).expect("dictionary overflow: > u32::MAX keys");
        self.forward.insert(s.to_owned(), id);
        self.reverse.push(s.to_owned());
        id
    }

    /// Returns the id for `s` without inserting.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.forward.get(s).copied()
    }

    /// Returns the string for `id`.
    pub fn decode(&self, id: u32) -> Option<&str> {
        self.reverse.get(id as usize).map(String::as_str)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// The strings with ids `>= start`, in id order — the incremental
    /// slice a flush round persists so recovery can rebuild the
    /// dictionary with identical ids.
    pub fn entries_from(&self, start: u32) -> Vec<String> {
        self.reverse
            .get(start as usize..)
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// `true` if no string has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Approximate heap bytes used by the dictionary.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.reverse.iter().map(|s| s.capacity() * 2).sum();
        let map_entries = self.forward.capacity() * (std::mem::size_of::<(String, u32)>() + 8);
        let vec = self.reverse.capacity() * std::mem::size_of::<String>();
        strings + map_entries + vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_assigns_dense_first_seen_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("us"), 0);
        assert_eq!(d.encode("br"), 1);
        assert_eq!(d.encode("us"), 0);
        assert_eq!(d.encode("mx"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_reverses_encode() {
        let mut d = Dictionary::new();
        let id = d.encode("hello");
        assert_eq!(d.decode(id), Some("hello"));
        assert_eq!(d.decode(id + 1), None);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.lookup("a"), None);
        assert!(d.is_empty());
        d.encode("a");
        assert_eq!(d.lookup("a"), Some(0));
    }

    #[test]
    fn entries_from_returns_incremental_slices() {
        let mut d = Dictionary::new();
        d.encode("a");
        d.encode("b");
        d.encode("c");
        assert_eq!(d.entries_from(0), vec!["a", "b", "c"]);
        assert_eq!(d.entries_from(2), vec!["c"]);
        assert!(d.entries_from(3).is_empty());
        assert!(d.entries_from(99).is_empty());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut d = Dictionary::new();
        let empty = d.heap_bytes();
        for i in 0..100 {
            d.encode(&format!("value-{i}"));
        }
        assert!(d.heap_bytes() > empty);
    }
}
