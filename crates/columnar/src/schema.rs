//! Minimal schema metadata shared across the workspace.

use crate::value::Value;

/// Physical type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    I64,
    /// 64-bit float.
    F64,
    /// Dictionary-encoded string.
    Str,
}

impl ColumnType {
    /// `true` if a [`Value`] is storable in a column of this type.
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (ColumnType::I64, Value::I64(_))
                | (ColumnType::F64, Value::F64(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Physical type.
    pub column_type: ColumnType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        Field {
            name: name.into(),
            column_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name {:?}",
                f.name
            );
        }
        Schema { fields }
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the field called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Validates that `row` matches the schema arity and types.
    pub fn validates(&self, row: &[Value]) -> bool {
        row.len() == self.fields.len()
            && row
                .iter()
                .zip(&self.fields)
                .all(|(v, f)| f.column_type.accepts(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("region", ColumnType::Str),
            Field::new("likes", ColumnType::I64),
            Field::new("score", ColumnType::F64),
        ])
    }

    #[test]
    fn index_of_finds_fields() {
        let s = sample();
        assert_eq!(s.index_of("region"), Some(0));
        assert_eq!(s.index_of("score"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            Field::new("a", ColumnType::I64),
            Field::new("a", ColumnType::F64),
        ]);
    }

    #[test]
    fn validates_checks_arity_and_types() {
        let s = sample();
        assert!(s.validates(&[Value::from("us"), Value::from(3i64), Value::from(0.5)]));
        assert!(!s.validates(&[Value::from("us"), Value::from(3i64)]));
        assert!(!s.validates(&[Value::from(1i64), Value::from(3i64), Value::from(0.5)]));
    }

    #[test]
    fn accepts_matches_types() {
        assert!(ColumnType::I64.accepts(&Value::I64(1)));
        assert!(!ColumnType::I64.accepts(&Value::F64(1.0)));
        assert!(ColumnType::Str.accepts(&Value::Str("x".into())));
    }
}
