//! Columnar storage substrate for the AOSI reproduction.
//!
//! The AOSI protocol (see the `aosi` crate) assumes the underlying
//! engine is column-oriented: every attribute of a record lives in its
//! own append-only vector, records are addressed by their implicit
//! vector index, and scans are driven by per-partition *bitmaps* that
//! mark which row positions a transaction is allowed to see.
//!
//! This crate provides those building blocks:
//!
//! * [`BessVector`] — the paper's bit-packed multi-dimension
//!   encoding (footnote 3): all dimension coordinates of a record
//!   packed into one bit stream.
//! * [`Bitmap`] — a dense, word-packed scan mask with the bulk
//!   set/clear-range operations the AOSI visibility pass needs.
//! * [`Column`] — a typed, append-only column vector (`i64`, `f64`,
//!   dictionary-encoded strings).
//! * [`Dictionary`] — order-of-arrival dictionary encoding for string
//!   columns, as used by Cubrick (Section V-A of the paper).
//! * [`Schema`] / [`ColumnType`] — minimal schema metadata shared by
//!   the engine, the baselines, and the workload generators.
//! * [`Value`] / [`Row`] — row-wise record representation used at the
//!   ingestion boundary before records are shredded into columns.

mod bess;
mod bitmap;
mod column;
mod dictionary;
mod schema;
mod value;

pub use bess::BessVector;
pub use bitmap::{Bitmap, OnesCursor};
pub use column::Column;
pub use dictionary::Dictionary;
pub use schema::{ColumnType, Field, Schema};
pub use value::{Row, Value};
