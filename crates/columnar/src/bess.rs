//! Bit-packed dimension storage ("bess").
//!
//! Cubrick's bricks do not actually keep one vector per dimension:
//! "in reality all dimension columns are packed together and encoded
//! in a single vector called *bess*" (paper, footnote 3). Each
//! dimension contributes `ceil(log2(cardinality))` bits; a record's
//! coordinates are the concatenation of those fields, and records are
//! laid out back to back in a single bit stream.
//!
//! Compared to one `Vec<u32>` per dimension this trades a little
//! decode work for a large footprint cut when cardinalities are small
//! (a cardinality-8 dimension needs 3 bits instead of 32).

/// A row-major bit-packed vector of dimension coordinates.
///
/// ```
/// use columnar::BessVector;
/// // cardinalities 8 and 256: 3 + 8 = 11 bits per record.
/// let mut bess = BessVector::new(&[8, 256]);
/// assert_eq!(bess.bits_per_row(), 11);
/// bess.push(&[5, 200]);
/// assert_eq!(bess.get(0, 0), 5);
/// assert_eq!(bess.get(0, 1), 200);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BessVector {
    words: Vec<u64>,
    /// `(bit offset within a row, width)` per dimension.
    fields: Vec<(u32, u32)>,
    bits_per_row: u32,
    rows: usize,
}

fn width_for_cardinality(cardinality: u32) -> u32 {
    debug_assert!(cardinality >= 1);
    if cardinality <= 1 {
        1
    } else {
        32 - (cardinality - 1).leading_zeros()
    }
}

impl BessVector {
    /// Builds an empty bess vector for dimensions with the given
    /// cardinalities.
    ///
    /// # Panics
    /// Panics if `cardinalities` is empty or contains zero.
    pub fn new(cardinalities: &[u32]) -> Self {
        assert!(
            !cardinalities.is_empty(),
            "bess needs at least one dimension"
        );
        let mut offset = 0u32;
        let fields = cardinalities
            .iter()
            .map(|&card| {
                assert!(card >= 1, "zero cardinality");
                let width = width_for_cardinality(card);
                let field = (offset, width);
                offset += width;
                field
            })
            .collect();
        BessVector {
            words: Vec::new(),
            fields,
            bits_per_row: offset,
            rows: 0,
        }
    }

    /// Number of dimensions per record.
    pub fn num_dims(&self) -> usize {
        self.fields.len()
    }

    /// Bits one record occupies.
    pub fn bits_per_row(&self) -> u32 {
        self.bits_per_row
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends one record's coordinates.
    ///
    /// # Panics
    /// Panics (debug) if a coordinate does not fit its field width —
    /// the ingest pipeline validates cardinalities beforehand.
    pub fn push(&mut self, coords: &[u32]) {
        debug_assert_eq!(coords.len(), self.fields.len());
        let row_base = self.rows as u64 * self.bits_per_row as u64;
        let end_word = ((row_base + self.bits_per_row as u64).div_ceil(64)) as usize;
        if self.words.len() < end_word {
            self.words.resize(end_word, 0);
        }
        for (dim, &coord) in coords.iter().enumerate() {
            let (offset, width) = self.fields[dim];
            debug_assert!(
                width == 64 || (coord as u64) < (1u64 << width),
                "coordinate {coord} exceeds {width}-bit field"
            );
            self.set_bits(row_base + offset as u64, width, coord as u64);
        }
        self.rows += 1;
    }

    /// Reads the coordinate of `dim` at `row`.
    ///
    /// # Panics
    /// Panics if `row` or `dim` is out of range.
    #[inline]
    pub fn get(&self, row: usize, dim: usize) -> u32 {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let (offset, width) = self.fields[dim];
        let bit = row as u64 * self.bits_per_row as u64 + offset as u64;
        self.get_bits(bit, width) as u32
    }

    /// Decodes a whole record into `out` (resized as needed).
    pub fn materialize(&self, row: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.fields.len()).map(|dim| self.get(row, dim)));
    }

    /// Decodes the coordinate of `dim` for every row id in `rows`
    /// into `out` (cleared first) — the bulk gather scan kernels use
    /// on bess-packed bricks, where no per-dimension slice exists.
    /// The field geometry is resolved once instead of per row.
    ///
    /// # Panics
    /// Panics if `dim` or any row id is out of range.
    pub fn gather_dim(&self, dim: usize, rows: &[u32], out: &mut Vec<u32>) {
        let (offset, width) = self.fields[dim];
        out.clear();
        out.reserve(rows.len());
        for &row in rows {
            assert!(
                (row as usize) < self.rows,
                "row {row} out of range {}",
                self.rows
            );
            let bit = u64::from(row) * u64::from(self.bits_per_row) + u64::from(offset);
            out.push(self.get_bits(bit, width) as u32);
        }
    }

    /// Rebuilds the vector keeping only the rows whose bit is set in
    /// `keep` (purge/rollback path).
    ///
    /// # Panics
    /// Panics if `keep.len() != self.len()`.
    pub fn retain_by_bitmap(&self, keep: &crate::bitmap::Bitmap) -> BessVector {
        assert_eq!(keep.len(), self.rows, "bitmap/bess length mismatch");
        let mut out = BessVector {
            words: Vec::new(),
            fields: self.fields.clone(),
            bits_per_row: self.bits_per_row,
            rows: 0,
        };
        let mut coords = Vec::with_capacity(self.fields.len());
        for row in keep.iter_ones() {
            self.materialize(row, &mut coords);
            out.push(&coords);
        }
        out
    }

    /// Heap bytes owned by this vector: the packed words plus the
    /// per-dimension field table. The table is small (8 bytes per
    /// dimension) but real — eviction budgets that relied on this
    /// accounting would otherwise undercount every bess brick.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
            + self.fields.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    fn set_bits(&mut self, bit: u64, width: u32, value: u64) {
        let word = (bit / 64) as usize;
        let shift = (bit % 64) as u32;
        let mask = if width == 64 {
            !0u64
        } else {
            (1u64 << width) - 1
        };
        self.words[word] |= (value & mask) << shift;
        let spill = shift + width;
        if spill > 64 {
            self.words[word + 1] |= (value & mask) >> (64 - shift);
        }
    }

    fn get_bits(&self, bit: u64, width: u32) -> u64 {
        let word = (bit / 64) as usize;
        let shift = (bit % 64) as u32;
        let mask = if width == 64 {
            !0u64
        } else {
            (1u64 << width) - 1
        };
        let mut value = self.words[word] >> shift;
        let spill = shift + width;
        if spill > 64 {
            value |= self.words[word + 1] << (64 - shift);
        }
        value & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    #[test]
    fn width_matches_cardinality() {
        assert_eq!(width_for_cardinality(1), 1);
        assert_eq!(width_for_cardinality(2), 1);
        assert_eq!(width_for_cardinality(3), 2);
        assert_eq!(width_for_cardinality(4), 2);
        assert_eq!(width_for_cardinality(5), 3);
        assert_eq!(width_for_cardinality(256), 8);
        assert_eq!(width_for_cardinality(257), 9);
        assert_eq!(width_for_cardinality(u32::MAX), 32);
    }

    #[test]
    fn push_get_roundtrip() {
        let mut bess = BessVector::new(&[4, 256, 2]);
        assert_eq!(bess.bits_per_row(), 2 + 8 + 1);
        bess.push(&[3, 200, 1]);
        bess.push(&[0, 0, 0]);
        bess.push(&[2, 255, 1]);
        assert_eq!(bess.len(), 3);
        assert_eq!(bess.get(0, 0), 3);
        assert_eq!(bess.get(0, 1), 200);
        assert_eq!(bess.get(0, 2), 1);
        assert_eq!(bess.get(1, 1), 0);
        assert_eq!(bess.get(2, 1), 255);
    }

    #[test]
    fn rows_straddle_word_boundaries() {
        // 11 bits per row: rows regularly cross u64 boundaries.
        let mut bess = BessVector::new(&[1024, 2]);
        let values: Vec<(u32, u32)> = (0..200).map(|i| (i * 5 % 1024, i % 2)).collect();
        for &(a, b) in &values {
            bess.push(&[a, b]);
        }
        for (row, &(a, b)) in values.iter().enumerate() {
            assert_eq!(bess.get(row, 0), a, "row {row}");
            assert_eq!(bess.get(row, 1), b, "row {row}");
        }
    }

    #[test]
    fn wide_fields_spanning_words() {
        // 3 x 21-bit fields = 63 bits/row: the second row's fields
        // split across words.
        let card = 1 << 21;
        let mut bess = BessVector::new(&[card, card, card]);
        for i in 0..50u32 {
            bess.push(&[i * 41_943, (card - 1) - i, i]);
        }
        for i in 0..50u32 {
            assert_eq!(bess.get(i as usize, 0), i * 41_943);
            assert_eq!(bess.get(i as usize, 1), (card - 1) - i);
            assert_eq!(bess.get(i as usize, 2), i);
        }
    }

    #[test]
    fn gather_dim_matches_per_row_get() {
        let mut bess = BessVector::new(&[8, 1024, 2]);
        for i in 0..300u32 {
            bess.push(&[i % 8, i * 7 % 1024, i % 2]);
        }
        let rows: Vec<u32> = (0..300).step_by(7).collect();
        let mut out = Vec::new();
        for dim in 0..3 {
            bess.gather_dim(dim, &rows, &mut out);
            let expected: Vec<u32> = rows.iter().map(|&r| bess.get(r as usize, dim)).collect();
            assert_eq!(out, expected, "dim {dim}");
        }
        bess.gather_dim(0, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_dim_out_of_range_panics() {
        let mut bess = BessVector::new(&[4]);
        bess.push(&[1]);
        let mut out = Vec::new();
        bess.gather_dim(0, &[1], &mut out);
    }

    #[test]
    fn materialize_decodes_full_records() {
        let mut bess = BessVector::new(&[8, 8]);
        bess.push(&[5, 7]);
        let mut out = Vec::new();
        bess.materialize(0, &mut out);
        assert_eq!(out, vec![5, 7]);
    }

    #[test]
    fn retain_by_bitmap_keeps_selected_rows() {
        let mut bess = BessVector::new(&[16]);
        for i in 0..10u32 {
            bess.push(&[i]);
        }
        let mut keep = Bitmap::new(10);
        keep.set(1);
        keep.set(8);
        let filtered = bess.retain_by_bitmap(&keep);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.get(0, 0), 1);
        assert_eq!(filtered.get(1, 0), 8);
    }

    #[test]
    fn packs_far_tighter_than_u32_columns() {
        let mut bess = BessVector::new(&[8, 4, 64, 24, 256]);
        for i in 0..10_000u32 {
            bess.push(&[i % 8, i % 4, i % 64, i % 24, i % 256]);
        }
        // 3+2+6+5+8 = 24 bits vs 5 x 32 = 160 bits per row.
        let plain_bytes = 10_000 * 5 * 4;
        assert!(bess.heap_bytes() * 5 < plain_bytes);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bess = BessVector::new(&[4]);
        bess.get(0, 0);
    }

    #[test]
    fn heap_bytes_counts_the_field_table_too() {
        // A rowless 40-dimension vector owns no packed words yet, but
        // its field table (8 bytes per dimension) is heap all the
        // same; heap_bytes used to report 0 here, undercounting every
        // bess brick by 8 B x dims.
        let empty = BessVector::new(&vec![4u32; 40]);
        assert!(
            empty.heap_bytes() >= 40 * std::mem::size_of::<(u32, u32)>(),
            "field table uncounted: {}",
            empty.heap_bytes()
        );

        // With rows, both parts must be present: at least the packed
        // bits plus the table.
        let mut filled = BessVector::new(&[8, 256]);
        for i in 0..1000u32 {
            filled.push(&[i % 8, i % 256]);
        }
        let min_words = (filled.bits_per_row() as usize * 1000).div_ceil(64);
        assert!(
            filled.heap_bytes() >= min_words * 8 + 2 * std::mem::size_of::<(u32, u32)>(),
            "words or table uncounted: {}",
            filled.heap_bytes()
        );
    }

    #[test]
    fn cardinality_one_dimension_works() {
        let mut bess = BessVector::new(&[1, 5]);
        bess.push(&[0, 4]);
        assert_eq!(bess.get(0, 0), 0);
        assert_eq!(bess.get(0, 1), 4);
    }
}
