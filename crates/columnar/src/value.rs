//! Row-wise record representation used at the ingestion boundary.
//!
//! Records enter the system row-wise (a load request carries batches
//! of rows) and are shredded into columns by the ingestion pipeline.
//! `Value` is deliberately small: Cubrick's data model only needs
//! integers, floats, and dictionary-encodable strings (Section V-A).

use std::fmt;

/// A single cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (dimension coordinate or integer metric).
    I64(i64),
    /// 64-bit float metric.
    F64(f64),
    /// String dimension/metric; dictionary-encoded on ingestion.
    Str(String),
}

impl Value {
    /// Returns the integer payload, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric payload widened to `f64` (used by aggregations).
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One record, ordered by schema field position.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::I64(7).as_i64(), Some(7));
        assert_eq!(Value::I64(7).as_f64(), None);
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_i64(), None);
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::I64(3).as_numeric(), Some(3.0));
        assert_eq!(Value::F64(2.5).as_numeric(), Some(2.5));
        assert_eq!(Value::Str("a".into()).as_numeric(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::I64(4));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::I64(-2).to_string(), "-2");
        assert_eq!(Value::Str("us".into()).to_string(), "us");
    }
}
