//! Dense word-packed bitmaps used as scan masks.
//!
//! Column-oriented scans in the paper carry "a bitmap containing one
//! bit per row, dictating whether a particular value should be
//! considered by the scan or skipped" (Section III-C3). The AOSI
//! visibility pass builds these bitmaps from the epochs vector; filter
//! evaluation then ANDs additional predicates into the same mask.
//!
//! The operations the visibility pass needs are bulk range operations
//! (set a contiguous run of rows inserted by one transaction, clear
//! everything below a delete point), so those are first-class here and
//! operate a word at a time.

const WORD_BITS: usize = 64;

/// A fixed-length bitmap with one bit per row position.
///
/// Bits are indexed from zero. All range operations take half-open
/// `start..end` ranges, matching the implicit record-id ranges stored
/// in the AOSI epochs vector.
///
/// ```
/// use columnar::Bitmap;
/// let mut visible = Bitmap::new(10);
/// visible.set_range(0, 4);      // a transaction's run of rows
/// visible.clear_range(0, 2);    // a delete cleanup pass
/// assert_eq!(visible.to_bit_string(), "0011000000");
/// assert_eq!(visible.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all one.
    pub fn new_set(len: usize) -> Self {
        let mut bm = Bitmap::new(len);
        bm.set_range(0, len);
        bm
    }

    /// Number of bit positions (rows) covered by this bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] & (1u64 << (idx % WORD_BITS)) != 0
    }

    /// Sets the bit at `idx` to one.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clears the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Sets all bits in `start..end` to one, a word at a time.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len()`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        self.for_each_word_in_range(start, end, |word, mask| *word |= mask);
    }

    /// Clears all bits in `start..end`, a word at a time.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len()`.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        self.for_each_word_in_range(start, end, |word, mask| *word &= !mask);
    }

    fn for_each_word_in_range(
        &mut self,
        start: usize,
        end: usize,
        mut apply: impl FnMut(&mut u64, u64),
    ) {
        assert!(start <= end, "range start {start} > end {end}");
        assert!(end <= self.len, "range end {end} out of range {}", self.len);
        if start == end {
            return;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        let first_mask = !0u64 << (start % WORD_BITS);
        // end is exclusive; `end % 64 == 0` means the final word is fully covered.
        let last_mask = match end % WORD_BITS {
            0 => !0u64,
            rem => !0u64 >> (WORD_BITS - rem),
        };
        if first_word == last_word {
            apply(&mut self.words[first_word], first_mask & last_mask);
            return;
        }
        apply(&mut self.words[first_word], first_mask);
        for word in &mut self.words[first_word + 1..last_word] {
            apply(word, !0u64);
        }
        apply(&mut self.words[last_word], last_mask);
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn and(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= *o;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps have different lengths.
    pub fn or(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= *o;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits within `start..end`.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len()`.
    pub fn count_ones_in_range(&self, start: usize, end: usize) -> usize {
        assert!(start <= end, "range start {start} > end {end}");
        assert!(end <= self.len, "range end {end} out of range {}", self.len);
        if start == end {
            return 0;
        }
        let first_word = start / WORD_BITS;
        let last_word = (end - 1) / WORD_BITS;
        let first_mask = !0u64 << (start % WORD_BITS);
        let last_mask = match end % WORD_BITS {
            0 => !0u64,
            rem => !0u64 >> (WORD_BITS - rem),
        };
        if first_word == last_word {
            return (self.words[first_word] & first_mask & last_mask).count_ones() as usize;
        }
        let mut total = (self.words[first_word] & first_mask).count_ones() as usize;
        for word in &self.words[first_word + 1..last_word] {
            total += word.count_ones() as usize;
        }
        total + (self.words[last_word] & last_mask).count_ones() as usize
    }

    /// `true` if no bit is set.
    pub fn is_all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the indexes of set bits, in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi * WORD_BITS;
            BitIter { word }.map(move |b| base + b)
        })
    }

    /// Appends the index of every set bit to `out` (cleared first),
    /// ascending — the bulk form of [`Bitmap::iter_ones`] scan kernels
    /// use to materialize a whole selection vector at once.
    pub fn collect_ones(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.count_ones());
        self.ones_cursor().next_chunk(out, usize::MAX);
    }

    /// A resumable cursor over the set-bit indexes, yielding them in
    /// ascending order one bounded chunk at a time. This is how scan
    /// kernels turn a visibility bitmap into cache-resident selection
    /// vectors without materializing all rows up front.
    pub fn ones_cursor(&self) -> OnesCursor<'_> {
        OnesCursor {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Heap bytes used by the bitmap payload.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Renders the bitmap as a `0`/`1` string, lowest index first.
    ///
    /// This matches the presentation of Table III in the paper and is
    /// used by tests that reproduce it.
    pub fn to_bit_string(&self) -> String {
        (0..self.len)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }

    /// Parses a `0`/`1` string into a bitmap (lowest index first).
    ///
    /// # Panics
    /// Panics on characters other than `0`/`1`.
    pub fn from_bit_string(s: &str) -> Self {
        let mut bm = Bitmap::new(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => bm.set(i),
                '0' => {}
                other => panic!("invalid bitmap character {other:?}"),
            }
        }
        bm
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap({})", self.to_bit_string())
    }
}

/// Chunked materializer over a bitmap's set bits (see
/// [`Bitmap::ones_cursor`]). Bits beyond the bitmap's length are
/// never set, so the cursor needs no length mask.
pub struct OnesCursor<'a> {
    words: &'a [u64],
    word_idx: usize,
    /// Unconsumed bits of `words[word_idx]`.
    current: u64,
}

impl OnesCursor<'_> {
    /// Fills `out` (cleared first) with up to `max` further set-bit
    /// indexes, ascending. Returns the number produced; `0` means the
    /// cursor is exhausted.
    pub fn next_chunk(&mut self, out: &mut Vec<u32>, max: usize) -> usize {
        out.clear();
        if self.word_idx >= self.words.len() {
            return 0;
        }
        loop {
            let base = (self.word_idx * WORD_BITS) as u32;
            while self.current != 0 {
                if out.len() == max {
                    return out.len();
                }
                out.push(base + self.current.trailing_zeros());
                self.current &= self.current - 1;
            }
            self.word_idx += 1;
            match self.words.get(self.word_idx) {
                Some(&word) => self.current = word,
                None => return out.len(),
            }
        }
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert!(bm.is_all_zero());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn new_set_is_all_ones() {
        let bm = Bitmap::new_set(130);
        assert_eq!(bm.count_ones(), 130);
        assert!(bm.get(0));
        assert!(bm.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1) && !bm.get(65));
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn set_range_within_one_word() {
        let mut bm = Bitmap::new(64);
        bm.set_range(3, 7);
        assert_eq!(bm.count_ones(), 4);
        assert!(!bm.get(2) && bm.get(3) && bm.get(6) && !bm.get(7));
    }

    #[test]
    fn set_range_spanning_words() {
        let mut bm = Bitmap::new(200);
        bm.set_range(60, 140);
        assert_eq!(bm.count_ones(), 80);
        assert!(!bm.get(59) && bm.get(60) && bm.get(139) && !bm.get(140));
    }

    #[test]
    fn set_range_word_aligned_end() {
        let mut bm = Bitmap::new(128);
        bm.set_range(0, 128);
        assert_eq!(bm.count_ones(), 128);
        bm.clear_range(64, 128);
        assert_eq!(bm.count_ones(), 64);
        assert!(bm.get(63) && !bm.get(64));
    }

    #[test]
    fn empty_range_is_noop() {
        let mut bm = Bitmap::new(10);
        bm.set_range(5, 5);
        assert!(bm.is_all_zero());
    }

    #[test]
    fn clear_range_spanning_words() {
        let mut bm = Bitmap::new_set(300);
        bm.clear_range(10, 290);
        assert_eq!(bm.count_ones(), 20);
        assert!(bm.get(9) && !bm.get(10) && !bm.get(289) && bm.get(290));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bm = Bitmap::new(8);
        bm.set(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_end_out_of_range_panics() {
        let mut bm = Bitmap::new(8);
        bm.set_range(0, 9);
    }

    #[test]
    fn count_ones_in_range_matches_manual_count() {
        let mut bm = Bitmap::new(300);
        for i in (0..300).step_by(3) {
            bm.set(i);
        }
        for (start, end) in [
            (0, 300),
            (0, 0),
            (5, 5),
            (1, 64),
            (63, 65),
            (60, 200),
            (128, 192),
        ] {
            let expected = (start..end).filter(|&i| bm.get(i)).count();
            assert_eq!(
                bm.count_ones_in_range(start, end),
                expected,
                "range {start}..{end}"
            );
        }
    }

    #[test]
    fn and_or_combine() {
        let mut a = Bitmap::new(70);
        a.set_range(0, 40);
        let mut b = Bitmap::new(70);
        b.set_range(30, 70);
        let mut and = a.clone();
        and.and(&b);
        assert_eq!(and.count_ones(), 10);
        let mut or = a.clone();
        or.or(&b);
        assert_eq!(or.count_ones(), 70);
    }

    #[test]
    fn iter_ones_yields_ascending_indexes() {
        let mut bm = Bitmap::new(150);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 149] {
            bm.set(i);
        }
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 127, 128, 149]);
    }

    #[test]
    fn bit_string_roundtrip() {
        let s = "1100100010";
        let bm = Bitmap::from_bit_string(s);
        assert_eq!(bm.to_bit_string(), s);
        assert_eq!(bm.count_ones(), 4);
    }

    #[test]
    fn zero_length_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
        let mut out = vec![7u32];
        bm.collect_ones(&mut out);
        assert!(out.is_empty());
        assert_eq!(bm.ones_cursor().next_chunk(&mut out, 8), 0);
    }

    #[test]
    fn collect_ones_matches_iter_ones() {
        for len in [0usize, 1, 63, 64, 65, 130, 300] {
            let mut bm = Bitmap::new(len);
            for i in (0..len).step_by(3) {
                bm.set(i);
            }
            let expected: Vec<u32> = bm.iter_ones().map(|i| i as u32).collect();
            let mut out = Vec::new();
            bm.collect_ones(&mut out);
            assert_eq!(out, expected, "len {len}");
        }
    }

    #[test]
    fn ones_cursor_chunks_resume_across_words() {
        let mut bm = Bitmap::new(500);
        for i in [0usize, 1, 62, 63, 64, 127, 128, 200, 300, 450, 499] {
            bm.set(i);
        }
        let expected: Vec<u32> = bm.iter_ones().map(|i| i as u32).collect();
        for chunk_size in [1usize, 2, 3, 5, 64, 1000] {
            let mut cursor = bm.ones_cursor();
            let mut chunk = Vec::new();
            let mut all = Vec::new();
            loop {
                let n = cursor.next_chunk(&mut chunk, chunk_size);
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                all.extend_from_slice(&chunk);
            }
            assert_eq!(all, expected, "chunk size {chunk_size}");
            // Exhausted cursors stay exhausted.
            assert_eq!(cursor.next_chunk(&mut chunk, chunk_size), 0);
        }
    }
}
