//! Fault-injecting filesystem shim for the WAL.
//!
//! Every durability-relevant syscall the flush controller and the
//! recovery path make goes through the [`WalFs`] trait: file writes,
//! file fsyncs, renames, directory fsyncs, reads, and listings. Two
//! implementations exist:
//!
//! * [`RealFs`] — the passthrough to `std::fs` used in production.
//! * [`SimFs`] — a fully in-memory filesystem with *deterministic
//!   power-cut simulation*, the substrate of the crash-consistency
//!   torture harness (`oracle::crash`).
//!
//! `SimFs` models the durability semantics POSIX actually guarantees,
//! not the ones programs like to assume:
//!
//! * A file's **content** only survives a power cut once `sync_file`
//!   ran; unsynced bytes are lost, and the write in flight at the cut
//!   leaves a *torn prefix* whose length is derived deterministically
//!   from the seed.
//! * A **name binding** (create or rename) only survives once the
//!   parent directory was `sync_dir`'d. A round file that was
//!   renamed into place but whose directory entry was never fsynced
//!   vanishes at the cut — the lost-rename failure mode the torture
//!   harness exists to catch.
//!
//! Each mutating call is one numbered *crash boundary*. A `SimFs`
//! built with [`SimFs::with_cut`] counts boundaries and, when the
//! configured one is reached, applies the power-cut semantics and
//! fails that call (and every later one) with a [`power cut
//! error`](is_power_cut). The harness enumerates every boundary of a
//! workload mechanically: run once with no cut to learn the count
//! ([`SimFs::mutating_ops`]), then once per boundary.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The filesystem surface the WAL needs. All paths are absolute or
/// caller-relative; implementations must be usable behind `Arc<dyn
/// WalFs>` from multiple threads.
pub trait WalFs: Send + Sync {
    /// Creates `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (or truncates) `path` and writes `bytes` to it. The
    /// content is *not* durable until [`WalFs::sync_file`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// fsyncs `path`'s content (not its directory entry).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Renames `from` to `to`. The new binding is *not* durable until
    /// the parent directory is [`WalFs::sync_dir`]'d.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// fsyncs the directory itself, making its entries durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes the name `path` (durable after the next `sync_dir`).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Reads the full content of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the entries of `dir` (files only, full paths).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

// ---------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------

/// Passthrough to `std::fs`. `sync_dir` opens the directory and
/// `sync_all`s it, which is how a directory entry is made durable on
/// POSIX systems.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl WalFs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::options().write(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories as files; directory-entry
        // durability is best-effort there. On POSIX this is the real
        // thing.
        match std::fs::File::open(dir) {
            Ok(f) => f.sync_all(),
            Err(e) if cfg!(windows) => {
                let _ = e;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------
// Power-cut error
// ---------------------------------------------------------------

/// Marker payload inside the `io::Error` a [`SimFs`] returns from the
/// crash boundary onwards.
#[derive(Debug)]
struct PowerCut;

impl std::fmt::Display for PowerCut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulated power cut")
    }
}

impl std::error::Error for PowerCut {}

fn power_cut_error() -> io::Error {
    io::Error::other(PowerCut)
}

/// `true` when `err` is a [`SimFs`] power-cut marker (as opposed to a
/// genuine I/O failure).
pub fn is_power_cut(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|inner| inner.is::<PowerCut>())
}

// ---------------------------------------------------------------
// SimFs
// ---------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct Inode {
    /// What a reader of the live filesystem sees.
    content: Vec<u8>,
    /// What survives a power cut (set by `sync_file`).
    durable: Vec<u8>,
}

#[derive(Clone, Debug, Default)]
struct SimState {
    dirs: BTreeSet<PathBuf>,
    /// Visible namespace: name -> inode number.
    names: BTreeMap<PathBuf, u64>,
    /// Durable namespace: what the directory entries look like after
    /// a power cut (updated only by `sync_dir`).
    durable_names: BTreeMap<PathBuf, u64>,
    inodes: BTreeMap<u64, Inode>,
    next_ino: u64,
    /// Mutating syscalls executed so far (crash boundaries passed).
    ops: u64,
    crashed: bool,
}

/// Deterministic in-memory filesystem with power-cut simulation.
///
/// All state lives behind one mutex; the struct is cheap and holds no
/// OS resources. Use [`SimFs::new`] for a cut-free run (census /
/// reference) and [`SimFs::with_cut`] to die at one specific crash
/// boundary.
pub struct SimFs {
    state: Mutex<SimState>,
    seed: u64,
    cut_at: Option<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SimFs {
    /// A simulated filesystem that never crashes (used for the census
    /// pass and as the substrate of post-run fault sweeps).
    pub fn new(seed: u64) -> SimFs {
        SimFs {
            state: Mutex::new(SimState::default()),
            seed,
            cut_at: None,
        }
    }

    /// A simulated filesystem that powers off at mutating-syscall
    /// boundary `cut_at` (0-based): that call fails with a power-cut
    /// error, unsynced state is lost (the in-flight write may leave a
    /// seeded torn prefix), and every later call fails too.
    pub fn with_cut(seed: u64, cut_at: u64) -> SimFs {
        SimFs {
            state: Mutex::new(SimState::default()),
            seed,
            cut_at: Some(cut_at),
        }
    }

    /// Mutating syscalls executed so far — after a cut-free run, the
    /// number of crash boundaries the workload exposes.
    pub fn mutating_ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// `true` once the configured power cut has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Ends the outage: the machine reboots with only the durable
    /// state. (The cut itself already reduced the visible namespace
    /// and contents to their durable versions.)
    pub fn reboot(&self) {
        self.state.lock().unwrap().crashed = false;
    }

    /// Immediately applies power-cut semantics (without an op in
    /// flight) and reboots: everything unsynced is dropped. Used by
    /// fault sweeps to ask "what would disk hold if power died right
    /// now?".
    pub fn crash_now(&self) {
        let mut st = self.state.lock().unwrap();
        Self::apply_power_cut(&mut st);
        st.crashed = false;
    }

    /// A deep copy of the current state (same seed, no cut) so a
    /// sweep can mutilate a fork without disturbing the original.
    pub fn fork(&self) -> SimFs {
        SimFs {
            state: Mutex::new(self.state.lock().unwrap().clone()),
            seed: self.seed,
            cut_at: None,
        }
    }

    /// Flips bit `bit` (modulo the file length) of the *durable*
    /// content of `path`, simulating media corruption that a later
    /// recovery will read. Returns `false` if the file is unknown or
    /// empty.
    pub fn flip_durable_bit(&self, path: &Path, bit: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        let Some(ino) = st.durable_names.get(path).copied() else {
            return false;
        };
        let Some(inode) = st.inodes.get_mut(&ino) else {
            return false;
        };
        if inode.durable.is_empty() {
            return false;
        }
        let idx = (bit / 8) as usize % inode.durable.len();
        let mask = 1u8 << (bit % 8);
        inode.durable[idx] ^= mask;
        // Keep visible content in lockstep so a sweep that recovers
        // without a crash sees the corruption too.
        inode.content = inode.durable.clone();
        true
    }

    /// Removes `path` from both namespaces (simulates a lost file /
    /// directory hole). Returns `false` when absent.
    pub fn remove_everywhere(&self, path: &Path) -> bool {
        let mut st = self.state.lock().unwrap();
        let a = st.names.remove(path).is_some();
        let b = st.durable_names.remove(path).is_some();
        a || b
    }

    /// The durable names under `dir`, sorted (what a post-cut listing
    /// would return).
    pub fn durable_files(&self, dir: &Path) -> Vec<PathBuf> {
        let st = self.state.lock().unwrap();
        st.durable_names
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect()
    }

    /// Crash boundary bookkeeping: fails when already crashed, fires
    /// the cut when this op is the victim. Returns `true` when the
    /// current op is the cut victim (its partial effect, if any, must
    /// be applied by the caller *before* [`SimFs::apply_power_cut`]).
    fn begin_op(&self, st: &mut SimState) -> io::Result<bool> {
        if st.crashed {
            return Err(power_cut_error());
        }
        let victim = self.cut_at == Some(st.ops);
        st.ops += 1;
        if victim {
            st.crashed = true;
        }
        Ok(victim)
    }

    /// Reduces the filesystem to its durable state: the visible
    /// namespace becomes the durable namespace and every inode's
    /// content reverts to its synced bytes. Orphaned inodes (never
    /// durably named) disappear.
    fn apply_power_cut(st: &mut SimState) {
        st.names = st.durable_names.clone();
        let live: BTreeSet<u64> = st.names.values().copied().collect();
        st.inodes.retain(|ino, _| live.contains(ino));
        for inode in st.inodes.values_mut() {
            inode.content = inode.durable.clone();
        }
    }

    /// Seeded torn-prefix length for the write in flight at the cut:
    /// any prefix of the new bytes (including none or all of them)
    /// may have reached the platter.
    fn torn_len(&self, op: u64, len: usize) -> usize {
        (splitmix64(self.seed ^ op.wrapping_mul(0x5851_f42d_4c95_7f2d)) % (len as u64 + 1)) as usize
    }
}

impl WalFs for SimFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        if victim {
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        // Directory creation is modelled as immediately durable: the
        // WAL creates its directory once, long before any crash of
        // interest, and journalled filesystems persist mkdir quickly.
        let mut p = dir.to_path_buf();
        loop {
            st.dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        let op = st.ops;
        let ino = match st.names.get(path) {
            Some(&ino) => ino,
            None => {
                let ino = st.next_ino;
                st.next_ino += 1;
                st.names.insert(path.to_path_buf(), ino);
                st.inodes.insert(ino, Inode::default());
                ino
            }
        };
        if victim {
            // The cut strikes mid-write: a seeded prefix of the new
            // bytes may be durable — and, adversarially, the
            // truncation that preceded the write already destroyed
            // the old durable content (File::create truncates).
            let torn = self.torn_len(op, bytes.len());
            if let Some(inode) = st.inodes.get_mut(&ino) {
                inode.durable = bytes[..torn].to_vec();
            }
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        if let Some(inode) = st.inodes.get_mut(&ino) {
            inode.content = bytes.to_vec();
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        if victim {
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        let ino =
            st.names.get(path).copied().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, "sync_file: no such file")
            })?;
        if let Some(inode) = st.inodes.get_mut(&ino) {
            inode.durable = inode.content.clone();
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        if victim {
            // The rename never happens; the machine dies first.
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        let ino = st
            .names
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename: no such file"))?;
        st.names.insert(to.to_path_buf(), ino);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        if victim {
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        if !st.dirs.contains(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "sync_dir: no such directory",
            ));
        }
        let visible: Vec<(PathBuf, u64)> = st
            .names
            .iter()
            .filter(|(p, _)| p.parent() == Some(dir))
            .map(|(p, &ino)| (p.clone(), ino))
            .collect();
        st.durable_names.retain(|p, _| p.parent() != Some(dir));
        st.durable_names.extend(visible);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let victim = self.begin_op(&mut st)?;
        if victim {
            Self::apply_power_cut(&mut st);
            return Err(power_cut_error());
        }
        st.names
            .remove(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "remove_file: no such file"))?;
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(power_cut_error());
        }
        let ino = st
            .names
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "read: no such file"))?;
        Ok(st.inodes[ino].content.clone())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(power_cut_error());
        }
        if !st.dirs.contains(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "list: no such directory",
            ));
        }
        Ok(st
            .names
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        PathBuf::from("/sim/wal")
    }

    /// A full durable round: write, fsync, rename, fsync dir.
    fn write_round(fs: &SimFs, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = dir().join(format!("{name}.tmp"));
        let fin = dir().join(name);
        fs.write_file(&tmp, bytes)?;
        fs.sync_file(&tmp)?;
        fs.rename(&tmp, &fin)?;
        fs.sync_dir(&dir())
    }

    #[test]
    fn synced_and_dir_synced_data_survives_a_cut() {
        let fs = SimFs::new(7);
        fs.create_dir_all(&dir()).unwrap();
        write_round(&fs, "round-00000000.cbk", b"hello").unwrap();
        fs.crash_now();
        assert_eq!(
            fs.read(&dir().join("round-00000000.cbk")).unwrap(),
            b"hello"
        );
        assert_eq!(fs.list(&dir()).unwrap().len(), 1);
    }

    #[test]
    fn unsynced_rename_is_lost_on_cut() {
        let fs = SimFs::new(7);
        fs.create_dir_all(&dir()).unwrap();
        let tmp = dir().join("r.tmp");
        let fin = dir().join("r.cbk");
        fs.write_file(&tmp, b"data").unwrap();
        fs.sync_file(&tmp).unwrap();
        fs.rename(&tmp, &fin).unwrap();
        // No sync_dir: the binding is volatile.
        fs.crash_now();
        assert!(fs.read(&fin).is_err(), "lost rename");
        assert!(fs.read(&tmp).is_err(), "tmp entry was never durable either");
        assert!(fs.list(&dir()).unwrap().is_empty());
    }

    #[test]
    fn cut_during_write_leaves_a_seeded_torn_prefix() {
        // Boundaries: 0 create_dir, 1..=4 first round, 5 = the second
        // round's write — cut there.
        let fs = SimFs::with_cut(42, 5);
        fs.create_dir_all(&dir()).unwrap();
        write_round(&fs, "round-00000000.cbk", b"first").unwrap();
        let err = fs
            .write_file(&dir().join("round-00000001.tmp"), &[0xAB; 100])
            .unwrap_err();
        assert!(is_power_cut(&err));
        assert!(fs.crashed());
        // Everything after the cut fails until reboot.
        assert!(fs.list(&dir()).is_err());
        fs.reboot();
        // Round 0 survived; the torn tmp was never durably named.
        assert_eq!(fs.list(&dir()).unwrap().len(), 1);
        assert_eq!(
            fs.read(&dir().join("round-00000000.cbk")).unwrap(),
            b"first"
        );
    }

    #[test]
    fn enumeration_is_deterministic() {
        let census = |seed| {
            let fs = SimFs::new(seed);
            fs.create_dir_all(&dir()).unwrap();
            write_round(&fs, "a.cbk", b"a").unwrap();
            write_round(&fs, "b.cbk", b"bb").unwrap();
            fs.mutating_ops()
        };
        assert_eq!(census(1), census(1));
        assert_eq!(census(1), 1 + 2 * 4, "mkdir + 2 rounds x 4 syscalls");
    }

    #[test]
    fn every_boundary_fires_exactly_once() {
        let total = {
            let fs = SimFs::new(3);
            fs.create_dir_all(&dir()).unwrap();
            write_round(&fs, "a.cbk", b"abc").unwrap();
            fs.mutating_ops()
        };
        for cut in 0..total {
            let fs = SimFs::with_cut(3, cut);
            let run = || -> io::Result<()> {
                fs.create_dir_all(&dir())?;
                write_round(&fs, "a.cbk", b"abc")
            };
            let err = run().expect_err("cut must fire");
            assert!(is_power_cut(&err), "cut {cut}");
        }
    }

    #[test]
    fn bit_flip_and_hole_injection() {
        let fs = SimFs::new(9);
        fs.create_dir_all(&dir()).unwrap();
        write_round(&fs, "a.cbk", b"payload").unwrap();
        let path = dir().join("a.cbk");
        assert!(fs.flip_durable_bit(&path, 11));
        let corrupted = fs.read(&path).unwrap();
        assert_ne!(corrupted, b"payload");
        assert!(fs.remove_everywhere(&path));
        assert!(fs.read(&path).is_err());
    }
}
