//! Offline integrity checking of a flush directory.
//!
//! Operational counterpart of recovery: scan a node's round files,
//! validate each one's footer/checksum, and report what a recovery
//! from this directory would restore — without touching an engine.
//! The `realtime_metrics` example and operators debugging a crashed
//! node use this to answer "how much is safely on disk?".

use std::fs;
use std::path::{Path, PathBuf};

use aosi::Epoch;
use cubrick::DeltaRun;

use crate::codec::{self, WalError};

/// Integrity status of one round file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundStatus {
    /// Complete and checksum-valid.
    Complete {
        /// Inclusive upper epoch of the round.
        lse_prime: Epoch,
        /// Rows the round carries.
        rows: u64,
    },
    /// Missing/invalid completion footer (crash mid-flush).
    Incomplete,
    /// Structurally damaged content.
    Corrupt(String),
}

/// One round file's verification result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundReport {
    /// File path.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Integrity status.
    pub status: RoundStatus,
}

/// Directory-level verification result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Per-file results, in replay order.
    pub rounds: Vec<RoundReport>,
    /// Rows a recovery would restore (consistent prefix only).
    pub recoverable_rows: u64,
    /// Highest epoch a recovery would restore.
    pub recoverable_epoch: Epoch,
    /// Rounds a recovery would replay.
    pub recoverable_rounds: usize,
    /// Chain breaks: a sequence hole or a complete round whose `lse`
    /// does not continue the previous round's `lse_prime`. Such
    /// rounds are individually valid but unreachable by recovery.
    pub gaps_detected: usize,
}

impl VerifyReport {
    /// `true` when every file is complete and the chain has no gaps.
    pub fn is_clean(&self) -> bool {
        self.gaps_detected == 0
            && self
                .rounds
                .iter()
                .all(|r| matches!(r.status, RoundStatus::Complete { .. }))
    }
}

/// Verifies every round file in `dir`, in replay order, and computes
/// what recovery would restore (recovery stops at the first bad
/// round, so later complete rounds do not count).
pub fn verify_dir(dir: &Path) -> std::io::Result<VerifyReport> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "cbk"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    files.sort();

    let mut report = VerifyReport::default();
    let mut prefix_intact = true;
    let mut expected_seq = 0u64;
    let mut expected_lse: Epoch = 0;
    for path in files {
        let bytes = fs::read(&path)?;
        let status = match codec::decode(&bytes) {
            Ok(round) => {
                let rows: u64 = round
                    .deltas
                    .iter()
                    .flat_map(|d| &d.runs)
                    .map(|run| match run {
                        DeltaRun::Insert { records, .. } => records.len() as u64,
                        DeltaRun::Delete { .. } => 0,
                    })
                    .sum();
                // Recovery replays a round only if it continues the
                // chain (same rules as `chain::scan_chain`).
                let continues_chain = crate::chain::round_seq(&path) == Some(expected_seq)
                    && round.lse == expected_lse
                    && round.lse_prime > round.lse;
                if prefix_intact && !continues_chain {
                    report.gaps_detected += 1;
                    prefix_intact = false;
                }
                if prefix_intact {
                    report.recoverable_rows += rows;
                    report.recoverable_epoch = report.recoverable_epoch.max(round.lse_prime);
                    report.recoverable_rounds += 1;
                    expected_seq += 1;
                    expected_lse = round.lse_prime;
                }
                RoundStatus::Complete {
                    lse_prime: round.lse_prime,
                    rows,
                }
            }
            Err(WalError::Incomplete) => {
                prefix_intact = false;
                RoundStatus::Incomplete
            }
            Err(WalError::Corrupt(msg)) => {
                prefix_intact = false;
                RoundStatus::Corrupt(msg)
            }
            Err(WalError::Io(e)) => return Err(e),
            Err(e @ WalError::Recovery(_)) => {
                // decode never produces this variant.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ));
            }
        };
        report.rounds.push(RoundReport {
            path,
            bytes: bytes.len() as u64,
            status,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::TempWalDir;
    use crate::flush::FlushController;
    use cluster::ReplicationTracker;
    use columnar::Value;
    use cubrick::{CubeSchema, Dimension, Engine, Metric};

    fn flushed_engine(dir: &Path, rounds: usize) -> Engine {
        let engine = Engine::new(1);
        engine
            .create_cube(
                CubeSchema::new("t", vec![Dimension::int("k", 8, 4)], vec![Metric::int("v")])
                    .unwrap(),
            )
            .unwrap();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(dir, 1).unwrap();
        for r in 0..rounds {
            engine
                .load("t", &[vec![Value::I64((r % 8) as i64), Value::I64(1)]], 0)
                .unwrap();
            ctl.flush_round(&engine, &tracker).unwrap();
        }
        engine
    }

    #[test]
    fn clean_directory_verifies_fully() {
        let dir = TempWalDir::new("verify-clean");
        flushed_engine(dir.path(), 3);
        let report = verify_dir(dir.path()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.recoverable_rounds, 3);
        assert_eq!(report.recoverable_rows, 3);
        assert_eq!(report.recoverable_epoch, 3);
    }

    #[test]
    fn damage_truncates_the_recoverable_prefix() {
        let dir = TempWalDir::new("verify-damaged");
        flushed_engine(dir.path(), 3);
        // Corrupt round 2 of 3.
        let mut files: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let mut bytes = fs::read(&files[1]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&files[1], bytes).unwrap();

        let report = verify_dir(dir.path()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.recoverable_rounds, 1, "only the clean prefix");
        assert_eq!(report.recoverable_rows, 1);
        assert!(matches!(report.rounds[1].status, RoundStatus::Corrupt(_)));
        // Round 3 is complete but unreachable by recovery.
        assert!(matches!(
            report.rounds[2].status,
            RoundStatus::Complete { .. }
        ));
        // The verifier's prediction matches actual recovery.
        let restored = Engine::new(1);
        restored
            .create_cube(
                CubeSchema::new("t", vec![Dimension::int("k", 8, 4)], vec![Metric::int("v")])
                    .unwrap(),
            )
            .unwrap();
        let recovered = crate::recovery::recover_into(dir.path(), &restored).unwrap();
        assert_eq!(recovered.rows_recovered, report.recoverable_rows);
        assert_eq!(recovered.rounds_applied, report.recoverable_rounds);
    }

    #[test]
    fn a_hole_in_the_chain_is_a_gap_and_matches_recovery() {
        let dir = TempWalDir::new("verify-gap");
        flushed_engine(dir.path(), 3);
        fs::remove_file(dir.path().join("round-00000001.cbk")).unwrap();

        let report = verify_dir(dir.path()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.gaps_detected, 1);
        assert_eq!(report.recoverable_rounds, 1, "replay stops at the hole");
        assert_eq!(report.recoverable_rows, 1);
        // The stranded round is individually valid...
        assert!(matches!(
            report.rounds[1].status,
            RoundStatus::Complete { .. }
        ));
        // ...but the verifier's prediction still matches recovery.
        let restored = Engine::new(1);
        restored
            .create_cube(
                CubeSchema::new("t", vec![Dimension::int("k", 8, 4)], vec![Metric::int("v")])
                    .unwrap(),
            )
            .unwrap();
        let recovered = crate::recovery::recover_into(dir.path(), &restored).unwrap();
        assert_eq!(recovered.rows_recovered, report.recoverable_rows);
        assert_eq!(recovered.rounds_applied, report.recoverable_rounds);
        assert_eq!(recovered.gaps_detected, report.gaps_detected);
    }

    #[test]
    fn missing_directory_is_empty_not_an_error() {
        let report = verify_dir(Path::new("/definitely/not/here")).unwrap();
        assert!(report.rounds.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.recoverable_rows, 0);
    }

    #[test]
    fn truncated_file_reports_incomplete() {
        let dir = TempWalDir::new("verify-truncated");
        flushed_engine(dir.path(), 1);
        let file = fs::read_dir(dir.path())
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let bytes = fs::read(&file).unwrap();
        fs::write(&file, &bytes[..bytes.len() - 5]).unwrap();
        let report = verify_dir(dir.path()).unwrap();
        assert_eq!(report.rounds[0].status, RoundStatus::Incomplete);
        assert_eq!(report.recoverable_rounds, 0);
    }
}
