//! Binary format for flush-round files.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    "CBRKWAL1"                     8 bytes
//! lse      u64   exclusive range start
//! lse'     u64   inclusive range end
//! deltas   u32
//!   per delta:
//!     cube  u16 length + utf-8 bytes
//!     bid   u64
//!     runs  u32
//!       per run:
//!         epoch u64
//!         kind  u8   0 = insert, 1 = delete
//!         insert only:
//!           dims u16, metrics u16, records u32
//!           per record: dims x u32 coords,
//!                       metrics x (tag u8: 0=i64 1=f64, payload 8B)
//! dict deltas u32
//!   per delta:
//!     cube u16 length + utf-8, dim u16, first_id u32, entries u32,
//!     per entry: u16 length + utf-8 bytes
//! checksum u64  FNV-1a of everything above
//! magic    "DONE"                         4 bytes
//! ```
//!
//! The trailing checksum + magic make a round self-certifying: a
//! crash mid-write leaves a file without a valid footer, which
//! recovery classifies as [`WalError::Incomplete`] and skips — the
//! paper's "ignoring any subsequent partial flush executions".

use aosi::Epoch;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use columnar::Value;
use cubrick::{BrickDelta, DeltaRun, ParsedRecord};

const HEADER_MAGIC: &[u8; 8] = b"CBRKWAL1";
const FOOTER_MAGIC: &[u8; 4] = b"DONE";

/// One flush round: the epoch window plus everything exported for it.
#[derive(Clone, Debug, PartialEq)]
pub struct FlushRound {
    /// Exclusive lower bound of the flushed epoch window.
    pub lse: Epoch,
    /// Inclusive upper bound (the candidate LSE').
    pub lse_prime: Epoch,
    /// Exported brick deltas.
    pub deltas: Vec<BrickDelta>,
    /// New dictionary entries since the previous round: coordinates
    /// on disk are dictionary ids, so recovery must rebuild every
    /// string dimension's dictionary with identical ids.
    pub dictionaries: Vec<DictDelta>,
}

/// The strings a dimension's dictionary gained since the last flush.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictDelta {
    /// Cube name.
    pub cube: String,
    /// Dimension index within the cube.
    pub dim: u16,
    /// Id of the first entry in `entries`.
    pub first_id: u32,
    /// New strings, in id order.
    pub entries: Vec<String>,
}

/// Decode failures.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content.
    Corrupt(String),
    /// Valid prefix but missing/invalid completion footer (partial
    /// flush) — recovery skips these.
    Incomplete,
    /// Recovery replayed the rounds but could not re-establish the
    /// engine's transactional state (e.g. the marker commit that
    /// pulls LCE over the recovered history failed). Reportable, not
    /// fatal: the caller decides whether to retry, alert, or abandon
    /// the node.
    Recovery(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(msg) => write!(f, "corrupt wal round: {msg}"),
            WalError::Incomplete => write!(f, "incomplete wal round (partial flush)"),
            WalError::Recovery(msg) => write!(f, "recovery failed: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Serializes a flush round.
pub fn encode(round: &FlushRound) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(HEADER_MAGIC);
    buf.put_u64_le(round.lse);
    buf.put_u64_le(round.lse_prime);
    buf.put_u32_le(round.deltas.len() as u32);
    for delta in &round.deltas {
        buf.put_u16_le(delta.cube.len() as u16);
        buf.put_slice(delta.cube.as_bytes());
        buf.put_u64_le(delta.bid);
        buf.put_u32_le(delta.runs.len() as u32);
        for run in &delta.runs {
            buf.put_u64_le(run.epoch());
            match run {
                DeltaRun::Delete { .. } => buf.put_u8(1),
                DeltaRun::Insert { records, .. } => {
                    buf.put_u8(0);
                    let dims = records.first().map_or(0, |r| r.coords.len());
                    let metrics = records.first().map_or(0, |r| r.metrics.len());
                    buf.put_u16_le(dims as u16);
                    buf.put_u16_le(metrics as u16);
                    buf.put_u32_le(records.len() as u32);
                    for rec in records {
                        debug_assert_eq!(rec.coords.len(), dims);
                        debug_assert_eq!(rec.metrics.len(), metrics);
                        for &c in &rec.coords {
                            buf.put_u32_le(c);
                        }
                        for m in &rec.metrics {
                            match m {
                                Value::I64(v) => {
                                    buf.put_u8(0);
                                    buf.put_i64_le(*v);
                                }
                                Value::F64(v) => {
                                    buf.put_u8(1);
                                    buf.put_f64_le(*v);
                                }
                                Value::Str(_) => {
                                    unreachable!("metrics are numeric after parsing")
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    buf.put_u32_le(round.dictionaries.len() as u32);
    for dict in &round.dictionaries {
        buf.put_u16_le(dict.cube.len() as u16);
        buf.put_slice(dict.cube.as_bytes());
        buf.put_u16_le(dict.dim);
        buf.put_u32_le(dict.first_id);
        buf.put_u32_le(dict.entries.len() as u32);
        for entry in &dict.entries {
            buf.put_u16_le(entry.len() as u16);
            buf.put_slice(entry.as_bytes());
        }
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.put_slice(FOOTER_MAGIC);
    buf.freeze()
}

/// Deserializes a flush round, verifying the completion footer and
/// checksum.
pub fn decode(bytes: &[u8]) -> Result<FlushRound, WalError> {
    const FOOTER_LEN: usize = 8 + 4;
    if bytes.len() < HEADER_MAGIC.len() + FOOTER_LEN {
        return Err(WalError::Incomplete);
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[8..] != FOOTER_MAGIC {
        return Err(WalError::Incomplete);
    }
    let stored = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
    if stored != fnv1a(body) {
        return Err(WalError::Corrupt("checksum mismatch".into()));
    }

    struct Reader<'a> {
        buf: &'a [u8],
    }
    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
            if self.buf.remaining() < n {
                return Err(WalError::Corrupt("truncated body".into()));
            }
            let (head, tail) = self.buf.split_at(n);
            self.buf = tail;
            Ok(head)
        }
    }
    let mut reader = Reader { buf: body };

    if reader.take(8)? != HEADER_MAGIC {
        return Err(WalError::Corrupt("bad header magic".into()));
    }
    let lse = u64::from_le_bytes(reader.take(8)?.try_into().unwrap());
    let lse_prime = u64::from_le_bytes(reader.take(8)?.try_into().unwrap());
    let num_deltas = u32::from_le_bytes(reader.take(4)?.try_into().unwrap());

    let mut deltas = Vec::with_capacity(num_deltas as usize);
    for _ in 0..num_deltas {
        let cube_len = u16::from_le_bytes(reader.take(2)?.try_into().unwrap()) as usize;
        let cube = std::str::from_utf8(reader.take(cube_len)?)
            .map_err(|_| WalError::Corrupt("cube name not utf-8".into()))?
            .to_owned();
        let bid = u64::from_le_bytes(reader.take(8)?.try_into().unwrap());
        let num_runs = u32::from_le_bytes(reader.take(4)?.try_into().unwrap());
        let mut runs = Vec::with_capacity(num_runs as usize);
        for _ in 0..num_runs {
            let epoch = u64::from_le_bytes(reader.take(8)?.try_into().unwrap());
            match reader.take(1)?[0] {
                1 => runs.push(DeltaRun::Delete { epoch }),
                0 => {
                    let dims = u16::from_le_bytes(reader.take(2)?.try_into().unwrap()) as usize;
                    let metrics = u16::from_le_bytes(reader.take(2)?.try_into().unwrap()) as usize;
                    let count = u32::from_le_bytes(reader.take(4)?.try_into().unwrap()) as usize;
                    let mut records = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut coords = Vec::with_capacity(dims);
                        for _ in 0..dims {
                            coords.push(u32::from_le_bytes(reader.take(4)?.try_into().unwrap()));
                        }
                        let mut values = Vec::with_capacity(metrics);
                        for _ in 0..metrics {
                            let tag = reader.take(1)?[0];
                            let payload = reader.take(8)?;
                            values.push(match tag {
                                0 => Value::I64(i64::from_le_bytes(payload.try_into().unwrap())),
                                1 => Value::F64(f64::from_le_bytes(payload.try_into().unwrap())),
                                t => {
                                    return Err(WalError::Corrupt(format!(
                                        "unknown metric tag {t}"
                                    )))
                                }
                            });
                        }
                        records.push(ParsedRecord {
                            bid,
                            coords,
                            metrics: values,
                        });
                    }
                    runs.push(DeltaRun::Insert { epoch, records });
                }
                k => return Err(WalError::Corrupt(format!("unknown run kind {k}"))),
            }
        }
        deltas.push(BrickDelta { cube, bid, runs });
    }
    let num_dicts = u32::from_le_bytes(reader.take(4)?.try_into().unwrap());
    let mut dictionaries = Vec::with_capacity(num_dicts as usize);
    for _ in 0..num_dicts {
        let cube_len = u16::from_le_bytes(reader.take(2)?.try_into().unwrap()) as usize;
        let cube = std::str::from_utf8(reader.take(cube_len)?)
            .map_err(|_| WalError::Corrupt("cube name not utf-8".into()))?
            .to_owned();
        let dim = u16::from_le_bytes(reader.take(2)?.try_into().unwrap());
        let first_id = u32::from_le_bytes(reader.take(4)?.try_into().unwrap());
        let count = u32::from_le_bytes(reader.take(4)?.try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let len = u16::from_le_bytes(reader.take(2)?.try_into().unwrap()) as usize;
            entries.push(
                std::str::from_utf8(reader.take(len)?)
                    .map_err(|_| WalError::Corrupt("dictionary entry not utf-8".into()))?
                    .to_owned(),
            );
        }
        dictionaries.push(DictDelta {
            cube,
            dim,
            first_id,
            entries,
        });
    }
    if !reader.buf.is_empty() {
        return Err(WalError::Corrupt("trailing bytes in body".into()));
    }
    Ok(FlushRound {
        lse,
        lse_prime,
        deltas,
        dictionaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_round() -> FlushRound {
        FlushRound {
            lse: 2,
            lse_prime: 7,
            deltas: vec![
                BrickDelta {
                    cube: "events".into(),
                    bid: 42,
                    runs: vec![
                        DeltaRun::Insert {
                            epoch: 3,
                            records: vec![
                                ParsedRecord {
                                    bid: 42,
                                    coords: vec![1, 2],
                                    metrics: vec![Value::I64(-5), Value::F64(2.5)],
                                },
                                ParsedRecord {
                                    bid: 42,
                                    coords: vec![3, 0],
                                    metrics: vec![Value::I64(9), Value::F64(-0.5)],
                                },
                            ],
                        },
                        DeltaRun::Delete { epoch: 5 },
                        DeltaRun::Insert {
                            epoch: 7,
                            records: vec![],
                        },
                    ],
                },
                BrickDelta {
                    cube: "other".into(),
                    bid: 0,
                    runs: vec![DeltaRun::Delete { epoch: 6 }],
                },
            ],
            dictionaries: vec![DictDelta {
                cube: "events".into(),
                dim: 0,
                first_id: 3,
                entries: vec!["us".into(), "it's".into()],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let round = sample_round();
        let bytes = encode(&round);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, round);
    }

    #[test]
    fn empty_round_roundtrips() {
        let round = FlushRound {
            lse: 0,
            lse_prime: 0,
            deltas: vec![],
            dictionaries: vec![],
        };
        assert_eq!(decode(&encode(&round)).unwrap(), round);
    }

    #[test]
    fn truncated_file_is_incomplete() {
        let bytes = encode(&sample_round());
        for cut in [0, 5, bytes.len() - 1, bytes.len() - 4] {
            match decode(&bytes[..cut]) {
                Err(WalError::Incomplete) => {}
                other => panic!("cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let bytes = encode(&sample_round()).to_vec();
        for idx in [10, 40, bytes.len() / 2] {
            let mut broken = bytes.clone();
            broken[idx] ^= 0x40;
            assert!(
                matches!(decode(&broken), Err(WalError::Corrupt(_))),
                "flip at {idx} undetected"
            );
        }
    }

    #[test]
    fn bad_footer_magic_is_incomplete() {
        let mut bytes = encode(&sample_round()).to_vec();
        let n = bytes.len();
        bytes[n - 1] = b'X';
        assert!(matches!(decode(&bytes), Err(WalError::Incomplete)));
    }

    #[test]
    fn error_display() {
        assert!(WalError::Incomplete.to_string().contains("partial"));
        assert!(WalError::Corrupt("x".into()).to_string().contains('x'));
        assert!(WalError::Recovery("marker".into())
            .to_string()
            .contains("marker"));
    }
}
