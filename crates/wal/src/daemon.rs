//! Cluster-wide flush orchestration.
//!
//! The paper's Section III-D durability model, driven across a whole
//! cluster: every node runs flush rounds against its own directory,
//! all nodes share one [`ReplicationTracker`], and LSE advances on a
//! node only when every node has the epoch durably on disk — "LSE
//! needs to be prevented from advancing if data is not safely stored
//! on all replicas or if any replica is offline".
//!
//! [`ClusterFlush`] also covers the operational loop the examples
//! use: crash a node, restore it from its round files, and let it
//! rejoin the tracker.

use std::path::{Path, PathBuf};

use cluster::{NodeId, ReplicationTracker};
use cubrick::{DistributedEngine, Engine};

use crate::codec::WalError;
use crate::flush::{FlushController, FlushOutcome};
use crate::recovery::{recover_into, RecoveryReport};

/// One flush controller per node plus the shared replica tracker.
pub struct ClusterFlush {
    base_dir: PathBuf,
    controllers: Vec<FlushController>,
    tracker: ReplicationTracker,
}

impl ClusterFlush {
    /// Creates per-node flush directories under `base_dir`
    /// (`node-1`, `node-2`, …) for a cluster of `num_nodes`.
    pub fn new(base_dir: impl Into<PathBuf>, num_nodes: u64) -> std::io::Result<Self> {
        let base_dir = base_dir.into();
        let controllers = (1..=num_nodes)
            .map(|node| FlushController::new(base_dir.join(format!("node-{node}")), node))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterFlush {
            base_dir,
            controllers,
            tracker: ReplicationTracker::new(num_nodes),
        })
    }

    /// The shared replica tracker.
    pub fn tracker(&self) -> &ReplicationTracker {
        &self.tracker
    }

    /// A node's flush directory.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.base_dir.join(format!("node-{node}"))
    }

    /// Runs one flush round on every node of `cluster`, then a second
    /// LSE pass so nodes that flushed before the last replica caught
    /// up still advance. Returns the per-node outcomes of the first
    /// pass.
    pub fn flush_all(
        &mut self,
        cluster: &DistributedEngine,
    ) -> Result<Vec<FlushOutcome>, WalError> {
        let mut outcomes = Vec::with_capacity(self.controllers.len());
        for (idx, controller) in self.controllers.iter_mut().enumerate() {
            let engine = cluster.engine(idx as u64 + 1);
            outcomes.push(controller.flush_round(engine, &self.tracker)?);
        }
        // Second pass: every watermark is now in the tracker, so
        // earlier nodes can move their LSE too.
        for (idx, controller) in self.controllers.iter_mut().enumerate() {
            let engine = cluster.engine(idx as u64 + 1);
            controller.flush_round(engine, &self.tracker)?;
        }
        Ok(outcomes)
    }

    /// Marks a node crashed: its replica goes offline, freezing LSE
    /// cluster-wide until it returns (the paper's rule).
    pub fn mark_crashed(&self, node: NodeId) {
        self.tracker.mark_offline(node);
    }

    /// Restores a crashed node's state from its flush directory into
    /// `replacement` and brings the replica back online.
    pub fn recover_node(
        &self,
        node: NodeId,
        replacement: &Engine,
    ) -> Result<RecoveryReport, WalError> {
        let report = recover_into(&self.node_dir(node), replacement)?;
        self.tracker.mark_online(node);
        self.tracker.mark_flushed(node, report.recovered_epoch);
        Ok(report)
    }
}

/// Convenience for tests/benches: a throwaway directory under the
/// system temp dir, removed on drop.
pub struct TempWalDir {
    path: PathBuf,
}

impl TempWalDir {
    /// Creates `aosi-wal-<tag>-<pid>` under the temp dir.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("aosi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempWalDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempWalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::SimulatedNetwork;
    use columnar::Value;
    use cubrick::{AggFn, Aggregation, CubeSchema, Dimension, IsolationMode, Metric, Query};

    fn schema() -> CubeSchema {
        CubeSchema::new(
            "events",
            vec![Dimension::int("day", 32, 4)],
            vec![Metric::int("likes")],
        )
        .unwrap()
    }

    fn cluster() -> DistributedEngine {
        let c = DistributedEngine::new(3, 2, SimulatedNetwork::instant());
        c.create_cube(schema()).unwrap();
        c
    }

    fn load(c: &DistributedEngine, origin: u64, n: i64) {
        let rows: Vec<_> = (0..n)
            .map(|i| vec![Value::I64(i % 32), Value::I64(1)])
            .collect();
        c.load(origin, "events", &rows, 0).unwrap();
    }

    #[test]
    fn flush_all_advances_lse_everywhere() {
        let dir = TempWalDir::new("daemon-all");
        let cluster = cluster();
        load(&cluster, 1, 60);
        load(&cluster, 2, 40);
        let mut daemon = ClusterFlush::new(dir.path(), 3).unwrap();
        let outcomes = daemon.flush_all(&cluster).unwrap();
        assert_eq!(outcomes.len(), 3);
        for node in 1..=3u64 {
            assert_eq!(
                cluster.engine(node).manager().lse(),
                cluster.engine(node).manager().lce(),
                "node {node} LSE must reach LCE after the second pass"
            );
        }
        // Purge can now recycle every node's history.
        let stats = cluster.purge_all();
        assert!(stats.entries_reclaimed > 0);
    }

    #[test]
    fn crashed_node_freezes_lse_until_recovered() {
        let dir = TempWalDir::new("daemon-crash");
        let cluster = cluster();
        load(&cluster, 1, 30);
        let mut daemon = ClusterFlush::new(dir.path(), 3).unwrap();
        daemon.flush_all(&cluster).unwrap();

        daemon.mark_crashed(2);
        let lse_before = cluster.engine(1).manager().lse();
        load(&cluster, 1, 30);
        daemon.flush_all(&cluster).unwrap();
        assert_eq!(
            cluster.engine(1).manager().lse(),
            lse_before,
            "offline replica must freeze LSE"
        );

        // Recover node 2 into a fresh engine and rejoin.
        let held = cluster.engine(2).memory().rows;
        let replacement = Engine::new(2);
        replacement.create_cube(schema()).unwrap();
        let report = daemon.recover_node(2, &replacement).unwrap();
        assert_eq!(report.rows_recovered, held);
        daemon.flush_all(&cluster).unwrap();
        assert!(
            cluster.engine(1).manager().lse() > lse_before,
            "LSE resumes once the replica is back"
        );

        // The recovered node answers queries identically to the lost
        // one's share.
        let sum = replacement
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0);
        assert_eq!(sum, held as f64);
    }
}
