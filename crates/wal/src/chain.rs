//! Round-chain scanning shared by controller resume, recovery, and
//! directory verification.
//!
//! Round files form a chain: `round-00000000.cbk` starts at LSE 0,
//! and each subsequent round's `lse` must equal the previous round's
//! `lse_prime`, with contiguous file sequence numbers. The scanner
//! walks a directory in sequence order and splits it into the longest
//! *consistent prefix* (what the paper's durability rule lets a
//! recovery restore) and everything after it — partial flushes,
//! corrupt files, and rounds stranded beyond a hole in the chain.

use std::path::{Path, PathBuf};

use crate::codec::{self, FlushRound, WalError};
use crate::fault::WalFs;

/// Sequence number of a `round-NNNNNNNN.cbk` file name, if the name
/// matches the controller's naming scheme.
pub(crate) fn round_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("round-")?.strip_suffix(".cbk")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One round of the consistent prefix.
pub(crate) struct ChainRound {
    pub round: FlushRound,
}

/// What a directory scan found.
#[derive(Default)]
pub(crate) struct ChainScan {
    /// The longest consistent prefix, in replay order.
    pub prefix: Vec<ChainRound>,
    /// Round files after the prefix ends (partial, corrupt, or
    /// stranded beyond a chain break).
    pub skipped: usize,
    /// Chain breaks observed: a sequence hole or an `lse` that does
    /// not continue the previous round's `lse_prime`.
    pub gaps: usize,
    /// Files unreachable by recovery: everything skipped, plus stray
    /// `.tmp` files and unparseable names. Safe for a resuming
    /// controller to delete.
    pub dead_paths: Vec<PathBuf>,
}

impl ChainScan {
    /// `lse_prime` of the last prefix round (0 when empty).
    pub fn flushed_through(&self) -> u64 {
        self.prefix.last().map_or(0, |r| r.round.lse_prime)
    }
}

/// Scans `dir` through `fs`. A missing directory scans as empty.
/// When `validate` is false the lse-chain and sequence-contiguity
/// rules are not enforced (the pre-fix behavior, kept reachable so
/// the torture harness can demonstrate the bug): the prefix then ends
/// only at the first undecodable file.
pub(crate) fn scan_chain(
    fs: &dyn WalFs,
    dir: &Path,
    validate: bool,
) -> Result<ChainScan, WalError> {
    let mut scan = ChainScan::default();
    let entries = match fs.list(dir) {
        Ok(entries) => entries,
        // No directory means nothing was ever flushed — unless the
        // listing failed for a real reason (e.g. a simulated power
        // cut), which must not masquerade as an empty log.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e.into()),
    };
    let mut rounds: Vec<(u64, PathBuf)> = Vec::new();
    for path in entries {
        match round_seq(&path) {
            Some(seq) => rounds.push((seq, path)),
            // Stray tmp files and foreign names never reach recovery.
            None => scan.dead_paths.push(path),
        }
    }
    rounds.sort();

    let mut expected_seq = 0u64;
    let mut expected_lse = 0u64;
    let mut prefix_intact = true;
    for (seq, path) in rounds {
        if !prefix_intact {
            scan.skipped += 1;
            scan.dead_paths.push(path);
            continue;
        }
        let bytes = fs.read(&path)?;
        match codec::decode(&bytes) {
            Ok(round) => {
                let breaks_chain = validate
                    && (seq != expected_seq
                        || round.lse != expected_lse
                        || round.lse_prime <= round.lse);
                if breaks_chain {
                    scan.gaps += 1;
                    prefix_intact = false;
                    scan.skipped += 1;
                    scan.dead_paths.push(path);
                } else {
                    expected_seq = seq + 1;
                    expected_lse = round.lse_prime;
                    scan.prefix.push(ChainRound { round });
                }
            }
            Err(WalError::Incomplete) | Err(WalError::Corrupt(_)) => {
                // The paper's rule: a partial flush ends the
                // recoverable history.
                prefix_intact = false;
                scan.skipped += 1;
                scan.dead_paths.push(path);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{RealFs, SimFs};
    use std::path::PathBuf;

    #[test]
    fn round_seq_parses_only_controller_names() {
        assert_eq!(round_seq(Path::new("/d/round-00000000.cbk")), Some(0));
        assert_eq!(round_seq(Path::new("/d/round-00000137.cbk")), Some(137));
        assert_eq!(round_seq(Path::new("/d/round-00000001.tmp")), None);
        assert_eq!(round_seq(Path::new("/d/round-1.cbk")), None);
        assert_eq!(round_seq(Path::new("/d/other.cbk")), None);
    }

    fn write_round(fs: &SimFs, dir: &Path, seq: u64, lse: u64, lse_prime: u64) {
        let round = FlushRound {
            lse,
            lse_prime,
            deltas: vec![],
            dictionaries: vec![],
        };
        let path = dir.join(format!("round-{seq:08}.cbk"));
        fs.write_file(&path, &codec::encode(&round)).unwrap();
    }

    #[test]
    fn contiguous_chain_is_one_prefix() {
        let fs = SimFs::new(1);
        let dir = PathBuf::from("/w");
        fs.create_dir_all(&dir).unwrap();
        write_round(&fs, &dir, 0, 0, 2);
        write_round(&fs, &dir, 1, 2, 5);
        write_round(&fs, &dir, 2, 5, 6);
        let scan = scan_chain(&fs, &dir, true).unwrap();
        assert_eq!(scan.prefix.len(), 3);
        assert_eq!(scan.flushed_through(), 6);
        assert_eq!(scan.gaps, 0);
        assert_eq!(scan.skipped, 0);
    }

    #[test]
    fn sequence_hole_ends_the_prefix() {
        let fs = SimFs::new(1);
        let dir = PathBuf::from("/w");
        fs.create_dir_all(&dir).unwrap();
        write_round(&fs, &dir, 0, 0, 2);
        // seq 1 is missing.
        write_round(&fs, &dir, 2, 5, 6);
        let scan = scan_chain(&fs, &dir, true).unwrap();
        assert_eq!(scan.prefix.len(), 1);
        assert_eq!(scan.gaps, 1);
        assert_eq!(scan.skipped, 1);
        // Without validation the stranded round is replayed — the
        // pre-fix bug.
        let legacy = scan_chain(&fs, &dir, false).unwrap();
        assert_eq!(legacy.prefix.len(), 2);
        assert_eq!(legacy.gaps, 0);
    }

    #[test]
    fn lse_mismatch_is_a_gap_even_with_contiguous_names() {
        let fs = SimFs::new(1);
        let dir = PathBuf::from("/w");
        fs.create_dir_all(&dir).unwrap();
        write_round(&fs, &dir, 0, 0, 2);
        // A clobbering restart wrote seq 1 starting from lse 0.
        write_round(&fs, &dir, 1, 0, 4);
        let scan = scan_chain(&fs, &dir, true).unwrap();
        assert_eq!(scan.prefix.len(), 1);
        assert_eq!(scan.gaps, 1);
    }

    #[test]
    fn undecodable_round_ends_prefix_without_a_gap() {
        let fs = SimFs::new(1);
        let dir = PathBuf::from("/w");
        fs.create_dir_all(&dir).unwrap();
        write_round(&fs, &dir, 0, 0, 2);
        fs.write_file(&dir.join("round-00000001.cbk"), b"partial")
            .unwrap();
        write_round(&fs, &dir, 2, 5, 6);
        let scan = scan_chain(&fs, &dir, true).unwrap();
        assert_eq!(scan.prefix.len(), 1);
        assert_eq!(scan.gaps, 0, "a torn file is a partial flush, not a hole");
        assert_eq!(scan.skipped, 2);
        assert_eq!(scan.dead_paths.len(), 2);
    }

    #[test]
    fn missing_directory_scans_empty_under_realfs() {
        let scan = scan_chain(&RealFs, Path::new("/definitely/not/here"), true).unwrap();
        assert!(scan.prefix.is_empty());
        assert_eq!(scan.flushed_through(), 0);
    }
}
