//! Crash recovery (Section III-D).
//!
//! "On the event of a crash, data should be recovered up to the last
//! complete execution of a flush, ignoring any subsequent partial
//! flush executions that might be found on disk." Rounds are replayed
//! in sequence order and must form a *chain*: each round's `lse`
//! equals the previous round's `lse_prime` and file sequence numbers
//! are contiguous. The first unreadable round ends the replay (it and
//! anything after it belong to incomplete flush executions), and so
//! does a hole in the chain — a round stranded beyond a gap may be
//! internally valid but describes history whose prefix is missing,
//! so replaying it would recover a state that never existed. Epochs
//! recovered from disk are all committed by construction — only
//! epochs at or below a past LCE are ever flushed — so recovery
//! finishes by fast-forwarding the node's clock past the highest
//! recovered epoch and committing a marker transaction to pull LCE
//! over the recovered history.

use std::path::Path;

use aosi::Epoch;
use cubrick::{DeltaRun, Engine};
use obs::ReportBuilder;

use crate::chain;
use crate::codec::WalError;
use crate::fault::{RealFs, WalFs};

/// What recovery managed to restore.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete rounds replayed.
    pub rounds_applied: usize,
    /// Round files ignored (partial flushes, corrupt files, and
    /// rounds stranded beyond a chain gap).
    pub rounds_skipped: usize,
    /// Chain breaks detected: a sequence-number hole or a round whose
    /// `lse` does not continue the previous round's `lse_prime`.
    pub gaps_detected: usize,
    /// Rows restored.
    pub rows_recovered: u64,
    /// Highest epoch restored (the recovered LCE).
    pub recovered_epoch: Epoch,
    /// Deltas dropped because their cube is not registered. Non-zero
    /// means the caller recovered with incomplete DDL: flushed rows
    /// exist on disk that this engine could not take.
    pub unknown_cube_deltas: usize,
}

impl RecoveryReport {
    /// Appends this report's counters to `report` under `section`.
    pub fn report_into(&self, report: &mut ReportBuilder, section: &str) {
        report
            .section(section)
            .metric("rounds_salvaged", self.rounds_applied)
            .metric("rounds_skipped", self.rounds_skipped)
            .metric("gaps_detected", self.gaps_detected)
            .metric("rows_recovered", self.rows_recovered)
            .metric("recovered_epoch", self.recovered_epoch)
            .metric("unknown_cube_deltas", self.unknown_cube_deltas);
    }

    /// This report as a standalone `[wal.recovery]` text block.
    pub fn metrics_report(&self) -> String {
        let mut report = ReportBuilder::new();
        self.report_into(&mut report, "wal.recovery");
        report.finish()
    }
}

/// Knobs for [`recover_into_with`]. The defaults are the production
/// behavior; the switches exist so the torture harness can
/// demonstrate each fixed bug against its pre-fix behavior.
#[derive(Clone, Copy, Debug)]
pub struct RecoverOptions {
    /// Enforce the round chain (sequence contiguity + lse
    /// continuity). `false` restores the pre-fix behavior of
    /// replaying straight across a hole.
    pub validate_chain: bool,
    /// Forces the final marker commit to fail, to exercise the typed
    /// [`WalError::Recovery`] path.
    #[doc(hidden)]
    pub fail_marker_commit_for_test: bool,
}

impl Default for RecoverOptions {
    fn default() -> Self {
        RecoverOptions {
            validate_chain: true,
            fail_marker_commit_for_test: false,
        }
    }
}

/// Replays the rounds in `dir` into `engine` (whose cubes must
/// already be registered — schemas are metadata, not WAL content).
pub fn recover_into(dir: &Path, engine: &Engine) -> Result<RecoveryReport, WalError> {
    recover_into_with(&RealFs, dir, engine, &RecoverOptions::default())
}

/// Like [`recover_into`], but reading through `fs` (the torture
/// harness substitutes its simulated filesystem) and honoring
/// `opts`.
pub fn recover_into_with(
    fs: &dyn WalFs,
    dir: &Path,
    engine: &Engine,
    opts: &RecoverOptions,
) -> Result<RecoveryReport, WalError> {
    let scan = chain::scan_chain(fs, dir, opts.validate_chain)?;
    let mut report = RecoveryReport {
        rounds_skipped: scan.skipped,
        gaps_detected: scan.gaps,
        ..Default::default()
    };
    for chain_round in scan.prefix {
        let round = chain_round.round;
        // Rebuild dictionaries first: imported coordinates reference
        // these ids.
        for dict_delta in &round.dictionaries {
            let Ok(cube) = engine.cube(&dict_delta.cube) else {
                continue;
            };
            if let Some(dict) = cube
                .dictionaries()
                .get(dict_delta.dim as usize)
                .and_then(|d| d.as_ref())
            {
                let mut dict = dict.lock();
                for (offset, entry) in dict_delta.entries.iter().enumerate() {
                    let id = dict.encode(entry);
                    debug_assert_eq!(
                        id,
                        dict_delta.first_id + offset as u32,
                        "dictionary replay out of order"
                    );
                }
            }
        }
        for delta in &round.deltas {
            for run in &delta.runs {
                if let DeltaRun::Insert { records, .. } = run {
                    report.rows_recovered += records.len() as u64;
                }
                report.recovered_epoch = report.recovered_epoch.max(run.epoch());
            }
        }
        report.recovered_epoch = report.recovered_epoch.max(round.lse_prime);
        report.unknown_cube_deltas += engine.import_delta(round.deltas);
        report.rounds_applied += 1;
    }

    if report.recovered_epoch > 0 {
        // Make the recovered (committed) history visible: push the
        // clock past it and advance LCE over it with a marker commit.
        engine.manager().clock().observe(report.recovered_epoch);
        let marker = engine.manager().begin_rw();
        if opts.fail_marker_commit_for_test {
            let _ = engine.manager().commit(&marker);
            return Err(WalError::Recovery(
                "marker transaction failed (injected for test)".into(),
            ));
        }
        engine.manager().commit(&marker).map_err(|e| {
            WalError::Recovery(format!(
                "marker transaction failed to pull LCE over the recovered history: {e}"
            ))
        })?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flush::FlushController;
    use cluster::ReplicationTracker;
    use columnar::Value;
    use cubrick::{AggFn, Aggregation, CubeSchema, Dimension, IsolationMode, Metric, Query};
    use std::fs;
    use std::path::PathBuf;

    fn engine() -> Engine {
        let engine = Engine::new(2);
        engine
            .create_cube(
                CubeSchema::new(
                    "events",
                    vec![Dimension::int("day", 8, 4)],
                    vec![Metric::int("likes")],
                )
                .unwrap(),
            )
            .unwrap();
        engine
    }

    fn load(engine: &Engine, day: i64, likes: i64) {
        engine
            .load("events", &[vec![Value::from(day), Value::from(likes)]], 0)
            .unwrap();
    }

    fn sum(engine: &Engine) -> f64 {
        engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aosi-recovery-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_crash_recovery_roundtrip() {
        let dir = tempdir("roundtrip");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();

        let source = engine();
        load(&source, 0, 10);
        load(&source, 1, 20);
        ctl.flush_round(&source, &tracker).unwrap();
        load(&source, 2, 40);
        ctl.flush_round(&source, &tracker).unwrap();

        // "Crash": a fresh engine recovers from disk.
        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 2);
        assert_eq!(report.rounds_skipped, 0);
        assert_eq!(report.gaps_detected, 0);
        assert_eq!(report.rows_recovered, 3);
        assert_eq!(sum(&restored), 70.0);
        // The recovered node can keep loading without epoch
        // collisions.
        load(&restored, 3, 100);
        assert_eq!(sum(&restored), 170.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_trailing_flush_is_ignored() {
        let dir = tempdir("partial");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();
        load(&source, 1, 20);
        ctl.flush_round(&source, &tracker).unwrap();

        // Truncate the last round mid-file (simulated crash during
        // flush).
        let mut files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let last = files.last().unwrap();
        let bytes = fs::read(last).unwrap();
        fs::write(last, &bytes[..bytes.len() - 6]).unwrap();

        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 1);
        assert_eq!(report.rounds_skipped, 1);
        assert_eq!(report.gaps_detected, 0, "a torn file is not a hole");
        assert_eq!(sum(&restored), 10.0, "only the complete round counts");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_ends_replay_even_with_later_good_rounds() {
        let dir = tempdir("middle");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        for round in 0..3 {
            load(&source, round, 10 * (round + 1));
            ctl.flush_round(&source, &tracker).unwrap();
        }
        let mut files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        // Corrupt the middle round.
        let mut bytes = fs::read(&files[1]).unwrap();
        bytes[20] ^= 0xFF;
        fs::write(&files[1], bytes).unwrap();

        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 1);
        assert_eq!(report.rounds_skipped, 2, "corrupt + everything after");
        assert_eq!(sum(&restored), 10.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The recovery-gap regression (ISSUE 5, satellite 2): a missing
    /// middle round ends replay at the last consistent prefix and is
    /// counted, instead of being silently jumped over.
    #[test]
    fn missing_middle_round_is_a_detected_gap() {
        let dir = tempdir("gap");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        for round in 0..3 {
            load(&source, round, 10 * (round + 1));
            ctl.flush_round(&source, &tracker).unwrap();
        }
        fs::remove_file(dir.join("round-00000001.cbk")).unwrap();

        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 1, "replay ends at the hole");
        assert_eq!(report.rounds_skipped, 1, "the stranded round");
        assert_eq!(report.gaps_detected, 1);
        assert_eq!(sum(&restored), 10.0, "no phantom post-hole history");

        // The pre-fix behavior is preserved behind the option for the
        // torture harness's meta-test: the stranded round replays and
        // recovery silently loses the middle of the history.
        let legacy = engine();
        let report = recover_into_with(
            &RealFs,
            &dir,
            &legacy,
            &RecoverOptions {
                validate_chain: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.rounds_applied, 2);
        assert_eq!(report.gaps_detected, 0, "pre-fix: the hole goes unnoticed");
        assert_eq!(sum(&legacy), 40.0, "pre-fix: a hole in the middle");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// An lse chain break is detected even when sequence numbers are
    /// contiguous (the on-disk shape a clobbering restart produces).
    #[test]
    fn lse_discontinuity_is_a_detected_gap() {
        let dir = tempdir("lse-gap");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();
        load(&source, 1, 20);
        ctl.flush_round(&source, &tracker).unwrap();
        // Rewrite round 1 as if a reset controller had produced it:
        // it claims to start from lse 0 again.
        let original =
            crate::codec::decode(&fs::read(dir.join("round-00000001.cbk")).unwrap()).unwrap();
        let forged = crate::codec::FlushRound { lse: 0, ..original };
        fs::write(
            dir.join("round-00000001.cbk"),
            crate::codec::encode(&forged),
        )
        .unwrap();

        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 1);
        assert_eq!(report.gaps_detected, 1);
        assert_eq!(sum(&restored), 10.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The marker-commit failure path (ISSUE 5, satellite 3) returns
    /// a typed error instead of panicking.
    #[test]
    fn failed_marker_commit_is_a_typed_error() {
        let dir = tempdir("marker");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();

        let restored = engine();
        let result = recover_into_with(
            &RealFs,
            &dir,
            &restored,
            &RecoverOptions {
                fail_marker_commit_for_test: true,
                ..Default::default()
            },
        );
        match result {
            Err(WalError::Recovery(msg)) => assert!(msg.contains("marker"), "{msg}"),
            other => panic!("expected WalError::Recovery, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovering_nothing_is_fine() {
        let dir = tempdir("empty");
        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(sum(&restored), 0.0);
    }

    #[test]
    fn recovery_report_renders_metrics() {
        let report = RecoveryReport {
            rounds_applied: 3,
            rounds_skipped: 1,
            gaps_detected: 1,
            rows_recovered: 42,
            recovered_epoch: 9,
            unknown_cube_deltas: 2,
        };
        let text = report.metrics_report();
        assert!(text.starts_with("[wal.recovery]\n"), "{text}");
        assert!(text.contains("rounds_salvaged = 3\n"), "{text}");
        assert!(text.contains("rounds_skipped = 1\n"), "{text}");
        assert!(text.contains("gaps_detected = 1\n"), "{text}");
        assert!(text.contains("rows_recovered = 42\n"), "{text}");
        assert!(text.contains("recovered_epoch = 9\n"), "{text}");
        assert!(text.contains("unknown_cube_deltas = 2\n"), "{text}");
    }

    /// The silent-skip regression (satellite 2): recovering into an
    /// engine missing a cube's DDL used to drop that cube's deltas
    /// without a trace. The count now surfaces in the report.
    #[test]
    fn recovery_with_missing_ddl_reports_dropped_deltas() {
        let dir = tempdir("missing-ddl");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        source
            .create_cube(
                CubeSchema::new(
                    "orphan",
                    vec![Dimension::int("day", 8, 4)],
                    vec![Metric::int("likes")],
                )
                .unwrap(),
            )
            .unwrap();
        load(&source, 0, 10);
        source
            .load("orphan", &[vec![Value::from(1i64), Value::from(5i64)]], 0)
            .unwrap();
        ctl.flush_round(&source, &tracker).unwrap();

        // The restored engine only knows "events" — the orphan cube's
        // delta has nowhere to go, and the report must say so.
        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 1);
        assert_eq!(report.unknown_cube_deltas, 1);
        assert_eq!(sum(&restored), 10.0, "known cubes still recover");

        // With the full DDL nothing is dropped.
        let complete = engine();
        complete
            .create_cube(
                CubeSchema::new(
                    "orphan",
                    vec![Dimension::int("day", 8, 4)],
                    vec![Metric::int("likes")],
                )
                .unwrap(),
            )
            .unwrap();
        let report = recover_into(&dir, &complete).unwrap();
        assert_eq!(report.unknown_cube_deltas, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn string_dimensions_recover_with_consistent_dictionaries() {
        // The subtle case: coordinates on disk are dictionary ids, so
        // a fresh process (with empty dictionaries) must rebuild them
        // from the persisted dictionary deltas before any query can
        // encode filters or decode group keys.
        let dir = tempdir("dicts");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();

        let make = || {
            let engine = Engine::new(2);
            engine
                .create_cube(
                    CubeSchema::new(
                        "s",
                        vec![Dimension::string("region", 8, 2)],
                        vec![Metric::int("likes")],
                    )
                    .unwrap(),
                )
                .unwrap();
            engine
        };
        let source = make();
        source
            .load(
                "s",
                &[
                    vec![Value::from("us"), Value::from(10i64)],
                    vec![Value::from("br"), Value::from(20i64)],
                ],
                0,
            )
            .unwrap();
        ctl.flush_round(&source, &tracker).unwrap();
        // A second round with new dictionary entries only ships the
        // increment.
        source
            .load("s", &[vec![Value::from("mx"), Value::from(40i64)]], 0)
            .unwrap();
        ctl.flush_round(&source, &tracker).unwrap();

        let restored = make();
        recover_into(&dir, &restored).unwrap();
        // Filter by string value: requires the dictionary mapping.
        let sum = |region: &str| {
            restored
                .query(
                    "s",
                    &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                        .filter(cubrick::DimFilter::new("region", vec![Value::from(region)])),
                    IsolationMode::Snapshot,
                )
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
        };
        assert_eq!(sum("us"), 10.0);
        assert_eq!(sum("br"), 20.0);
        assert_eq!(sum("mx"), 40.0);
        // Group keys decode back to the original strings.
        let grouped = restored
            .query(
                "s",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]).grouped_by("region"),
                IsolationMode::Snapshot,
            )
            .unwrap();
        let keys: Vec<String> = grouped.rows.iter().map(|(k, _)| k[0].to_string()).collect();
        assert_eq!(keys, vec!["us", "br", "mx"]);
        // New loads after recovery keep extending the dictionary
        // without id collisions.
        restored
            .load("s", &[vec![Value::from("de"), Value::from(80i64)]], 0)
            .unwrap();
        assert_eq!(sum("de"), 80.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deletes_survive_recovery() {
        let dir = tempdir("deletes");
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        let source = engine();
        load(&source, 0, 10);
        source.delete_where("events", &[]).unwrap();
        load(&source, 1, 5);
        ctl.flush_round(&source, &tracker).unwrap();

        let restored = engine();
        recover_into(&dir, &restored).unwrap();
        assert_eq!(sum(&restored), 5.0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
