//! Persistence and durability (Section III-D).
//!
//! "In-memory OLAP databases maintain persistency and ensure
//! durability by using two basic mechanisms: (a) disk flushes and
//! (b) replication." This crate implements the disk half and wires
//! the replication half ([`cluster::ReplicationTracker`]) into LSE
//! advancement:
//!
//! * [`codec`] — a self-delimiting binary format for flush rounds,
//!   with a checksummed completion footer so recovery can detect and
//!   ignore partial flushes.
//! * [`FlushController`] — runs flush rounds: picks a candidate
//!   `LSE'`, exports every brick's runs in `(LSE, LSE']`, writes one
//!   round file, and — once every replica reports the epoch durable —
//!   advances the node's LSE so purge may reclaim history. "No
//!   transactional history needs to be flushed to disk": only the
//!   current LSE rides in each round header.
//! * [`recovery`] — replays complete rounds in order, "ignoring any
//!   subsequent partial flush executions that might be found on
//!   disk", and validating the round chain (contiguous sequence
//!   numbers, each round's `lse` continuing the previous `lse_prime`).
//! * [`fault`] — the filesystem shim every durability syscall goes
//!   through: [`fault::RealFs`] in production, [`fault::SimFs`] (a
//!   deterministic in-memory filesystem with power-cut simulation)
//!   under the crash torture harness in `oracle::crash`.
//! * [`ClusterFlush`] — per-node controllers sharing one tracker:
//!   cluster-wide flush rounds, crash/freeze/recover/rejoin.

mod chain;
pub mod codec;
mod daemon;
pub mod fault;
mod flush;
pub mod recovery;
pub mod tier;
pub mod verify;

pub use codec::{DictDelta, FlushRound, WalError};
pub use daemon::{ClusterFlush, TempWalDir};
pub use fault::{is_power_cut, RealFs, SimFs, WalFs};
pub use flush::{FlushController, FlushOutcome};
pub use recovery::{recover_into, recover_into_with, RecoverOptions, RecoveryReport};
pub use tier::WalBrickStore;
pub use verify::{verify_dir, RoundReport, RoundStatus, VerifyReport};
